PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test test-fast check test-batching test-serving test-procpool \
        soak soak-ci bench bench-fig8 bench-serving bench-serving-slo \
        bench-smoke bench-overhead bench-level bench-procpool \
        bench-memory profile

# Tier-1: the full test suite (what CI gates on).
test:
	$(PYTHON) -m pytest -x -q

# The quick inner-loop subset: everything except the serving suites and
# the long-running stress/soak suites (both still run under `make test`).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not serving and not stress and not soak"

# The pre-push gate: fast tests, the CI-sized soak (~30s: bounded-memory
# and SLO counters under sustained load), plus the bench-smoke canaries
# (tiny fig7/table2 sweeps, the continuous-serving canary and the
# spawn-overhead regression gate).  REPRO_TEST_TIMEOUT arms the conftest
# watchdog for every unmarked test so a wedged procpool worker fails the
# gate fast instead of hanging it on a queue read.
check: export REPRO_TEST_TIMEOUT ?= 180
check: test-fast soak-ci bench-smoke

# CI-sized sustained soak (a few thousand requests, ~30s).
soak-ci:
	$(PYTHON) -m pytest -x -q -m soak

# The full sustained soak: 10^5 requests through one long-lived server
# (heavy-tailed tree sizes, deadlines, cancellations, bounded-memory
# assertion); records its row into BENCH_serving.json.
soak:
	SOAK_REQUESTS=100000 SOAK_RECORD=1 $(PYTHON) -m pytest -x -q -m soak -s

# The micro-batching equivalence + stress subset.
test-batching:
	$(PYTHON) -m pytest -q tests/test_batching.py tests/test_batching_stress.py tests/test_recursive_gradients.py

# All paper-reproduction benchmarks (slow).
bench:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks -q -s

# The serving-path subset (server semantics, latency accounting, soak).
test-serving:
	$(PYTHON) -m pytest -q -m serving

# The multi-process backend: crash robustness, registry staleness,
# measured data-parallel training, plus the cross-executor equivalence
# matrix procpool is parametrized into.
test-procpool:
	REPRO_TEST_TIMEOUT=180 $(PYTHON) -m pytest -q tests/test_procpool.py tests/test_executors.py

# The inference-throughput bench; refreshes BENCH_fig8.json.
bench-fig8:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_fig8_inference_throughput.py -q -s

# Continuous-batching serving bench; refreshes BENCH_serving.json
# (wave vs continuous admission x unbatched vs batched, tail latency).
bench-serving:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_serving.py -q -s

# SLO serving bench: FIFO+queue-cap vs EDF+cost-shedding under overload
# (goodput and small-tree p99.9); merges the "slo" section into
# BENCH_serving.json.
bench-serving-slo:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_serving_slo.py -q -s

# Tiny-config fig7/table2 canary plus a ~1s continuous-serving canary
# (open-loop arrivals, wave vs continuous): every runner kind, both
# modes, batched backward pass — fast enough to ride along with tier-1.
# Includes the spawn-overhead canary gating on BENCH_overhead.json.
bench-smoke:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_smoke.py -q -s

# Scheduler-overhead microbench: frame-spawn rate and per-instance
# dispatch overhead (host wall-clock); refreshes BENCH_overhead.json
# ("after" block — the recorded "before" is the pre-FramePlan engine).
bench-overhead:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_overhead.py -q -s

# Level-plan compilation bench: paired dynamic-vs-compiled dispatch at
# the paper's batch sizes (infer + train); merges the "level_plan"
# section into BENCH_overhead.json and gates on the >=1.5x bar at
# batch 10.  The fast equivalence canary rides `make check` via
# bench-smoke; this is the full paired measurement.
bench-level:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_level_plan.py -q -s

# Multi-process pool scaling: serving throughput at 1/2/4 procpool
# workers against the threaded workerpool, plus measured data-parallel
# cluster scaling; merges the "procpool_scaling" section into
# BENCH_overhead.json (host cpu_count provenance stamps the rows —
# expect ~1.0x on a 1-CPU host).
bench-procpool:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_procpool.py -q -s

# Memory-aware execution bench: dense vs sparse embedding gradients and
# unbounded vs budgeted dispatch on a large-vocab TreeLSTM training step
# (peak live-scratch estimate + process RSS per row); merges the
# "memory" section into BENCH_overhead.json and gates on the >=5x
# peak-scratch reduction at >=0.95x throughput.  A miniature peak-RSS
# canary rides `make check` via bench-smoke.
bench-memory:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/bench_memory.py -q -s

# TreeLSTM continuous-serving canary under cProfile: prints the top-20
# cumulative hot spots of the scheduler/serving path.
profile:
	PYTHONPATH=src:. $(PYTHON) benchmarks/profile_serving.py
