"""Ablation: FIFO vs depth-priority operation scheduling.

The paper (Section 4.1.2) notes that priority scheduling of inner
(deeper-frame) operations over outer ones could shorten execution and
leaves it as future work.  We implement the depth-priority policy and
measure it against the paper's FIFO default on TreeLSTM inference, where
scheduling decisions matter most (no cache serialization masking them).

This ablation asserts only that both policies compute identical values and
reports the throughput difference; which policy wins depends on worker
count and tree shapes.
"""

from __future__ import annotations

from benchmarks.common import STEPS, fresh_model, runner_config, treebank
from repro.harness import (format_table, make_runner, measure_throughput,
                           save_results)

BATCH = 10


def collect():
    bank = treebank()
    results = {}
    for scheduler in ("fifo", "depth"):
        for workers in (4, 36):
            runner = make_runner(
                "Recursive", fresh_model("TreeLSTM"), BATCH,
                runner_config(num_workers=workers, scheduler=scheduler),
                train=False)
            result = measure_throughput(runner, bank.train, BATCH, "infer",
                                        steps=STEPS, warmup=0, seed=3)
            results[(scheduler, workers)] = result.throughput
    return results


def test_ablation_scheduling(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [[s, w, results[(s, w)]] for (s, w) in sorted(results)]
    print()
    print(format_table(
        "Ablation — FIFO vs depth-priority scheduling "
        "(TreeLSTM inference, b=10)",
        ["scheduler", "workers", "instances/s"], rows))
    save_results("ablation_scheduling",
                 {f"{s}/w{w}": v for (s, w), v in results.items()})
    for value in results.values():
        assert value > 0
    # with few workers scheduling policy matters more than with many
    few = abs(results[("depth", 4)] - results[("fifo", 4)]) / results[
        ("fifo", 4)]
    assert few < 1.0  # same order of magnitude — a policy, not a rewrite
