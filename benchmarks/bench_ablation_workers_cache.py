"""Ablations: worker-count scaling and the cost of the backprop cache.

1. **Worker sweep** — recursive TreeLSTM inference throughput vs virtual
   worker count: throughput should rise with workers and saturate once
   the available tree parallelism is exhausted (the resource-limit
   mechanism behind the paper's TreeLSTM observations).

2. **Cache on/off** — the same forward computation run in training mode
   (record=True, every recursive frame writes its activations to the
   concurrent cache) vs inference mode (record=False).  The gap is the
   backpropagation-cache overhead the paper discusses in Sections 5/6.2.
"""

from __future__ import annotations

import repro
from benchmarks.common import STEPS, fresh_model, treebank, runner_config
from repro.data import batch_trees
from repro.harness import format_table, save_results
from repro.models import TreeLSTMSentiment, tree_lstm_config

WORKER_SWEEP = (1, 4, 16, 36, 72)
BATCH = 10


def collect():
    bank = treebank()
    batch = batch_trees(bank.train[:BATCH])
    results = {"workers": {}, "cache": {}}

    runtime = repro.Runtime()
    model = TreeLSTMSentiment(tree_lstm_config(), runtime)
    built = model.build_recursive(BATCH)
    for workers in WORKER_SWEEP:
        session = repro.Session(built.graph, runtime, num_workers=workers,
                                record=False)
        session.run(built.root_logits, built.feed_dict(batch))
        total = 0.0
        for _ in range(STEPS):
            session.run(built.root_logits, built.feed_dict(batch))
            total += session.last_stats.virtual_time
        results["workers"][workers] = STEPS * BATCH / total

    # cache on/off: identical fetches, record toggled.  record=True also
    # requires the gradients to exist so the selective cache filter is
    # installed; build them once.
    from repro.core.autodiff import gradients
    with built.graph.as_default():
        gradients(built.loss, [])
    for record in (False, True):
        session = repro.Session(built.graph, runtime, num_workers=36,
                                record=record)
        session.run(built.loss, built.feed_dict(batch))
        total = 0.0
        for _ in range(STEPS):
            session.run(built.loss, built.feed_dict(batch))
            total += session.last_stats.virtual_time
        results["cache"]["on" if record else "off"] = STEPS * BATCH / total
    return results


def test_ablation_workers_and_cache(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[w, results["workers"][w]] for w in WORKER_SWEEP]
    print()
    print(format_table(
        "Ablation — recursive TreeLSTM inference vs virtual workers",
        ["workers", "instances/s"], rows))
    print()
    print(format_table(
        "Ablation — backprop cache overhead (forward pass, b=10)",
        ["cache", "instances/s"],
        [["off (inference)", results["cache"]["off"]],
         ["on (training mode)", results["cache"]["on"]]]))
    save_results("ablation_workers_cache", {
        "workers": {str(k): v for k, v in results["workers"].items()},
        "cache": results["cache"]})

    w = results["workers"]
    assert w[4] > w[1]           # parallelism helps
    assert w[36] > w[4]
    assert w[72] <= w[36] * 1.5  # saturation: doubling workers ~no gain
    assert results["cache"]["off"] > results["cache"]["on"]
