"""Figure 10: TreeLSTM training throughput vs number of machines.

Paper result: data-parallel training of the recursive TreeLSTM scales
almost linearly — 1.00x / 1.85x / 3.65x / 7.34x at 1 / 2 / 4 / 8 machines
(synchronous data parallelism with a parameter server, fixed per-machine
batch).

Shape claims: monotone increase, >=1.6x at 2 machines, >=2.8x at 4,
>=4.5x at 8 (near-linear with mild communication/straggler losses).
"""

from __future__ import annotations

import repro
from benchmarks.common import WORKERS, treebank
from repro.distributed import DataParallelCluster
from repro.harness import format_table, save_results
from repro.models import TreeLSTMSentiment, tree_lstm_config
from repro.nn import Adagrad

MACHINES = (1, 2, 4, 8)
PER_MACHINE_BATCH = 8
STEPS = 2


def collect():
    bank = treebank()
    throughputs = {}
    for machines in MACHINES:
        runtime = repro.Runtime()
        model = TreeLSTMSentiment(tree_lstm_config(), runtime)
        cluster = DataParallelCluster(
            model, PER_MACHINE_BATCH * machines, machines, Adagrad(0.05),
            runtime, session_kwargs={"num_workers": WORKERS})
        throughputs[machines] = cluster.throughput(bank.train, steps=STEPS)
    return throughputs


def test_fig10_scaling(benchmark):
    throughputs = benchmark.pedantic(collect, rounds=1, iterations=1)
    base = throughputs[1]
    rows = [[m, throughputs[m], throughputs[m] / base] for m in MACHINES]
    print()
    print(format_table(
        "Figure 10 — TreeLSTM data-parallel scaling "
        "(instances/s, virtual time)",
        ["machines", "throughput", "speedup"], rows))
    save_results("fig10_scaling",
                 {str(m): throughputs[m] for m in MACHINES})

    speedups = [throughputs[m] / base for m in MACHINES]
    assert speedups == sorted(speedups), "throughput must increase"
    assert speedups[1] >= 1.6   # paper: 1.85x
    assert speedups[2] >= 2.8   # paper: 3.65x
    assert speedups[3] >= 4.5   # paper: 7.34x
