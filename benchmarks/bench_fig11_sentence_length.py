"""Figure 11: per-instance processing time vs sentence length (TreeLSTM).

Paper result: time grows with sentence length for both implementations,
but the iterative implementation grows linearly (one cell at a time, O(N))
while the recursive one grows much more slowly thanks to parallel
execution of tree cells — close to O(log N) for inference, flatter than
linear for training (framework overheads dilute the logarithmic trend).

Shape claims: iterative time ~linear in N (20x words -> >=10x time);
recursive inference strongly sublinear (20x words -> <=10x time);
recursive is faster at every length, with a growing gap.
"""

from __future__ import annotations

from benchmarks.common import fresh_model, runner_config, treebank
from repro.harness import (format_table, make_runner, measure_latency_curve,
                           save_results)

LENGTHS = (10, 25, 50, 100, 200)
TREES_PER_LENGTH = 2


def collect():
    bank = treebank()
    by_length = {length: bank.trees_of_length(length, TREES_PER_LENGTH)
                 for length in LENGTHS}
    curves = {}
    for kind in ("Recursive", "Iterative"):
        runner = make_runner(kind, fresh_model("TreeLSTM"), 1,
                             runner_config())
        curves[(kind, "train")] = measure_latency_curve(runner, by_length,
                                                        "train")
        curves[(kind, "infer")] = measure_latency_curve(runner, by_length,
                                                        "infer")
    return curves


def test_fig11_sentence_length(benchmark):
    curves = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for length in LENGTHS:
        rows.append([
            length,
            curves[("Recursive", "train")][length] * 1e3,
            curves[("Iterative", "train")][length] * 1e3,
            curves[("Recursive", "infer")][length] * 1e3,
            curves[("Iterative", "infer")][length] * 1e3,
        ])
    print()
    print(format_table(
        "Figure 11 — per-instance time vs sentence length (TreeLSTM, ms)",
        ["words", "rec train", "iter train", "rec infer", "iter infer"],
        rows))
    save_results("fig11_sentence_length", {
        f"{kind}/{mode}": {str(k): v for k, v in curve.items()}
        for (kind, mode), curve in curves.items()})

    # recursive faster at every length, both modes
    for mode in ("train", "infer"):
        for length in LENGTHS:
            assert (curves[("Recursive", mode)][length]
                    < curves[("Iterative", mode)][length])
    # iterative ~linear: 10 -> 200 words (20x) => >= 10x time
    for mode in ("train", "infer"):
        it = curves[("Iterative", mode)]
        assert it[200] / it[10] >= 10.0
    # recursive inference strongly sublinear: 20x words => <= 10x time
    rec_infer = curves[("Recursive", "infer")]
    assert rec_infer[200] / rec_infer[10] <= 10.0
    # and the recursive/iterative gap widens with length (parallelism pays
    # off more on larger trees)
    gap_small = (curves[("Iterative", "infer")][10]
                 / curves[("Recursive", "infer")][10])
    gap_large = (curves[("Iterative", "infer")][200]
                 / curves[("Recursive", "infer")][200])
    assert gap_large > gap_small
