"""Figure 7: training throughput for TreeRNN / RNTN / TreeLSTM.

Paper result (instances/s on the 36-core testbed):

    model     batch   Recursive  Iterative  Unrolling
    TreeRNN   1/10/25  46.6/125.2/129.7  17.3/38.1/55.9  4.1/4.3/4.3
    RNTN      1/10/25  23.4/39.2/44.8     8.1/26.8/40.8  1.5/1.5/1.5
    TreeLSTM  1/10/25   4.8/4.2/3.6       2.5/4.0/5.5    2.0/2.0/2.0

Shape claims this bench asserts:
  * Recursive beats Iterative and Unrolling for TreeRNN and RNTN at every
    batch size;
  * for TreeLSTM, Recursive wins at batch 1 and 10 but the Iterative
    implementation overtakes it at batch 25 (resource saturation);
  * Unrolling is flat in batch size and the slowest at batch >= 10.
"""

from __future__ import annotations

from benchmarks.common import (BATCH_SIZES, STEPS, fresh_model,
                               runner_config, treebank)
from repro.harness import (format_table, make_runner, measure_throughput,
                           save_results)

KINDS = ("Recursive", "Iterative", "Unrolling")
MODELS = ("TreeRNN", "RNTN", "TreeLSTM")


def collect():
    bank = treebank()
    table = {}
    for model_name in MODELS:
        for kind in KINDS:
            for batch_size in BATCH_SIZES:
                runner = make_runner(kind, fresh_model(model_name),
                                     batch_size, runner_config())
                result = measure_throughput(runner, bank.train, batch_size,
                                            "train", steps=STEPS, warmup=0,
                                            seed=3)
                table[(model_name, kind, batch_size)] = result.throughput
    return table


def test_fig7_training_throughput(benchmark):
    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for model_name in MODELS:
        for kind in KINDS:
            rows.append([model_name, kind]
                        + [table[(model_name, kind, b)]
                           for b in BATCH_SIZES])
    print()
    print(format_table(
        "Figure 7 — training throughput (instances/s, virtual testbed)",
        ["model", "impl", "b=1", "b=10", "b=25"], rows))
    save_results("fig7_training_throughput",
                 {f"{m}/{k}/b{b}": v for (m, k, b), v in table.items()})

    # --- paper shape assertions ---
    for model_name in ("TreeRNN", "RNTN"):
        for batch_size in BATCH_SIZES:
            rec = table[(model_name, "Recursive", batch_size)]
            for other in ("Iterative", "Unrolling"):
                assert rec > table[(model_name, other, batch_size)], \
                    f"{model_name} b={batch_size}: Recursive must win"
    # TreeLSTM: recursive wins at small batch ...
    for batch_size in (1, 10):
        assert (table[("TreeLSTM", "Recursive", batch_size)]
                > table[("TreeLSTM", "Iterative", batch_size)])
    # ... but iterative overtakes at batch 25 (the paper's crossover)
    assert (table[("TreeLSTM", "Iterative", 25)]
            > table[("TreeLSTM", "Recursive", 25)])
    # unrolling: flat and slowest at batch >= 10
    for model_name in MODELS:
        unrolled = [table[(model_name, "Unrolling", b)] for b in BATCH_SIZES]
        assert max(unrolled) < 2.5 * min(unrolled), "unrolling ~flat"
        for batch_size in (10, 25):
            assert (table[(model_name, "Unrolling", batch_size)]
                    < table[(model_name, "Iterative", batch_size)])
