"""Figure 8: inference throughput for TreeRNN / RNTN / TreeLSTM.

Paper result (instances/s):

    model     batch   Recursive     Iterative      Unrolling
    TreeRNN   1/10/25 159/552/694   95.8/270/427   6.5/7.6/6.8
    RNTN      1/10/25 98.7/322/399  19.2/69.1/131  2.6/2.5/2.7
    TreeLSTM  1/10/25 81.4/218/270  19.2/49.3/72.1 3.5/3.5/2.8

Shape claim: the recursive implementation wins inference for **all**
models at **all** batch sizes (no backprop machinery runs, so parallel
execution of tree nodes dominates) — up to 5.4x over iterative.

Beyond the paper: the ``BatchedRecursive`` column runs the same recursive
graphs with cross-instance dynamic micro-batching in the engine (Fold's
throughput lever inside the recursive model), and a serving comparison at
32 concurrent trees records the unbatched-vs-batched baseline into
``BENCH_fig8.json`` for future PRs to diff against.
"""

from __future__ import annotations

from benchmarks.common import (BATCH_SIZES, STEPS, fresh_model,
                               runner_config, save_bench_json, treebank)
from repro.harness import (compare_batching, format_table, make_runner,
                           measure_throughput, save_results)

KINDS = ("Recursive", "BatchedRecursive", "Iterative", "Unrolling")
MODELS = ("TreeRNN", "RNTN", "TreeLSTM")
SERVING_CONCURRENCY = 32


def collect():
    bank = treebank()
    table = {}
    for model_name in MODELS:
        for kind in KINDS:
            for batch_size in BATCH_SIZES:
                runner = make_runner(kind, fresh_model(model_name),
                                     batch_size, runner_config(),
                                     train=False)
                result = measure_throughput(runner, bank.train, batch_size,
                                            "infer", steps=STEPS, warmup=0,
                                            seed=3)
                table[(model_name, kind, batch_size)] = result.throughput
    return table


def collect_serving():
    """Unbatched vs batched at 32 concurrent TreeLSTM requests."""
    bank = treebank()
    unbatched, batched = compare_batching(
        fresh_model("TreeLSTM"), bank.train, SERVING_CONCURRENCY,
        num_workers=runner_config().num_workers, waves=1, seed=3)
    return unbatched, batched


def test_fig8_inference_throughput(benchmark):
    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    unbatched, batched = collect_serving()

    rows = []
    for model_name in MODELS:
        for kind in KINDS:
            rows.append([model_name, kind]
                        + [table[(model_name, kind, b)]
                           for b in BATCH_SIZES])
    print()
    print(format_table(
        "Figure 8 — inference throughput (instances/s, virtual testbed)",
        ["model", "impl", "b=1", "b=10", "b=25"], rows))
    speedup = batched.throughput / unbatched.throughput
    print(f"\nServing TreeLSTM @ {SERVING_CONCURRENCY} concurrent trees: "
          f"unbatched {unbatched.throughput:.1f} vs batched "
          f"{batched.throughput:.1f} instances/s ({speedup:.2f}x, "
          f"mean fused batch {batched.stats.batch_efficiency:.1f})")
    save_results("fig8_inference_throughput",
                 {f"{m}/{k}/b{b}": v for (m, k, b), v in table.items()})
    save_bench_json("fig8", {
        "throughput": {f"{m}/{k}/b{b}": v
                       for (m, k, b), v in table.items()},
        "serving": {
            "model": "TreeLSTM",
            "concurrency": SERVING_CONCURRENCY,
            "unbatched_throughput": unbatched.throughput,
            "batched_throughput": batched.throughput,
            "speedup": speedup,
            "fused_batches": batched.stats.batches,
            "mean_batch": batched.stats.batch_efficiency,
            "max_batch": batched.stats.max_batch,
        },
    })

    # --- paper shape assertions: recursive wins everywhere ---
    for model_name in MODELS:
        for batch_size in BATCH_SIZES:
            rec = table[(model_name, "Recursive", batch_size)]
            for other in ("Iterative", "Unrolling"):
                assert rec > table[(model_name, other, batch_size)], \
                    f"{model_name} b={batch_size}: Recursive must win"
    # inference is faster than training for the recursive implementation
    # (no cache writes / backward frames) — sanity ratio
    for model_name in MODELS:
        assert table[(model_name, "Recursive", 10)] > 0
    # --- beyond the paper: micro-batching at serving concurrency ---
    assert speedup >= 2.0, \
        (f"batched serving must be >= 2x unbatched at "
         f"{SERVING_CONCURRENCY} concurrent trees, got {speedup:.2f}x")
    # batching never loses at the paper's largest batch either
    for model_name in MODELS:
        assert (table[(model_name, "BatchedRecursive", 25)]
                > table[(model_name, "Recursive", 25)]), \
            f"{model_name} b=25: micro-batching must improve throughput"
