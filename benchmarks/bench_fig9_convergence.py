"""Figure 9: validation accuracy vs training time (recursive vs iterative).

Paper result: per-epoch accuracy curves of the two implementations are
identical (the computations are numerically the same); the recursive
implementation reaches the target accuracy (93% in the paper) faster in
wall time for every model, because its training throughput is higher.

We train the TreeRNN model on the synthetic treebank with both
implementations (same seeds, same batch order) and assert:
  * accuracies per epoch match between implementations (numerical
    identity);
  * both reach the accuracy target;
  * the recursive implementation reaches it in less virtual time.
"""

from __future__ import annotations

import numpy as np

import repro
from benchmarks.common import runner_config
from repro.data import make_treebank
from repro.harness import (format_table, make_runner, run_convergence,
                           save_results)
from repro.models import ModelConfig, TreeRNNSentiment

BATCH = 12
EPOCHS = 4
TARGET = 0.85  # scaled to the synthetic task (paper: 0.93 on movie reviews)


def collect():
    bank = make_treebank(num_train=120, num_val=48, vocab_size=200,
                         mean_log_words=2.9, seed=21)
    results = {}
    for kind in ("Recursive", "Iterative"):
        runtime = repro.Runtime()
        model = TreeRNNSentiment(
            ModelConfig(hidden=24, embed_dim=24, learning_rate=0.15, seed=3),
            runtime)
        runner = make_runner(kind, model, BATCH,
                             runner_config(learning_rate=0.15))
        results[kind] = run_convergence(runner, bank.train, bank.val,
                                        batch_size=BATCH, epochs=EPOCHS,
                                        seed=5)
    return results


def test_fig9_convergence(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rec, it = results["Recursive"], results["Iterative"]

    rows = []
    for a, b in zip(rec.points, it.points):
        rows.append([a.epoch, a.val_accuracy, a.virtual_time,
                     b.val_accuracy, b.virtual_time])
    print()
    print(format_table(
        "Figure 9 — validation accuracy vs virtual training time (TreeRNN)",
        ["epoch", "rec acc", "rec t(s)", "iter acc", "iter t(s)"], rows))
    save_results("fig9_convergence", {
        "recursive": [(p.epoch, p.virtual_time, p.val_accuracy)
                      for p in rec.points],
        "iterative": [(p.epoch, p.virtual_time, p.val_accuracy)
                      for p in it.points],
        "target": TARGET,
        "time_to_target_recursive": rec.time_to_accuracy(TARGET),
        "time_to_target_iterative": it.time_to_accuracy(TARGET),
    })

    # numerically identical training: same accuracy trajectory
    for a, b in zip(rec.points, it.points):
        assert a.val_accuracy == b.val_accuracy, \
            "implementations must be numerically identical per epoch"
        assert a.train_loss == np.float32(b.train_loss) or \
            abs(a.train_loss - b.train_loss) < 1e-4
    # both converge to the target
    t_rec = rec.time_to_accuracy(TARGET)
    t_it = it.time_to_accuracy(TARGET)
    assert t_rec is not None, f"recursive never reached {TARGET}"
    assert t_it is not None, f"iterative never reached {TARGET}"
    # the recursive implementation converges faster in time
    assert t_rec < t_it
