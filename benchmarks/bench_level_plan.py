"""Level-plan compilation microbench: dynamic vs compiled dispatch.

Paired host-wall-clock measurement of the same admissions executed twice
— once through the dynamic scheduler (frame spawns, signature matching,
coalescer bookkeeping per node) and once through the compiled level-plan
fast path (:mod:`repro.runtime.level_plan`), which lowers each known
tree shape to a fixed sequence of pre-bucketed fused dispatches.  The
workload sweeps the benchmark treebank's sentence-length distribution at
the paper's batch sizes, so compiled plans are memoized per distinct
shape profile exactly as a serving process would reuse them.

Reported per mode: µs per tree-node instance (host wall-clock over the
whole epoch sweep) and the level-plan hit/fallback counters.  The
``level_plan`` section of ``BENCH_overhead.json`` records the paired
rows; the acceptance gate is a >= 1.5x per-instance throughput win at
batch >= 10.  ``benchmarks/bench_smoke.py`` carries the always-on
equivalence canary.
"""

from __future__ import annotations

import os
import time

import numpy as np

import repro
from repro.data.batching import batch_trees

from benchmarks.common import (WORKERS, bench_engine, fresh_model,
                               merge_bench_json, treebank)

BATCH_SIZES = (1, 10)
MODEL = "TreeRNN"
REPEATS = 3


def _epoch_batches(batch_size: int):
    bank = treebank()
    trees = bank.train[:(len(bank.train) // batch_size) * batch_size]
    return [batch_trees(trees[i:i + batch_size])
            for i in range(0, len(trees), batch_size)]


def _measure(batch_size: int, compiled: bool, train: bool) -> dict:
    """Best-of-N wall clock for one epoch sweep, one dispatch mode."""
    model = fresh_model(MODEL)
    runtime = model.runtime
    built = model.build_recursive(batch_size)
    fetches = [built.loss, built.root_logits]
    if train:
        _, updates = repro.gradients(built.loss, [])
        fetches += [op.outputs[-1] for op in updates]
    session = repro.Session(built.graph, runtime, num_workers=WORKERS,
                            engine=bench_engine(), record=train)
    batches = _epoch_batches(batch_size)
    instances = sum(sum(t.num_nodes for t in b.trees) for b in batches)

    def sweep():
        for batch in batches:
            kwargs = ({"shape_profile": built.shape_profiles(batch)}
                      if compiled else {})
            session.run(fetches, built.feed_dict(batch), **kwargs)

    sweep()  # warm: plan caches, and (compiled) per-profile level plans
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        sweep()
        best = min(best, time.perf_counter() - t0)
    hits = fallbacks = 0
    if compiled:
        # one timed sweep's counters (last run's session stats accumulate
        # per run; re-read per batch for totals)
        for batch in batches:
            session.run(fetches, built.feed_dict(batch),
                        shape_profile=built.shape_profiles(batch))
            hits += session.last_stats.level_plan_hits
            fallbacks += session.last_stats.level_plan_fallbacks
    return {"batch_size": batch_size,
            "mode": "train" if train else "infer",
            "trees": sum(b.size for b in batches),
            "instances": instances,
            "wall_s": best,
            "us_per_instance": 1e6 * best / instances,
            "level_plan_hits": hits,
            "level_plan_fallbacks": fallbacks}


def test_level_plan_dispatch_bench():
    rows = {}
    for train in (False, True):
        for batch_size in BATCH_SIZES:
            dynamic = _measure(batch_size, compiled=False, train=train)
            compiled = _measure(batch_size, compiled=True, train=train)
            # the compiled path must never miss on this workload
            assert compiled["level_plan_fallbacks"] == 0
            assert compiled["level_plan_hits"] > 0
            key = f"{dynamic['mode']}_b{batch_size}"
            rows[key] = {
                "dynamic": dynamic,
                "compiled": compiled,
                "speedup": (dynamic["us_per_instance"]
                            / compiled["us_per_instance"]),
            }

    payload = {
        "description": "paired dynamic vs compiled level-plan dispatch "
                       "(host wall-clock, treebank length distribution)",
        "model": MODEL,
        "rows": rows,
    }
    merge_bench_json("overhead", {"level_plan": payload})

    print("\nlevel-plan dispatch bench (host wall-clock):")
    for key, row in rows.items():
        print(f"  {key}: dynamic "
              f"{row['dynamic']['us_per_instance']:.1f} us/inst, compiled "
              f"{row['compiled']['us_per_instance']:.1f} us/inst "
              f"-> {row['speedup']:.2f}x "
              f"(hits={row['compiled']['level_plan_hits']}, "
              f"fallbacks={row['compiled']['level_plan_fallbacks']})")

    # the acceptance gate: per-instance throughput at batch >= 10
    for mode in ("infer", "train"):
        speedup = rows[f"{mode}_b10"]["speedup"]
        assert speedup >= 1.5, (
            f"compiled {mode} path {speedup:.2f}x at batch 10 — "
            "below the 1.5x acceptance bar")


def _sweep_once(session, built, batches, fetches) -> tuple:
    """One profiled epoch sweep; returns (wall_s, hits, fallbacks)."""
    t0 = time.perf_counter()
    for batch in batches:
        session.run(fetches, built.feed_dict(batch),
                    shape_profile=built.shape_profiles(batch))
    return time.perf_counter() - t0


def _measure_parallel_sweeps(parallel: bool) -> dict:
    """Best-of-N compiled epoch sweep on the workerpool, with the
    level-parallel knob pinned for the whole measurement."""
    previous = os.environ.get("REPRO_LEVEL_PARALLEL")
    os.environ["REPRO_LEVEL_PARALLEL"] = "1" if parallel else "0"
    try:
        model = fresh_model(MODEL)
        built = model.build_recursive(10)
        fetches = [built.loss, built.root_logits]
        session = repro.Session(built.graph, model.runtime, num_workers=4,
                                engine="workerpool")
        batches = _epoch_batches(10)
        _sweep_once(session, built, batches, fetches)  # warm plan caches
        best = float("inf")
        for _ in range(REPEATS):
            best = min(best, _sweep_once(session, built, batches, fetches))
        hits = fallbacks = 0
        logits = []
        for batch in batches:
            _, batch_logits = session.run(
                fetches, built.feed_dict(batch),
                shape_profile=built.shape_profiles(batch))
            logits.append(batch_logits)
            hits += session.last_stats.level_plan_hits
            fallbacks += session.last_stats.level_plan_fallbacks
        instances = sum(sum(t.num_nodes for t in b.trees) for b in batches)
        return {"parallel": parallel, "wall_s": best,
                "us_per_instance": 1e6 * best / instances,
                "level_plan_hits": hits,
                "level_plan_fallbacks": fallbacks,
                "_logits": logits}
    finally:
        if previous is None:
            os.environ.pop("REPRO_LEVEL_PARALLEL", None)
        else:
            os.environ["REPRO_LEVEL_PARALLEL"] = previous


def test_level_parallel_sweep_bench():
    """Paired serial-vs-parallel compiled sweeps on the workerpool.

    The parallel path fans independent same-level buckets out to the
    kernel pool behind a per-level barrier; it must be bit-identical and
    never fall back.  The >= 1.3x acceptance bar needs real cores to be
    physically expressible — on fewer than 4 the bench records the
    honest (likely ~1x or below) row plus cpu_count provenance and gates
    nothing.
    """
    serial = _measure_parallel_sweeps(parallel=False)
    parallel = _measure_parallel_sweeps(parallel=True)
    for row in (serial, parallel):
        assert row["level_plan_fallbacks"] == 0
        assert row["level_plan_hits"] > 0
    for ref, got in zip(serial.pop("_logits"), parallel.pop("_logits")):
        assert np.array_equal(ref, got)

    speedup = serial["us_per_instance"] / parallel["us_per_instance"]
    payload = {
        "description": "paired serial vs parallel compiled sweeps "
                       "(workerpool kernel pool, host wall-clock)",
        "model": MODEL, "batch_size": 10, "workers": 4,
        "cpu_count": os.cpu_count(),
        "serial": serial, "parallel": parallel,
        "speedup": speedup,
    }
    merge_bench_json("overhead", {"level_plan_parallel": payload})
    print(f"\nparallel sweep bench (host wall-clock, "
          f"{os.cpu_count()} cpus):")
    print(f"  serial   {serial['us_per_instance']:.1f} us/inst")
    print(f"  parallel {parallel['us_per_instance']:.1f} us/inst "
          f"-> {speedup:.2f}x")
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.3, (
            f"parallel sweeps {speedup:.2f}x on a multi-core host — "
            "below the 1.3x acceptance bar")


# ---------------------------------------------------------------------------
# profile canonicalization: heavy-tailed shape streams


def tree_sum_graph(name):
    """Array-backed binary reduction with a *fed* root index: one graph
    serves a whole stream of distinct tree shapes (also used by the
    bench_smoke canonicalization canary)."""
    from repro import ops
    from repro.core.subgraph import SubGraph

    graph = repro.Graph(name)
    with graph.as_default():
        values = ops.placeholder(repro.float32, (None,))
        children = ops.placeholder(repro.int32, (None, 2))
        is_leaf = ops.placeholder(repro.bool_, (None,))
        root = ops.placeholder(repro.int32, ())
        with SubGraph("tsum") as tsum:
            idx = tsum.input(repro.int32, ())
            tsum.declare_outputs([(repro.float32, ())])

            def leaf():
                return ops.gather(values, idx)

            def internal():
                pair = ops.gather(children, idx)
                return ops.add(tsum(ops.gather(pair, 0)),
                               tsum(ops.gather(pair, 1)))

            tsum.output(ops.cond(ops.gather(is_leaf, idx), leaf, internal))
        out = tsum(root)
    return graph, out, (values, children, is_leaf, root)


def rand_profile(rng, depth, force=3):
    """Random binary shape; the top ``force`` levels are internal, so
    every stream tree is deeper than the canon bucket."""
    if depth <= 1:
        return ()
    if force <= 0 and rng.random() < 0.3:
        return ()
    return (rand_profile(rng, depth - 1, force - 1),
            rand_profile(rng, depth - 1, force - 1))


def profile_feeds(placeholders, profile, rng):
    """Post-order array encoding of a shape profile, random leaf values."""
    values, children, is_leaf, root = placeholders
    nodes = []

    def build(p):
        if not p:
            nodes.append((True, -1, -1))
        else:
            left = build(p[0])
            right = build(p[1])
            nodes.append((False, left, right))
        return len(nodes) - 1

    root_idx = build(profile)
    vals = rng.normal(size=len(nodes)).astype(np.float32)
    kids = np.array([[l, r] for _, l, r in nodes], dtype=np.int32)
    leaf = np.array([f for f, _, _ in nodes])
    return {values: vals, children: kids, is_leaf: leaf, root: root_idx}


def run_canon_stream(requests: int, canon_depth: int, seed: int,
                     max_depth: int = 9) -> dict:
    """Serve ``requests`` heavy-tailed tree shapes through one
    canonicalizing session; returns the aggregated level-plan counters."""
    rng = np.random.default_rng(seed)
    graph, out, placeholders = tree_sum_graph(f"canon-stream-{seed}")
    session = repro.Session(graph, repro.Runtime(), num_workers=2,
                            level_canon_depth=canon_depth)
    totals = {"hits": 0, "misses": 0, "fallbacks": 0, "partial_roots": 0,
              "subtree_runs": 0, "evictions": 0, "compile_ms": 0.0}
    shapes = set()
    wall = 0.0
    for _ in range(requests):
        profile = rand_profile(rng, int(rng.integers(5, max_depth + 1)))
        shapes.add(profile)
        feeds = profile_feeds(placeholders, profile, rng)
        t0 = time.perf_counter()
        session.run(out, feeds, shape_profile=(profile,))
        wall += time.perf_counter() - t0
        stats = session.last_stats
        totals["hits"] += stats.level_plan_cache_hits
        totals["misses"] += stats.level_plan_cache_misses
        totals["fallbacks"] += stats.level_plan_fallbacks
        totals["partial_roots"] += stats.level_plan_partial_roots
        totals["subtree_runs"] += stats.level_plan_subtree_runs
        totals["evictions"] += stats.level_plan_evictions
        totals["compile_ms"] += stats.level_plan_compile_ms
    probes = totals["hits"] + totals["misses"]
    return {"requests": requests, "canon_depth": canon_depth,
            "distinct_shapes": len(shapes),
            "compiled_plans": totals["misses"],
            "cache_hit_rate": totals["hits"] / probes if probes else 0.0,
            "wall_s": wall, **totals}


def test_level_canonicalization_stream_bench():
    """The heavy-tailed acceptance row: 500 requests, canon depth 3.

    Without canonicalization every distinct shape compiles its own plan
    (500 shapes -> ~480+ plans).  With the depth-3 bucket the cache must
    converge onto the canonical subtree set — compiled-plan count <= 10%
    of the distinct shapes seen, compile-cache hit rate >= 0.9, zero
    fallbacks.
    """
    row = run_canon_stream(requests=500, canon_depth=3, seed=17)
    payload = {
        "description": "heavy-tailed shape stream through one "
                       "canonicalizing session (fed-root binary "
                       "reduction, event backend)",
        **{k: v for k, v in row.items() if not k.startswith("_")},
    }
    merge_bench_json("overhead", {"level_plan_canonicalization": payload})
    print(f"\ncanonicalization stream bench ({row['requests']} requests):")
    print(f"  distinct shapes: {row['distinct_shapes']}, compiled plans: "
          f"{row['compiled_plans']}, hit rate: {row['cache_hit_rate']:.3f}")
    print(f"  partial roots: {row['partial_roots']}, subtree sweeps: "
          f"{row['subtree_runs']}, compile: {row['compile_ms']:.1f} ms")
    assert row["fallbacks"] == 0
    assert row["compiled_plans"] <= row["distinct_shapes"] // 10, row
    assert row["cache_hit_rate"] >= 0.9, row


def test_level_plan_values_match_dynamic():
    """The bench workload itself is value-checked (belt and braces on
    top of tests/test_level_plan.py): one batch, both paths, bit-equal."""
    model = fresh_model(MODEL)
    built = model.build_recursive(10)
    batch = _epoch_batches(10)[0]
    session = repro.Session(built.graph, model.runtime, num_workers=WORKERS,
                            engine=bench_engine())
    ref = session.run(built.root_logits, built.feed_dict(batch))
    got = session.run(built.root_logits, built.feed_dict(batch),
                      shape_profile=built.shape_profiles(batch))
    assert session.last_stats.level_plan_hits == 1
    assert np.array_equal(ref, got)
