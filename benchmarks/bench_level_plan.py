"""Level-plan compilation microbench: dynamic vs compiled dispatch.

Paired host-wall-clock measurement of the same admissions executed twice
— once through the dynamic scheduler (frame spawns, signature matching,
coalescer bookkeeping per node) and once through the compiled level-plan
fast path (:mod:`repro.runtime.level_plan`), which lowers each known
tree shape to a fixed sequence of pre-bucketed fused dispatches.  The
workload sweeps the benchmark treebank's sentence-length distribution at
the paper's batch sizes, so compiled plans are memoized per distinct
shape profile exactly as a serving process would reuse them.

Reported per mode: µs per tree-node instance (host wall-clock over the
whole epoch sweep) and the level-plan hit/fallback counters.  The
``level_plan`` section of ``BENCH_overhead.json`` records the paired
rows; the acceptance gate is a >= 1.5x per-instance throughput win at
batch >= 10.  ``benchmarks/bench_smoke.py`` carries the always-on
equivalence canary.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.data.batching import batch_trees

from benchmarks.common import (WORKERS, bench_engine, fresh_model,
                               merge_bench_json, treebank)

BATCH_SIZES = (1, 10)
MODEL = "TreeRNN"
REPEATS = 3


def _epoch_batches(batch_size: int):
    bank = treebank()
    trees = bank.train[:(len(bank.train) // batch_size) * batch_size]
    return [batch_trees(trees[i:i + batch_size])
            for i in range(0, len(trees), batch_size)]


def _measure(batch_size: int, compiled: bool, train: bool) -> dict:
    """Best-of-N wall clock for one epoch sweep, one dispatch mode."""
    model = fresh_model(MODEL)
    runtime = model.runtime
    built = model.build_recursive(batch_size)
    fetches = [built.loss, built.root_logits]
    if train:
        _, updates = repro.gradients(built.loss, [])
        fetches += [op.outputs[-1] for op in updates]
    session = repro.Session(built.graph, runtime, num_workers=WORKERS,
                            engine=bench_engine(), record=train)
    batches = _epoch_batches(batch_size)
    instances = sum(sum(t.num_nodes for t in b.trees) for b in batches)

    def sweep():
        for batch in batches:
            kwargs = ({"shape_profile": built.shape_profiles(batch)}
                      if compiled else {})
            session.run(fetches, built.feed_dict(batch), **kwargs)

    sweep()  # warm: plan caches, and (compiled) per-profile level plans
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        sweep()
        best = min(best, time.perf_counter() - t0)
    hits = fallbacks = 0
    if compiled:
        # one timed sweep's counters (last run's session stats accumulate
        # per run; re-read per batch for totals)
        for batch in batches:
            session.run(fetches, built.feed_dict(batch),
                        shape_profile=built.shape_profiles(batch))
            hits += session.last_stats.level_plan_hits
            fallbacks += session.last_stats.level_plan_fallbacks
    return {"batch_size": batch_size,
            "mode": "train" if train else "infer",
            "trees": sum(b.size for b in batches),
            "instances": instances,
            "wall_s": best,
            "us_per_instance": 1e6 * best / instances,
            "level_plan_hits": hits,
            "level_plan_fallbacks": fallbacks}


def test_level_plan_dispatch_bench():
    rows = {}
    for train in (False, True):
        for batch_size in BATCH_SIZES:
            dynamic = _measure(batch_size, compiled=False, train=train)
            compiled = _measure(batch_size, compiled=True, train=train)
            # the compiled path must never miss on this workload
            assert compiled["level_plan_fallbacks"] == 0
            assert compiled["level_plan_hits"] > 0
            key = f"{dynamic['mode']}_b{batch_size}"
            rows[key] = {
                "dynamic": dynamic,
                "compiled": compiled,
                "speedup": (dynamic["us_per_instance"]
                            / compiled["us_per_instance"]),
            }

    payload = {
        "description": "paired dynamic vs compiled level-plan dispatch "
                       "(host wall-clock, treebank length distribution)",
        "model": MODEL,
        "rows": rows,
    }
    merge_bench_json("overhead", {"level_plan": payload})

    print("\nlevel-plan dispatch bench (host wall-clock):")
    for key, row in rows.items():
        print(f"  {key}: dynamic "
              f"{row['dynamic']['us_per_instance']:.1f} us/inst, compiled "
              f"{row['compiled']['us_per_instance']:.1f} us/inst "
              f"-> {row['speedup']:.2f}x "
              f"(hits={row['compiled']['level_plan_hits']}, "
              f"fallbacks={row['compiled']['level_plan_fallbacks']})")

    # the acceptance gate: per-instance throughput at batch >= 10
    for mode in ("infer", "train"):
        speedup = rows[f"{mode}_b10"]["speedup"]
        assert speedup >= 1.5, (
            f"compiled {mode} path {speedup:.2f}x at batch 10 — "
            "below the 1.5x acceptance bar")


def test_level_plan_values_match_dynamic():
    """The bench workload itself is value-checked (belt and braces on
    top of tests/test_level_plan.py): one batch, both paths, bit-equal."""
    model = fresh_model(MODEL)
    built = model.build_recursive(10)
    batch = _epoch_batches(10)[0]
    session = repro.Session(built.graph, model.runtime, num_workers=WORKERS,
                            engine=bench_engine())
    ref = session.run(built.root_logits, built.feed_dict(batch))
    got = session.run(built.root_logits, built.feed_dict(batch),
                      shape_profile=built.shape_profiles(batch))
    assert session.last_stats.level_plan_hits == 1
    assert np.array_equal(ref, got)
