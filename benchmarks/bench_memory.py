"""Memory-aware execution bench: sparse gradients and budgeted dispatch.

``make bench-memory`` runs this file.  The workload is the memory story
of a large-vocabulary TreeLSTM training step at batch 25: with dense
``GatherGrad``, every embedding-gradient instance materializes a
``[vocab, embed]`` zero table and the accumulator retains one table per
recursive frame — peak scratch is O(batch x vocab).  With
:class:`~repro.graph.sparse.IndexedSlices` gradients the same step
retains O(touched rows).

Two paired comparisons, recorded as the ``memory`` section of
``BENCH_overhead.json`` (each row carries the engine's
``peak_live_bytes`` estimate and the process ``peak_rss_mb`` stamp —
RSS is a sticky high-water mark, so the reduction gates use the
per-run live-bytes estimate):

* **dense vs sparse** — same step, GatherGrad emission flipped.  Gates:
  peak-scratch reduction >= 5x, virtual-time throughput >= 0.95x, and
  gradients bit-identical.
* **unbounded vs budgeted** — same recorded step under a
  ``memory_budget`` half the unbounded peak: under pressure the
  scheduler prefers deep subtrees over breadth-first fan-out.  Gates:
  bit-identical loss/gradients, same instance count (reorders, never
  sheds), budgeted peak <= unbounded peak.
"""

from __future__ import annotations

import numpy as np

import repro
from benchmarks.common import WORKERS, bench_engine, merge_bench_json
from repro.data import batch_trees, make_treebank
from repro.graph.sparse import set_sparse_gather_grads
from repro.harness.reporting import format_table, peak_rss_mb
from repro.models import TreeLSTMSentiment, tree_lstm_config
from repro.nn import Adagrad, Trainer

BATCH = 25
VOCAB = 10000
LEARNING_RATE = 0.05

#: acceptance gates (ISSUE: memory-aware execution)
MIN_PEAK_REDUCTION = 5.0
MIN_THROUGHPUT_RATIO = 0.95


def _bank():
    return make_treebank(num_train=BATCH, num_val=0, vocab_size=VOCAB,
                         max_words=24, mean_log_words=2.6, seed=13)


def _config():
    return tree_lstm_config(vocab_size=VOCAB)


def _train_step(bank, sparse: bool, memory_budget=None) -> dict:
    """One full large-vocab training step on a fresh model; returns the
    measured row plus the gradient snapshot for bit-identity checks."""
    previous = set_sparse_gather_grads(sparse)
    try:
        runtime = repro.Runtime()
        model = TreeLSTMSentiment(_config(), runtime)
        built = model.build_recursive(BATCH)
        batch = batch_trees(bank.train[:BATCH])
        trainer = Trainer(
            built.graph, built.loss,
            Adagrad(LEARNING_RATE, sparse=sparse), runtime,
            session_kwargs=dict(num_workers=WORKERS, engine=bench_engine(),
                                track_live_bytes=True,
                                memory_budget=memory_budget))
        loss = trainer.step(built.feed_dict(batch))
        stats = trainer.last_step_stats
        grads = trainer.gradient_snapshot()
    finally:
        set_sparse_gather_grads(previous)
    return {
        "row": {
            "gather_grad": "sparse" if sparse else "dense",
            "memory_budget": memory_budget,
            "loss": float(loss),
            "peak_live_bytes": stats.peak_live_bytes,
            "peak_live_mb": stats.peak_live_bytes / 2**20,
            "ops_executed": stats.ops_executed,
            "virtual_time": stats.virtual_time,
            "instances_per_sec": BATCH / stats.virtual_time,
            "peak_rss_mb": peak_rss_mb(),
        },
        "grads": grads,
    }


def _grads_identical(a: dict, b: dict) -> bool:
    return (set(a) == set(b)
            and all(np.array_equal(a[name], b[name]) for name in a))


def test_memory_bench():
    bank = _bank()

    # -- dense vs sparse ------------------------------------------------
    dense = _train_step(bank, sparse=False)
    sparse = _train_step(bank, sparse=True)
    reduction = (dense["row"]["peak_live_bytes"]
                 / sparse["row"]["peak_live_bytes"])
    throughput_ratio = (sparse["row"]["instances_per_sec"]
                        / dense["row"]["instances_per_sec"])
    grads_ok = _grads_identical(dense["grads"], sparse["grads"])

    # -- unbounded vs budgeted (both sparse) ---------------------------
    budget = sparse["row"]["peak_live_bytes"] // 2
    budgeted = _train_step(bank, sparse=True, memory_budget=budget)
    budget_ok = (budgeted["row"]["loss"] == sparse["row"]["loss"]
                 and _grads_identical(sparse["grads"], budgeted["grads"]))

    section = {
        "workload": {"model": "TreeLSTM", "vocab_size": VOCAB,
                     "batch_size": BATCH, "workers": WORKERS,
                     "engine": bench_engine(), "steps": 1,
                     "optimizer": "Adagrad"},
        "dense": dense["row"],
        "sparse": sparse["row"],
        "budgeted": budgeted["row"],
        "peak_scratch_reduction": reduction,
        "throughput_ratio": throughput_ratio,
        "gradients_bit_identical": grads_ok,
        "budget_bytes": budget,
        "budget_bit_identical": budget_ok,
        "budget_peak_ratio": (budgeted["row"]["peak_live_bytes"]
                              / sparse["row"]["peak_live_bytes"]),
    }
    merge_bench_json("overhead", {"memory": section})

    rows = [(r["gather_grad"],
             "none" if r["memory_budget"] is None
             else f"{r['memory_budget'] / 2**20:.1f} MB",
             r["peak_live_mb"], r["ops_executed"],
             r["instances_per_sec"], r["peak_rss_mb"])
            for r in (dense["row"], sparse["row"], budgeted["row"])]
    print()
    print(format_table(
        f"memory-aware execution (TreeLSTM vocab={VOCAB}, batch={BATCH})",
        ["grad", "budget", "peak MiB", "ops", "inst/s", "rss MiB"], rows))
    print(f"  peak-scratch reduction: {reduction:.1f}x  "
          f"throughput ratio: {throughput_ratio:.3f}x  "
          f"gradients identical: {grads_ok}")
    print(f"  budgeted @ {budget / 2**20:.1f} MB: peak ratio "
          f"{section['budget_peak_ratio']:.2f}, identical: {budget_ok}")

    assert grads_ok, "sparse gradients diverged from the dense scatter"
    assert reduction >= MIN_PEAK_REDUCTION, (
        f"peak scratch reduced only {reduction:.1f}x "
        f"(gate {MIN_PEAK_REDUCTION}x)")
    # virtual-time gates only hold on the deterministic backend
    if bench_engine() == "event":
        assert throughput_ratio >= MIN_THROUGHPUT_RATIO, (
            f"sparse throughput {throughput_ratio:.3f}x of dense "
            f"(gate {MIN_THROUGHPUT_RATIO}x)")
    assert budget_ok, "memory budget changed the computed values"
    assert budgeted["row"]["ops_executed"] == sparse["row"]["ops_executed"]
    assert (budgeted["row"]["peak_live_bytes"]
            <= sparse["row"]["peak_live_bytes"]), (
        "budgeted dispatch increased peak scratch")
