"""Scheduler-overhead microbench: frame-spawn rate and dispatch cost.

Unlike the paper-figure benches (which report *virtual* testbed time),
this bench measures the **host wall-clock overhead of the scheduler
itself** — the master-side bookkeeping the FramePlan compilation work
(``repro.runtime.plan``) exists to amortize:

* **frame-spawn rate** — a width x depth lattice of SubGraph chains
  whose bodies do nothing but invoke the next link, so runtime is pure
  frame spawning (binding setup, dependency counters, ready insertion,
  frame return) with one scheduled op per frame.  Reported as
  frames/second and µs/frame.
* **recursive step rate** — countdown recursions through ``cond``:
  frame spawns *plus* the handful of scalar ops a real recursive model
  executes per frame (the Invoke+Cond frame pair per step).
* **per-instance dispatch overhead** — a long chain of tiny ``Tanh`` ops
  (no recursion, no batching) isolating the ready-queue pop / input
  gather / completion path.  Reported as µs/instance.
* **batched dispatch overhead** — a wide wavefront of same-signature ops
  under ``batching=True``, isolating the coalescer path (signature
  computation, bucketing, scatter-back).  Reported as µs/instance.

``BENCH_overhead.json`` keeps a frozen ``before`` block (measured at the
pre-plan PR 3 head) and refreshes ``after`` on every run; the speedup
block is the headline the ISSUE acceptance gates on (>= 1.5x spawn
rate).  ``benchmarks/bench_smoke.py`` re-measures a miniature spawn
workload against the recorded ``after`` as a 2x regression canary.

The ``workerpool_buckets`` block is the **concurrent-bucket serving
canary** for the worker-pool executor backend: a burst of concurrent
TreeLSTM requests served with micro-batching on the two wall-clock
backends, recording the worker-pool's wall-clock win over the threaded
backend and its pool-scaling headroom (host-core bound).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

import repro
from repro import ops
from repro.core.subgraph import SubGraph

from benchmarks.common import bench_engine, save_bench_json

WORKERS = 36
#: spawn lattice: WIDTH concurrent invoke-chains of DEPTH frames each
SPAWN_WIDTH, SPAWN_DEPTH = 16, 250
#: dispatch chain length (sequential tiny ops)
CHAIN_OPS = 3000
#: batched wavefront: WIDTH independent chains of LEN same-signature ops
WAVE_WIDTH, WAVE_LEN = 48, 60
REPEATS = 5


def build_spawn_chain(width: int, depth: int):
    """``width`` concurrent invoke-chains, each spawning ``depth`` frames.

    ``link_i`` does nothing but call ``link_{i-1}`` (the innermost link
    is an identity), so each frame schedules exactly one op — the purest
    frame-spawn workload the execution model admits.
    """
    graph = repro.Graph("spawn_chain_bench")
    with graph.as_default():
        prev = None
        for i in range(depth):
            with SubGraph(f"link{i}") as link:
                x = link.input(repro.float32, ())
                link.output(ops.identity(x) if prev is None else prev(x))
            prev = link
        total = ops.constant(0.0)
        for _ in range(width):
            total = ops.add(total, prev(ops.constant(1.0)))
    return graph, total


def build_spawn_lattice(width: int, depth: int):
    """``width`` concurrent countdown recursions of ``depth`` frames each."""
    graph = repro.Graph("spawn_bench")
    with graph.as_default():
        with SubGraph("countdown") as countdown:
            n = countdown.input(repro.int32, ())
            countdown.declare_outputs([(repro.int32, ())])
            countdown.output(ops.cond(
                ops.less_equal(n, 0),
                lambda: ops.constant(0),
                lambda: ops.add(countdown(ops.subtract(n, ops.constant(1))),
                                ops.constant(1))))
        total = ops.constant(0)
        for _ in range(width):
            total = ops.add(total, countdown(ops.constant(depth)))
    return graph, total


def build_chain(n_ops: int):
    """A sequential chain of tiny elementwise ops (pure dispatch cost)."""
    graph = repro.Graph("dispatch_bench")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (4, 4))
        y = x
        for _ in range(n_ops):
            y = ops.tanh(y)
    return graph, x, y


def build_wavefront(width: int, length: int):
    """``width`` independent same-signature chains (a coalescer workload)."""
    graph = repro.Graph("batched_dispatch_bench")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (4, 4))
        tails = []
        for _ in range(width):
            y = ops.tanh(x)
            for _ in range(length - 1):
                y = ops.tanh(y)
            tails.append(y)
        out = tails[0]
        for t in tails[1:]:
            out = ops.add(out, t)
    return graph, x, out


def measure_python_probe(repeats: int = 5) -> float:
    """Host speed probe: best-of-N microseconds for a fixed pure-Python
    loop.  Recorded next to the microbench results so the bench-smoke
    canary can rescale the absolute wall-clock baseline to the speed of
    the host it runs on (a slower CI container fails only on a *real*
    regression, not on being a slower machine)."""
    best = float("inf")
    total = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        for i in range(200_000):
            total += i & 7
        best = min(best, time.perf_counter() - t0)
    assert total >= 0
    return 1e6 * best


def _best_wall(run_fn, repeats: int = REPEATS) -> float:
    """Best-of-N wall time of ``run_fn`` (first call outside the timer
    warms plan/consumer caches exactly like a serving process would)."""
    run_fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_spawn() -> dict:
    graph, total = build_spawn_chain(SPAWN_WIDTH, SPAWN_DEPTH)
    sess = repro.Session(graph, repro.Runtime(), num_workers=WORKERS,
                         engine=bench_engine())
    wall = _best_wall(lambda: sess.run(total))
    stats = sess.last_stats
    assert float(sess.run(total)) == float(SPAWN_WIDTH)
    return {"frames": stats.frames_created,
            "instances": stats.ops_executed,
            "wall_s": wall,
            "frames_per_sec": stats.frames_created / wall,
            "us_per_frame": 1e6 * wall / stats.frames_created}


def measure_recursion() -> dict:
    graph, total = build_spawn_lattice(SPAWN_WIDTH, SPAWN_DEPTH)
    sess = repro.Session(graph, repro.Runtime(), num_workers=WORKERS,
                         engine=bench_engine())
    wall = _best_wall(lambda: sess.run(total))
    stats = sess.last_stats
    assert int(sess.run(total)) == SPAWN_WIDTH * SPAWN_DEPTH
    return {"frames": stats.frames_created,
            "instances": stats.ops_executed,
            "wall_s": wall,
            "frames_per_sec": stats.frames_created / wall,
            "us_per_frame": 1e6 * wall / stats.frames_created}


def measure_dispatch() -> dict:
    graph, x, y = build_chain(CHAIN_OPS)
    sess = repro.Session(graph, repro.Runtime(), num_workers=WORKERS,
                         engine=bench_engine())
    feed = {x: np.zeros((4, 4), np.float32)}
    wall = _best_wall(lambda: sess.run(y, feed))
    stats = sess.last_stats
    return {"instances": stats.ops_executed,
            "wall_s": wall,
            "us_per_instance": 1e6 * wall / stats.ops_executed}


def measure_batched_dispatch() -> dict:
    graph, x, out = build_wavefront(WAVE_WIDTH, WAVE_LEN)
    sess = repro.Session(graph, repro.Runtime(), num_workers=WORKERS,
                         batching=True, engine=bench_engine())
    feed = {x: np.zeros((4, 4), np.float32)}
    wall = _best_wall(lambda: sess.run(out, feed))
    stats = sess.last_stats
    assert stats.batches > 0, "coalescer never fused on the wavefront bench"
    return {"instances": stats.ops_executed,
            "batches": stats.batches,
            "wall_s": wall,
            "us_per_instance": 1e6 * wall / stats.ops_executed}


# -- worker-pool concurrent-bucket canary -------------------------------------
#
# The multi-instance serving workload the scheduler/executor split's
# third backend exists for: a burst of concurrent TreeLSTM requests
# (irregular trees, so wavefronts stagger across requests) served with
# micro-batching on the two wall-clock backends.  The worker-pool
# backend's centralized master drains whole ready wavefronts into the
# coalescer and lands independent fused buckets on its kernel pool,
# where its workers never touch the master lock — against the threaded
# backend's racing workers (3+ lock round-trips per instance) that is a
# stable wall-clock win even on one host core, and on a multi-core host
# the independent buckets additionally execute concurrently (numpy
# kernels release the GIL; ``pool_scaling_speedup`` records that
# headroom and is ~1.0 on a single-CPU host).

BUCKET_REQUESTS = 24   # concurrent root instances (multi-instance serving)
BUCKET_IN_FLIGHT = 12
BUCKET_WORKERS = 4
BUCKET_HIDDEN = 64     # wide enough that fused kernels do real work


def _bucket_canary_setup():
    from repro.data import make_treebank
    from repro.harness.serving import burst_request_stream
    from repro.models import TreeLSTMSentiment, tree_lstm_config

    bank = make_treebank(num_train=24, num_val=4, vocab_size=80, seed=9)
    config = tree_lstm_config(hidden=BUCKET_HIDDEN, embed_dim=32,
                              vocab_size=80)
    stream = burst_request_stream(BUCKET_REQUESTS, len(bank.train), seed=7)
    make_model = lambda: TreeLSTMSentiment(config, repro.Runtime())  # noqa
    return bank, stream, make_model


def _serve_bucket_burst(bank, stream, make_model, engine: str,
                        workers: int, repeats: int = 3) -> dict:
    """Serve the canary stream; best-of-N wall clock around the session."""
    from repro.harness import serve_stream

    best = None
    for _ in range(repeats):
        model = make_model()
        t0 = time.perf_counter()
        result = serve_stream(model, bank.train, stream=stream,
                              max_in_flight=BUCKET_IN_FLIGHT, engine=engine,
                              batching=True, num_workers=workers, seed=7)
        wall = time.perf_counter() - t0
        assert result.instances == BUCKET_REQUESTS
        if best is None or wall < best[0]:
            best = (wall, result.stats)
    wall, stats = best
    return {"engine": engine, "workers": workers, "wall_s": wall,
            "fused_batches": stats.batches,
            "mean_batch": stats.batch_efficiency,
            "max_batch": stats.max_batch}


def measure_workerpool_buckets() -> dict:
    """Worker-pool vs threaded backend on the serving canary, plus pool
    width 1 vs BUCKET_WORKERS on the worker-pool backend."""
    bank, stream, make_model = _bucket_canary_setup()
    pool = _serve_bucket_burst(bank, stream, make_model,
                               "workerpool", BUCKET_WORKERS)
    pool_serial = _serve_bucket_burst(bank, stream, make_model,
                                      "workerpool", 1)
    threaded = _serve_bucket_burst(bank, stream, make_model,
                                   "threaded", BUCKET_WORKERS)
    return {
        "workload": {"model": "TreeLSTM", "hidden": BUCKET_HIDDEN,
                     "requests": BUCKET_REQUESTS,
                     "max_in_flight": BUCKET_IN_FLIGHT},
        "host_cpus": os.cpu_count(),
        "workerpool": pool,
        "workerpool_serial": pool_serial,
        "threaded": threaded,
        # pool concurrency win; bounded by host cores (~1.0 on 1 CPU)
        "pool_scaling_speedup": pool_serial["wall_s"] / pool["wall_s"],
        # centralized scheduling + off-master kernels vs racing workers
        "vs_threaded_speedup": threaded["wall_s"] / pool["wall_s"],
    }


def _headline(block: dict) -> dict:
    return {"spawn_frames_per_sec": block["spawn"]["frames_per_sec"],
            "spawn_us_per_frame": block["spawn"]["us_per_frame"],
            "recursion_frames_per_sec": block["recursion"]["frames_per_sec"],
            "dispatch_us_per_instance": block["dispatch"]["us_per_instance"],
            "batched_dispatch_us_per_instance":
                block["batched_dispatch"]["us_per_instance"]}


def test_scheduler_overhead_microbench():
    after = {"spawn": measure_spawn(),
             "recursion": measure_recursion(),
             "dispatch": measure_dispatch(),
             "batched_dispatch": measure_batched_dispatch()}

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_overhead.json")
    before = None
    if os.path.exists(path):
        with open(path) as fh:
            recorded = json.load(fh)
        before = recorded.get("before")
    if before is None:
        # first run ever: the current code *is* the baseline
        before = _headline(after)

    headline = _headline(after)
    payload = {
        "description": "scheduler microbench: frame-spawn rate and "
                       "per-instance dispatch overhead (host wall-clock)",
        "host_probe_us": measure_python_probe(),
        # refactor-gate evidence for the PR 5 scheduler/executor split:
        # ratios of the post-split event backend to the PR 4 engines,
        # measured pairwise-interleaved (best of 6 alternating runs in
        # one host session against a PR 4 worktree).  A static record —
        # the PR 4 code is gone, so a rerun cannot reproduce it.
        "scheduler_core_parity_vs_pr4": {
            "method": "pairwise-interleaved best-of-6, one host session",
            "spawn_rate": 1.008, "recursion_rate": 0.960,
            "dispatch": 1.031, "batched_dispatch": 0.999,
        },
        "workerpool_buckets": measure_workerpool_buckets(),
        "workloads": {
            "spawn": {"width": SPAWN_WIDTH, "depth": SPAWN_DEPTH,
                      "kind": "invoke chain"},
            "recursion": {"width": SPAWN_WIDTH, "depth": SPAWN_DEPTH,
                          "kind": "countdown via cond"},
            "dispatch": {"chain_ops": CHAIN_OPS},
            "batched_dispatch": {"width": WAVE_WIDTH, "length": WAVE_LEN},
        },
        "before": before,
        "after": headline,
        "detail": after,
        "speedup": {
            "spawn_rate":
                headline["spawn_frames_per_sec"]
                / before["spawn_frames_per_sec"],
            "recursion_rate":
                headline["recursion_frames_per_sec"]
                / before["recursion_frames_per_sec"],
            "dispatch":
                before["dispatch_us_per_instance"]
                / headline["dispatch_us_per_instance"],
            "batched_dispatch":
                before["batched_dispatch_us_per_instance"]
                / headline["batched_dispatch_us_per_instance"],
        },
    }
    save_bench_json("overhead", payload)
    print("\nscheduler overhead microbench (wall-clock):")
    print(f"  spawn: {headline['spawn_frames_per_sec']:,.0f} frames/s "
          f"({headline['spawn_us_per_frame']:.1f} us/frame), "
          f"{payload['speedup']['spawn_rate']:.2f}x vs recorded baseline")
    print(f"  recursion: {headline['recursion_frames_per_sec']:,.0f} "
          f"frames/s ({payload['speedup']['recursion_rate']:.2f}x)")
    print(f"  dispatch: {headline['dispatch_us_per_instance']:.1f} "
          f"us/instance ({payload['speedup']['dispatch']:.2f}x)")
    print(f"  batched dispatch: "
          f"{headline['batched_dispatch_us_per_instance']:.1f} us/instance "
          f"({payload['speedup']['batched_dispatch']:.2f}x)")
    buckets = payload["workerpool_buckets"]
    print(f"  workerpool buckets: {buckets['workerpool']['wall_s'] * 1e3:.0f}"
          f" ms @ {BUCKET_WORKERS} workers "
          f"(mean batch {buckets['workerpool']['mean_batch']:.1f}), "
          f"{buckets['vs_threaded_speedup']:.2f}x vs threaded, "
          f"pool scaling {buckets['pool_scaling_speedup']:.2f}x "
          f"on {buckets['host_cpus']} host cpu(s)")
    assert headline["spawn_frames_per_sec"] > 0
    assert buckets["workerpool"]["fused_batches"] > 0
