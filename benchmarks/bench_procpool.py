"""Multi-process pool scaling: the GIL-escape measurement.

Two paired measurements, merged as the ``procpool_scaling`` section of
``BENCH_overhead.json`` (next to ``workerpool_buckets``, its in-process
counterpart):

* **Serving throughput** on the same TreeLSTM bucket canary the
  workerpool bench uses, at 1/2/4 procpool worker *processes*, against
  the threaded in-process workerpool at the same width.  In-process
  pools serialize on the GIL wherever numpy holds it; worker processes
  do not — on a multi-core host the 4-process row should clear the
  threaded pool by >1.5x, while on a 1-CPU host every row collapses to
  ~1.0x (which is why the payload carries host cpu_count provenance).
* **Measured data-parallel training** through
  :class:`~repro.distributed.cluster.DataParallelCluster` in
  ``execution="procpool"`` mode at M=1/2/4 — real wall-clock compute
  per step instead of the simulated mode's virtual times.

Run via ``make bench-procpool``.
"""

from __future__ import annotations

import os
import time

import repro
from common import merge_bench_json
from repro.runtime import available_executors

PROC_WORKER_SWEEP = (1, 2, 4)
REQUESTS = 24
IN_FLIGHT = 12
HIDDEN = 64
CLUSTER_BATCH = 8
CLUSTER_STEPS = 2


def _canary_setup():
    from repro.data import make_treebank
    from repro.harness.serving import burst_request_stream
    from repro.models import TreeLSTMSentiment, tree_lstm_config

    bank = make_treebank(num_train=24, num_val=4, vocab_size=80, seed=9)
    config = tree_lstm_config(hidden=HIDDEN, embed_dim=32, vocab_size=80)
    stream = burst_request_stream(REQUESTS, len(bank.train), seed=7)
    make_model = lambda: TreeLSTMSentiment(config, repro.Runtime())  # noqa
    return bank, stream, make_model


def _serve(bank, stream, make_model, engine: str, workers: int,
           repeats: int = 3) -> dict:
    from repro.harness import serve_stream

    best = None
    for _ in range(repeats):
        model = make_model()
        t0 = time.perf_counter()
        result = serve_stream(model, bank.train, stream=stream,
                              max_in_flight=IN_FLIGHT, engine=engine,
                              batching=True, num_workers=workers, seed=7)
        wall = time.perf_counter() - t0
        assert result.instances == REQUESTS
        if best is None or wall < best:
            best = wall
    return {"engine": engine, "workers": workers, "wall_s": best,
            "requests_per_sec": REQUESTS / best}


def measure_procpool_serving() -> dict:
    """Procpool at 1/2/4 processes vs the threaded workerpool."""
    bank, stream, make_model = _canary_setup()
    rows = {f"procpool_{w}": _serve(bank, stream, make_model, "procpool", w)
            for w in PROC_WORKER_SWEEP}
    rows["workerpool_4"] = _serve(bank, stream, make_model, "workerpool", 4)
    widest = rows[f"procpool_{PROC_WORKER_SWEEP[-1]}"]
    return {
        "workload": {"model": "TreeLSTM", "hidden": HIDDEN,
                     "requests": REQUESTS, "max_in_flight": IN_FLIGHT},
        **rows,
        # process-parallel win over one process; bounded by host cores
        "pool_scaling_speedup":
            rows["procpool_1"]["wall_s"] / widest["wall_s"],
        # the GIL-escape headline: 4 processes vs the 4-thread pool
        "vs_workerpool_speedup":
            rows["workerpool_4"]["wall_s"] / widest["wall_s"],
    }


def measure_cluster_scaling() -> dict:
    """Measured data-parallel training step times at M machines."""
    from repro.data import make_treebank
    from repro.distributed.cluster import DataParallelCluster
    from repro.models import ModelConfig, TreeRNNSentiment
    from repro.nn import Adagrad

    bank = make_treebank(num_train=CLUSTER_BATCH, num_val=2, vocab_size=40,
                         seed=13)
    rows = {}
    for machines in PROC_WORKER_SWEEP:
        runtime = repro.Runtime()
        model = TreeRNNSentiment(
            ModelConfig(hidden=16, embed_dim=16, vocab_size=40), runtime)
        with DataParallelCluster(model, global_batch=CLUSTER_BATCH,
                                 num_machines=machines,
                                 optimizer=Adagrad(0.05), runtime=runtime,
                                 execution="procpool") as cluster:
            throughput = cluster.throughput(bank.train, steps=CLUSTER_STEPS)
        rows[f"machines_{machines}"] = {
            "machines": machines, "instances_per_sec": throughput}
    base = rows[f"machines_{PROC_WORKER_SWEEP[0]}"]["instances_per_sec"]
    for row in rows.values():
        row["speedup"] = row["instances_per_sec"] / base
    return {"workload": {"model": "TreeRNN", "hidden": 16,
                         "global_batch": CLUSTER_BATCH,
                         "steps": CLUSTER_STEPS},
            "execution": "procpool (measured wall clock + modeled comm)",
            **rows}


def _measure_feed_coalescing(coalesce: bool) -> dict:
    """One batched TreeLSTM run on procpool with the feed-queue
    coalescing knob pinned; reads the engine's put/task counters."""
    from repro.data import make_treebank
    from repro.data.batching import batch_trees
    from repro.models import TreeLSTMSentiment, tree_lstm_config

    previous = os.environ.get("REPRO_PROCPOOL_COALESCE")
    os.environ["REPRO_PROCPOOL_COALESCE"] = "1" if coalesce else "0"
    try:
        bank = make_treebank(num_train=8, num_val=2, vocab_size=80, seed=9)
        model = TreeLSTMSentiment(
            tree_lstm_config(hidden=HIDDEN, embed_dim=32, vocab_size=80),
            repro.Runtime())
        built = model.build_recursive(8)
        batch = batch_trees(bank.train[:8])
        session = repro.Session(built.graph, model.runtime, num_workers=2,
                                engine="procpool", batching=True)
        best = None
        for _ in range(3):
            t0 = time.perf_counter()
            logits = session.run(built.root_logits, built.feed_dict(batch))
            wall = time.perf_counter() - t0
            if best is None or wall < best[0]:
                engine = session._engine
                best = (wall, engine._feed_puts, engine._feed_tasks,
                        engine._shipped_tasks, logits)
        wall, puts, tasks, shipped, logits = best
        return {"coalesce": coalesce, "wall_s": wall, "feed_puts": puts,
                "feed_tasks": tasks, "shipped_tasks": shipped,
                "_logits": logits}
    finally:
        if previous is None:
            os.environ.pop("REPRO_PROCPOOL_COALESCE", None)
        else:
            os.environ["REPRO_PROCPOOL_COALESCE"] = previous


def test_procpool_feed_coalescing():
    """Paired before/after micro-row for feed-queue put coalescing: one
    queue put per dispatch wavefront instead of one per shipped bucket.
    Values must be unchanged; uncoalesced runs pay one put per task by
    construction, coalesced runs never pay more."""
    import numpy as np

    assert "procpool" in available_executors(), \
        "multi-process backend unavailable (no fork start method)"
    uncoalesced = _measure_feed_coalescing(coalesce=False)
    coalesced = _measure_feed_coalescing(coalesce=True)
    assert np.array_equal(uncoalesced.pop("_logits"),
                          coalesced.pop("_logits"))
    assert uncoalesced["feed_puts"] == uncoalesced["feed_tasks"]
    assert coalesced["feed_puts"] <= coalesced["feed_tasks"]
    reduction = (coalesced["feed_tasks"] / coalesced["feed_puts"]
                 if coalesced["feed_puts"] else 1.0)
    payload = {
        "description": "feed-queue put coalescing, paired one-batch "
                       "TreeLSTM run (tasks unchanged, puts per "
                       "dispatch wavefront)",
        "workload": {"model": "TreeLSTM", "hidden": HIDDEN, "batch": 8,
                     "workers": 2},
        "cpu_count": os.cpu_count(),
        "uncoalesced": uncoalesced, "coalesced": coalesced,
        "tasks_per_put": reduction,
    }
    merge_bench_json("overhead", {"procpool_feed_coalescing": payload})
    print(f"\nfeed coalescing: uncoalesced "
          f"{uncoalesced['feed_puts']} puts/{uncoalesced['feed_tasks']} "
          f"tasks -> coalesced {coalesced['feed_puts']} puts/"
          f"{coalesced['feed_tasks']} tasks ({reduction:.2f} tasks/put)")


def test_procpool_scaling():
    assert "procpool" in available_executors(), \
        "multi-process backend unavailable (no fork start method)"
    section = {"serving": measure_procpool_serving(),
               "cluster": measure_cluster_scaling()}
    path = merge_bench_json("overhead", {"procpool_scaling": section})
    print(f"\nwrote {path}")
    serving = section["serving"]
    print(f"host cpus: {os.cpu_count()}")
    for key in [f"procpool_{w}" for w in PROC_WORKER_SWEEP] + ["workerpool_4"]:
        row = serving[key]
        print(f"  {key:<14} wall={row['wall_s']:.3f}s "
              f"({row['requests_per_sec']:.1f} req/s)")
    print(f"  pool_scaling_speedup: {serving['pool_scaling_speedup']:.2f}x")
    print(f"  vs_workerpool_speedup: {serving['vs_workerpool_speedup']:.2f}x")
    for key, row in section["cluster"].items():
        if key.startswith("machines_"):
            print(f"  cluster {key}: {row['instances_per_sec']:.1f} inst/s "
                  f"({row['speedup']:.2f}x)")
    # The acceptance bar — >1.5x vs the threaded workerpool at 4 workers
    # — needs >= 4 real cores to be physically expressible.  On fewer
    # cores a process pool is pure IPC overhead with zero parallel
    # headroom (slower than in-process is *expected*), so the bench
    # records the honest numbers plus cpu_count provenance and gates
    # nothing; the recorded row is interpretable wherever it was run.
    if (os.cpu_count() or 1) >= 4:
        assert serving["vs_workerpool_speedup"] > 1.5, serving
