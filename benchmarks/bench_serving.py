"""Continuous-batching serving baseline (beyond the paper).

Serves one seeded open-loop Poisson request stream of TreeLSTM trees
through the streaming server four ways — {wave-synchronized, continuous
admission} x {unbatched, micro-batched} — at *equal concurrency*
(``max_in_flight``), on the deterministic virtual-time engine.

The claims this bench records into ``BENCH_serving.json``:

* continuous admission beats wave-synchronized serving in throughput at
  equal concurrency: waves starve the coalescer at every wave tail
  (while stragglers finish, the ready queue drains and workers idle),
  continuous admission keeps ``max_in_flight`` root instances resident;
* the win shows up in the tail: wave admission piles queue time onto
  requests that arrive mid-wave, so p95/p99 latency drops under
  continuous admission;
* per-request outputs are identical across all four configurations
  (admission and batching change scheduling, never values).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import (WORKERS, bench_engine, fresh_model,
                               merge_bench_json, treebank)
from repro.harness import (format_latency, format_table,
                           poisson_request_stream, save_results, serve_stream)

NUM_REQUESTS = 48
ARRIVAL_RATE = 2000.0     # requests per virtual second: saturating load
MAX_IN_FLIGHT = 16
SEED = 3

CONFIGS = [("wave", False), ("wave", True),
           ("continuous", False), ("continuous", True)]


def collect():
    bank = treebank()
    stream = poisson_request_stream(NUM_REQUESTS, ARRIVAL_RATE,
                                    len(bank.train), seed=SEED)
    results = {}
    for admission, batching in CONFIGS:
        model = fresh_model("TreeLSTM")
        results[(admission, batching)] = serve_stream(
            model, bank.train, stream=stream, max_in_flight=MAX_IN_FLIGHT,
            admission=admission, batching=batching, num_workers=WORKERS,
            engine=bench_engine(), seed=SEED)
    return results


def test_serving_continuous_vs_wave(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    payload = {"model": "TreeLSTM", "num_requests": NUM_REQUESTS,
               "arrival_rate": ARRIVAL_RATE, "max_in_flight": MAX_IN_FLIGHT,
               "seed": SEED, "configs": {}}
    for (admission, batching), result in results.items():
        latency = result.latency_summary()
        name = f"{admission}/{'batched' if batching else 'unbatched'}"
        rows.append([admission, "batched" if batching else "unbatched",
                     result.throughput,
                     latency["total"]["p50"] * 1e3,
                     latency["total"]["p95"] * 1e3,
                     latency["total"]["p99"] * 1e3,
                     latency["queue"]["p95"] * 1e3,
                     result.stats.batch_efficiency])
        payload["configs"][name] = {
            "throughput": result.throughput,
            "virtual_seconds": result.virtual_seconds,
            "latency": latency,
            "fused_batches": result.stats.batches,
            "mean_batch": result.stats.batch_efficiency,
            "max_batch": result.stats.max_batch,
        }

    print()
    print(format_table(
        f"Serving — TreeLSTM, {NUM_REQUESTS} Poisson requests @ "
        f"{ARRIVAL_RATE:.0f}/s, max_in_flight={MAX_IN_FLIGHT} "
        "(instances/s; latency ms, virtual testbed)",
        ["admission", "mode", "inst/s", "p50", "p95", "p99",
         "queue p95", "mean batch"], rows))
    for (admission, batching), result in results.items():
        if batching:
            print()
            print(format_latency(result.stats,
                                 title=f"{admission}/batched latency"))

    wave_b = results[("wave", True)]
    cont_b = results[("continuous", True)]
    wave_u = results[("wave", False)]
    cont_u = results[("continuous", False)]
    payload["continuous_over_wave_batched"] = (cont_b.throughput
                                               / wave_b.throughput)
    payload["continuous_over_wave_unbatched"] = (cont_u.throughput
                                                 / wave_u.throughput)
    payload["batched_over_unbatched_continuous"] = (cont_b.throughput
                                                    / cont_u.throughput)
    print(f"\ncontinuous/wave (batched): "
          f"{payload['continuous_over_wave_batched']:.2f}x   "
          f"batched/unbatched (continuous): "
          f"{payload['batched_over_unbatched_continuous']:.2f}x")
    save_results("serving_continuous_batching", payload["configs"])
    # merge: the SLO bench and the soak own their own sections of
    # BENCH_serving.json ("slo", "soak") — don't clobber them
    merge_bench_json("serving", payload)

    # values never depend on admission or batching
    reference = results[("wave", False)]
    for result in results.values():
        for rid, logits in reference.request_logits.items():
            assert np.array_equal(logits, result.request_logits[rid])

    # continuous admission removes wave-tail starvation
    assert cont_b.throughput > wave_b.throughput, \
        "continuous batched must beat wave batched at equal concurrency"
    assert cont_u.throughput > wave_u.throughput, \
        "continuous unbatched must beat wave unbatched"
    # and the tail gets shorter, not just the mean
    assert (cont_b.latency_summary()["total"]["p95"]
            < wave_b.latency_summary()["total"]["p95"])
    # micro-batching still pays under continuous admission
    assert cont_b.throughput > 1.5 * cont_u.throughput
