"""SLO serving under overload: EDF + cost shedding vs FIFO + queue cap.

One seeded Poisson stream of TreeLSTM trees is offered at >= 2x the
measured continuous-batching service capacity, with a size-proportional
completion SLO per request (small trees promise tight latencies, big
trees looser ones).  The identical stream is served two ways at equal
concurrency:

* **baseline** — the blind serving loop: FIFO admission, queue-depth
  cap, deadlines enforced but never consulted for ordering or shedding;
* **slo** — EDF admission (tight-deadline small trees overtake big
  backlogged ones) + cost-predicted shedding (arrivals whose deadline is
  infeasible against the predicted backlog, or that would blow the
  queued-cost budget, are rejected up front instead of timing out after
  queueing).

The claims recorded into the ``slo`` section of ``BENCH_serving.json``:

* higher goodput (deadline-meeting completions) under >= 2x overload;
* lower p99.9 end-to-end latency for small trees (at or below the
  median node count) — the requests a blind FIFO parks behind whole
  big-tree backlogs;
* per-request values of commonly-served requests are bit-identical:
  admission policy changes scheduling, never results.
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import (WORKERS, bench_engine, fresh_model,
                               merge_bench_json, treebank)
from repro.harness import (format_table, poisson_request_stream,
                           save_results, serve_stream)

NUM_REQUESTS = 400
#: measured continuous/batched capacity is ~740 req/s (BENCH_serving
#: configs); 1600/s offered is >= 2x overload
ARRIVAL_RATE = 1600.0
MAX_IN_FLIGHT = 16
QUEUE_CAP = 32            # baseline's blind depth cap
QUEUE_COST_CAP = 0.04     # slo config's predicted-cost budget (seconds)
SEED = 3


def _slo_slack(tree) -> float:
    """Size-proportional completion SLO: small trees promise tight
    latencies, big trees looser ones."""
    return 0.01 + 0.0005 * tree.num_nodes


def collect():
    bank = treebank()
    stream = poisson_request_stream(NUM_REQUESTS, ARRIVAL_RATE,
                                    len(bank.train), seed=SEED)
    common = dict(stream=stream, max_in_flight=MAX_IN_FLIGHT,
                  batching=True, num_workers=WORKERS,
                  deadline_slack=_slo_slack, enforce_deadlines=True,
                  engine=bench_engine(), seed=SEED)
    baseline = serve_stream(fresh_model("TreeLSTM"), bank.train,
                            order="fifo", shedding="cap",
                            queue_cap=QUEUE_CAP, **common)
    slo = serve_stream(fresh_model("TreeLSTM"), bank.train,
                       order="edf", shedding="cost",
                       queue_cost_cap=QUEUE_COST_CAP, **common)
    return bank, stream, baseline, slo


def _small_tree_p999(result, stream, bank) -> tuple:
    """p99.9 end-to-end latency over completed small trees (node count
    at or below the stream's median)."""
    sizes = [bank.train[idx].num_nodes for _, idx in stream.arrivals]
    median = float(np.median(sizes))
    small = [result.request_latencies[rid]
             for rid, (_, idx) in enumerate(stream.arrivals)
             if rid in result.request_latencies
             and bank.train[idx].num_nodes <= median]
    if not small:
        return float("inf"), 0
    return float(np.percentile(small, 99.9)), len(small)


def test_slo_serving_beats_blind_fifo_under_overload(benchmark):
    bank, stream, baseline, slo = benchmark.pedantic(
        collect, rounds=1, iterations=1)

    base_p999, base_n = _small_tree_p999(baseline, stream, bank)
    slo_p999, slo_n = _small_tree_p999(slo, stream, bank)

    rows, payload_cfg = [], {}
    for name, result, p999, n in (("fifo+cap", baseline, base_p999, base_n),
                                  ("edf+cost", slo, slo_p999, slo_n)):
        latency = result.latency_summary()
        rows.append([name, result.goodput, result.instances,
                     result.rejected, result.timed_out,
                     result.deadline_misses,
                     latency["total"].get("p99.9", 0.0) * 1e3, p999 * 1e3])
        payload_cfg[name] = {
            "goodput": result.goodput,
            "completed": result.instances,
            "rejected": result.rejected,
            "timed_out": result.timed_out,
            "deadline_misses": result.deadline_misses,
            "virtual_seconds": result.virtual_seconds,
            "latency": latency,
            "small_tree_p999": p999,
            "small_tree_completions": n,
        }

    print()
    print(format_table(
        f"SLO serving — TreeLSTM, {NUM_REQUESTS} Poisson requests @ "
        f"{ARRIVAL_RATE:.0f}/s (~2.2x capacity), "
        f"max_in_flight={MAX_IN_FLIGHT}, size-proportional deadlines",
        ["config", "goodput", "done", "shed", "timed out", "misses",
         "p99.9 ms", "small p99.9 ms"], rows))
    print(f"\ngoodput edf+cost / fifo+cap: "
          f"{slo.goodput / max(1, baseline.goodput):.2f}x   "
          f"small-tree p99.9: {slo_p999 * 1e3:.2f} ms vs "
          f"{base_p999 * 1e3:.2f} ms")

    payload = {"model": "TreeLSTM", "num_requests": NUM_REQUESTS,
               "arrival_rate": ARRIVAL_RATE,
               "max_in_flight": MAX_IN_FLIGHT, "queue_cap": QUEUE_CAP,
               "queue_cost_cap": QUEUE_COST_CAP, "seed": SEED,
               "deadline_slack": "0.01 + 0.0005 * num_nodes",
               "configs": payload_cfg,
               "goodput_ratio": slo.goodput / max(1, baseline.goodput)}
    save_results("serving_slo_overload", payload)
    merge_bench_json("serving", {"slo": payload})

    # values of commonly-served requests never depend on the policy
    shared = set(baseline.request_logits) & set(slo.request_logits)
    assert shared, "the two configs served no common request"
    for rid in shared:
        assert np.array_equal(baseline.request_logits[rid],
                              slo.request_logits[rid]), rid

    # the SLO stack turns overload into useful work ...
    assert slo.goodput > baseline.goodput, \
        (f"edf+cost goodput {slo.goodput} must beat fifo+cap "
         f"{baseline.goodput} at >= 2x offered load")
    # ... and protects the small-tree tail
    assert slo_p999 < base_p999, \
        (f"small-tree p99.9 {slo_p999:.4f}s must beat blind FIFO's "
         f"{base_p999:.4f}s")
