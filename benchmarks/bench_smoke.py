"""Tiny-config regression canary for the paper benchmarks.

``make bench-smoke`` runs this file: miniature fig7/table2 sweeps (small
treebank, one measured step, reduced batch sizes) that exercise every
runner kind on the training *and* inference paths — including the batched
backward pass — in well under the tier-1 watchdog budget.  It asserts
sanity (positive throughput, batched == unbatched losses bit-for-bit,
fusion actually happening), not the paper's shape claims; the full
benches own those.
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache

import numpy as np
import pytest

from benchmarks.common import runner_config
import repro
from repro import Runtime
from repro.data import make_treebank
from repro.data.batching import batch_trees
from repro.harness import (make_runner, measure_throughput,
                           poisson_request_stream, serve_stream)
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)

SMOKE_BATCHES = (1, 6)
SMOKE_FACTORIES = {
    "TreeRNN": lambda: TreeRNNSentiment(
        ModelConfig(hidden=12, embed_dim=12, vocab_size=50), Runtime()),
    "RNTN": lambda: RNTNSentiment(
        ModelConfig(hidden=8, embed_dim=8, vocab_size=50), Runtime()),
    "TreeLSTM": lambda: TreeLSTMSentiment(
        tree_lstm_config(hidden=12, embed_dim=8, vocab_size=50), Runtime()),
}


@lru_cache(maxsize=None)
def smoke_bank():
    return make_treebank(num_train=12, num_val=4, vocab_size=50, seed=19)


def test_smoke_fig7_training_all_kinds():
    """Fig7 in miniature: every training runner produces finite positive
    throughput on a small model at both smoke batch sizes."""
    for kind in ("Recursive", "BatchedRecursive", "Iterative", "Unrolling"):
        for batch_size in SMOKE_BATCHES:
            runner = make_runner(kind, SMOKE_FACTORIES["TreeRNN"](),
                                 batch_size, runner_config())
            result = measure_throughput(runner, smoke_bank().train,
                                        batch_size, "train", steps=1,
                                        warmup=0, seed=3)
            assert np.isfinite(result.throughput)
            assert result.throughput > 0, f"{kind} b={batch_size}"


def test_smoke_table2_infer_and_train():
    """Table2 in miniature: TreeLSTM across all four kinds, both modes."""
    for kind in ("Recursive", "BatchedRecursive", "Iterative", "Folding"):
        for mode in ("infer", "train"):
            runner = make_runner(kind, SMOKE_FACTORIES["TreeLSTM"](), 6,
                                 runner_config())
            result = measure_throughput(runner, smoke_bank().train, 6, mode,
                                        steps=1, warmup=0, seed=3)
            assert result.throughput > 0, f"{kind}/{mode}"


def test_smoke_batched_training_is_equivalent_and_fused():
    """The canary for the batched backward pass: same batch, bit-identical
    loss, backward fusion observed, and no throughput collapse."""
    bank = smoke_bank()
    batch = batch_trees(bank.train[:6])
    losses = {}
    vtimes = {}
    for kind in ("Recursive", "BatchedRecursive"):
        runner = make_runner(kind, SMOKE_FACTORIES["RNTN"](), 6,
                             runner_config())
        loss, vtime = runner.train_step(batch)
        losses[kind] = loss
        vtimes[kind] = vtime
        if kind == "BatchedRecursive":
            stats = runner.trainer.last_step_stats
            assert stats.batches > 0
            assert "CacheLookup" in stats.batch_count_by_type
            assert "InvokeGrad" in stats.batch_count_by_type
    assert losses["Recursive"] == losses["BatchedRecursive"]
    # regression canary: batching must never slow training down at this
    # concurrency (generous 0.9 bound to stay noise-proof).  Only the
    # deterministic virtual-time backend supports a ratio gate; under
    # --engine threaded/workerpool the times are host wall-clock noise.
    if runner_config().engine == "event":
        assert vtimes["BatchedRecursive"] <= vtimes["Recursive"] / 0.9


def test_smoke_level_plan_canary():
    """Compiled-dispatch canary: the level-plan fast path must admit a
    profiled smoke batch (hit, no fallback) and reproduce the dynamic
    path's logits bit-for-bit — the always-on guard for the two-tier
    dispatch equivalence contract (the full paired bench is
    ``make bench-level``)."""
    bank = smoke_bank()
    batch = batch_trees(bank.train[:6])
    model = SMOKE_FACTORIES["TreeRNN"]()
    built = model.build_recursive(6)
    config = runner_config()
    session = repro.Session(built.graph, model.runtime,
                            num_workers=config.num_workers,
                            engine=config.engine)
    ref = session.run(built.root_logits, built.feed_dict(batch))
    got = session.run(built.root_logits, built.feed_dict(batch),
                      shape_profile=built.shape_profiles(batch))
    stats = session.last_stats
    assert stats.level_plan_hits == 1
    assert stats.level_plan_fallbacks == 0
    assert np.array_equal(ref, got)


def test_smoke_level_canon_canary():
    """Canonicalization canary: a 50-shape heavy-tailed stream through
    one canonicalizing session (canon depth 3) must produce zero
    fallbacks and a compile-cache hit rate >= 0.9 — the always-on guard
    that deep shape streams converge onto the small canonical plan set
    (the full 500-request row is ``make bench-level``)."""
    from benchmarks.bench_level_plan import run_canon_stream

    row = run_canon_stream(requests=50, canon_depth=3, seed=23,
                           max_depth=7)
    assert row["fallbacks"] == 0
    assert row["partial_roots"] == 50
    assert row["subtree_runs"] >= 50
    assert row["cache_hit_rate"] >= 0.9, row
    assert row["compiled_plans"] <= 5  # binary shapes of depth <= 3


def test_smoke_continuous_serving_canary():
    """Continuous-batching serving in miniature: one seeded open-loop
    stream served wave-synchronized then continuously at equal
    concurrency.  Asserts the structural claims (identical per-request
    logits, no wave-tail starvation, latency percentiles populated,
    fusion observed) in about a second."""
    bank = smoke_bank()
    stream = poisson_request_stream(16, 3000.0, len(bank.train), seed=5)
    results = {}
    for admission in ("wave", "continuous"):
        model = SMOKE_FACTORIES["TreeRNN"]()
        config = runner_config()
        results[admission] = serve_stream(
            model, bank.train, stream=stream, max_in_flight=4,
            admission=admission, batching=True,
            num_workers=config.num_workers, engine=config.engine, seed=5)
    wave, continuous = results["wave"], results["continuous"]
    assert wave.instances == continuous.instances == 16
    for rid in wave.request_logits:
        assert np.array_equal(wave.request_logits[rid],
                              continuous.request_logits[rid]), rid
    if runner_config().engine == "event":
        # deterministic virtual time: the admission claim gates hard;
        # wall-clock backends assert only the structural claims above
        assert continuous.throughput >= wave.throughput, \
            (f"continuous {continuous.throughput:.1f} < wave "
             f"{wave.throughput:.1f} inst/s")
    for result in results.values():
        latency = result.latency_summary()
        assert latency["requests"] == 16
        assert 0.0 < latency["total"]["p50"] <= latency["total"]["p99"]
        assert result.stats.batches > 0


def test_smoke_memory_canary():
    """Memory-aware execution canary: a miniature large-vocab TreeLSTM
    training step with sparse GatherGrad must hold peak live scratch
    well under the dense run's, with bit-identical gradients; the
    recorded ``memory`` section of ``BENCH_overhead.json`` (written by
    ``make bench-memory``) must still satisfy its gates and every row
    must carry a populated ``peak_rss_mb`` stamp."""
    from repro.graph.sparse import set_sparse_gather_grads
    from repro.nn import Adagrad, Trainer

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_overhead.json")
    if os.path.exists(path):
        with open(path) as fh:
            memory = json.load(fh).get("memory")
        if memory is not None:
            assert memory["peak_scratch_reduction"] >= 5.0
            assert memory["gradients_bit_identical"]
            for row in ("dense", "sparse", "budgeted"):
                assert memory[row]["peak_rss_mb"] > 0, row

    bank = smoke_bank()
    batch = batch_trees(bank.train[:6])
    config = runner_config()
    results = {}
    for sparse in (False, True):
        previous = set_sparse_gather_grads(sparse)
        try:
            runtime = Runtime()
            model = TreeLSTMSentiment(
                tree_lstm_config(hidden=12, embed_dim=16, vocab_size=2000),
                runtime)
            built = model.build_recursive(6)
            trainer = Trainer(built.graph, built.loss, Adagrad(0.05),
                              runtime,
                              session_kwargs=dict(
                                  num_workers=config.num_workers,
                                  engine=config.engine,
                                  track_live_bytes=True))
            loss = trainer.step(built.feed_dict(batch))
            results[sparse] = (loss, trainer.gradient_snapshot(),
                               trainer.last_step_stats.peak_live_bytes)
        finally:
            set_sparse_gather_grads(previous)
    dense_loss, dense_grads, dense_peak = results[False]
    sparse_loss, sparse_grads, sparse_peak = results[True]
    assert dense_loss == sparse_loss
    for name in dense_grads:
        assert np.array_equal(dense_grads[name], sparse_grads[name]), name
    assert sparse_peak > 0
    # generous 2x floor (the full bench gates 5x on the bigger workload):
    # at vocab 2000 the dense table scratch dominates by far more, so a
    # miss here means sparse emission silently stopped engaging
    assert 2 * sparse_peak <= dense_peak, (
        f"sparse peak {sparse_peak} not well under dense {dense_peak}")


def test_smoke_spawn_overhead_canary():
    """Regression canary for the frame-plan scheduler: per-frame spawn
    overhead (wall-clock, miniature invoke-chain) must stay within 2x of
    the ``BENCH_overhead.json`` recorded baseline, rescaled by a host
    speed probe so a slower machine fails only on a *real* regression
    (an accidental return of per-spawn graph walking is ~3-5x).  The
    miniature 8x120 shape has per-frame cost close to the recorded
    16x250 workload; the 2x margin absorbs the shape difference."""
    from benchmarks.bench_overhead import build_spawn_chain, \
        measure_python_probe

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = os.path.join(root, "BENCH_overhead.json")
    if not os.path.exists(path):
        pytest.skip("no BENCH_overhead.json baseline recorded yet")
    with open(path) as fh:
        recorded = json.load(fh)
    baseline = recorded["after"]["spawn_us_per_frame"]
    probe = recorded.get("host_probe_us")
    if probe:
        # slower host -> proportionally wider gate; never tighter than
        # the margin calibrated on the recording host
        baseline *= max(1.0, measure_python_probe() / probe)

    graph, total = build_spawn_chain(8, 120)
    sess = repro.Session(graph, Runtime(), num_workers=36)
    sess.run(total)  # warm the plan caches
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        sess.run(total)
        best = min(best, time.perf_counter() - t0)
    us_per_frame = 1e6 * best / sess.last_stats.frames_created
    assert us_per_frame <= 2.0 * baseline, (
        f"frame spawn overhead {us_per_frame:.1f} us/frame regressed "
        f">2x over the host-scaled {baseline:.1f} us/frame baseline")
