"""Table 1: TreeRNN recursive throughput vs tree balancedness.

Paper result (instances/s):

    batch   balanced  moderate  linear
    1       46.7      27.3      7.6
    10      125.2     78.2      22.7
    25      129.7     83.1      45.4

Shape claims:
  * at batch 1, balanced > moderate > linear (available parallelism of a
    tree is bounded by its balancedness — a full binary tree exposes
    (N+1)/2 concurrent leaves, a chain exposes ~1);
  * the linear dataset scales best from batch 1 to 25 (it has the most
    unexploited parallelism headroom), the balanced dataset the least.
"""

from __future__ import annotations

from benchmarks.common import (BATCH_SIZES, STEPS, fresh_model,
                               runner_config, treebank)
from repro.harness import (format_table, make_runner, measure_throughput,
                           save_results)

SHAPES = ("balanced", "moderate", "linear")


def collect():
    bank = treebank()
    table = {}
    for shape in SHAPES:
        shaped = bank.with_shape(shape)
        for batch_size in BATCH_SIZES:
            runner = make_runner("Recursive", fresh_model("TreeRNN"),
                                 batch_size, runner_config())
            result = measure_throughput(runner, shaped.train, batch_size,
                                        "train", steps=STEPS, warmup=0,
                                        seed=3)
            table[(shape, batch_size)] = result.throughput
    return table


def test_table1_balancedness(benchmark):
    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[b] + [table[(s, b)] for s in SHAPES] for b in BATCH_SIZES]
    print()
    print(format_table(
        "Table 1 — TreeRNN recursive training throughput by balancedness",
        ["batch", "balanced", "moderate", "linear"], rows))
    save_results("table1_balancedness",
                 {f"{s}/b{b}": v for (s, b), v in table.items()})

    # batch 1: parallelism bounded by balancedness
    assert table[("balanced", 1)] > table[("moderate", 1)] > \
        table[("linear", 1)]
    # linear dataset scales best with batch size, balanced the least
    def scaling(shape):
        return table[(shape, 25)] / table[(shape, 1)]
    assert scaling("linear") > scaling("moderate")
    assert scaling("linear") > 1.5
    assert scaling("linear") > scaling("balanced")
