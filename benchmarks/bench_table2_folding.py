"""Table 2: TreeLSTM — recursive vs iterative vs folding (dynamic batching).

Paper result (instances/s):

    batch   Inference: Iter/Recur/Fold    Training: Iter/Recur/Fold
    1       19.2 / 81.4 / 16.5            2.5 / 4.8 / 9.0
    10      49.3 / 217.9 / 52.2           4.0 / 4.2 / 37.5
    25      72.1 / 269.9 / 61.6           5.5 / 3.6 / 54.7

Shape claims:
  * **inference**: the recursive implementation beats folding at every
    batch size (up to 4.93x in the paper) — direct caller/callee value
    passing vs per-level ungroup/regroup memory traffic;
  * **training**: folding beats both CPU implementations at every batch
    size (GPU batching amortizes the backward cost the recursive
    implementation pays per frame).

Beyond the paper: the ``BatchedRecursive`` column measures the recursion-
vs-folding comparison with Fold's own throughput lever (dynamic batching)
applied *inside* the recursive engines.  Since the training path batches
too (fused backward frame spawns, bulk value-cache traffic, adaptive
flush policy), batched recursive **training** overtakes folding at
batch >= 10 — measured here on TreeLSTM and RNTN and recorded as the
perf baseline in ``BENCH_table2.json``.
"""

from __future__ import annotations

from benchmarks.common import (BATCH_SIZES, STEPS, fresh_model,
                               runner_config, save_bench_json, treebank)
from repro.harness import (format_table, make_runner, measure_throughput,
                           save_results)

KINDS = ("Iterative", "Recursive", "BatchedRecursive", "Folding")
#: second training model: the batched-training-vs-folding claim is
#: asserted on TreeLSTM *and* RNTN (acceptance criterion)
TRAIN_KINDS = ("Recursive", "BatchedRecursive", "Folding")


def collect():
    bank = treebank()
    table = {}
    for kind in KINDS:
        for mode in ("infer", "train"):
            for batch_size in BATCH_SIZES:
                runner = make_runner(kind, fresh_model("TreeLSTM"),
                                     batch_size, runner_config())
                result = measure_throughput(runner, bank.train, batch_size,
                                            mode, steps=STEPS, warmup=0,
                                            seed=3)
                table[(kind, mode, batch_size)] = result.throughput
    return table


def collect_rntn_train():
    bank = treebank()
    table = {}
    for kind in TRAIN_KINDS:
        for batch_size in BATCH_SIZES:
            runner = make_runner(kind, fresh_model("RNTN"), batch_size,
                                 runner_config())
            result = measure_throughput(runner, bank.train, batch_size,
                                        "train", steps=STEPS, warmup=0,
                                        seed=3)
            table[(kind, batch_size)] = result.throughput
    return table


def test_table2_folding(benchmark):
    def run_all():
        return collect(), collect_rntn_train()

    table, rntn = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for batch_size in BATCH_SIZES:
        rows.append([batch_size]
                    + [table[(k, "infer", batch_size)] for k in KINDS]
                    + [table[(k, "train", batch_size)] for k in KINDS])
    print()
    print(format_table(
        "Table 2 — TreeLSTM throughput: iterative / recursive / folding",
        ["batch", "inf:Iter", "inf:Recur", "inf:RecMB", "inf:Fold",
         "trn:Iter", "trn:Recur", "trn:RecMB", "trn:Fold"], rows))
    rntn_rows = [[b] + [rntn[(k, b)] for k in TRAIN_KINDS]
                 for b in BATCH_SIZES]
    print()
    print(format_table(
        "Table 2b — RNTN training throughput (batched backward pass)",
        ["batch", "trn:Recur", "trn:RecMB", "trn:Fold"], rntn_rows))
    payload = {f"TreeLSTM/{k}/{m}/b{b}": v
               for (k, m, b), v in table.items()}
    payload.update({f"RNTN/{k}/train/b{b}": v for (k, b), v in rntn.items()})
    save_results("table2_folding", payload)
    save_bench_json("table2", payload)

    for batch_size in BATCH_SIZES:
        # inference: recursive beats folding and iterative
        rec_inf = table[("Recursive", "infer", batch_size)]
        assert rec_inf > table[("Folding", "infer", batch_size)]
        assert rec_inf > table[("Iterative", "infer", batch_size)]
        # training: folding beats both *unbatched* CPU implementations
        fold_trn = table[("Folding", "train", batch_size)]
        assert fold_trn > table[("Recursive", "train", batch_size)]
        assert fold_trn > table[("Iterative", "train", batch_size)]
        # beyond the paper: micro-batching narrows the folding gap without
        # ever hurting the recursive implementation
        assert (table[("BatchedRecursive", "infer", batch_size)]
                >= table[("Recursive", "infer", batch_size)] * 0.95)

    # the tentpole claim: with the backward pass batched (bulk value-cache
    # traffic, fused gradient frames, adaptive flush policy), recursive
    # *training* overtakes folding at batch >= 10 — on both models
    for batch_size in (10, 25):
        assert (table[("BatchedRecursive", "train", batch_size)]
                > table[("Folding", "train", batch_size)]), \
            f"TreeLSTM train b={batch_size}: batched recursive must win"
        assert (rntn[("BatchedRecursive", batch_size)]
                > rntn[("Folding", batch_size)]), \
            f"RNTN train b={batch_size}: batched recursive must win"
