"""Table 2: TreeLSTM — recursive vs iterative vs folding (dynamic batching).

Paper result (instances/s):

    batch   Inference: Iter/Recur/Fold    Training: Iter/Recur/Fold
    1       19.2 / 81.4 / 16.5            2.5 / 4.8 / 9.0
    10      49.3 / 217.9 / 52.2           4.0 / 4.2 / 37.5
    25      72.1 / 269.9 / 61.6           5.5 / 3.6 / 54.7

Shape claims:
  * **inference**: the recursive implementation beats folding at every
    batch size (up to 4.93x in the paper) — direct caller/callee value
    passing vs per-level ungroup/regroup memory traffic;
  * **training**: folding beats both CPU implementations at every batch
    size (GPU batching amortizes the backward cost the recursive
    implementation pays per frame).

Beyond the paper: the ``BatchedRecursive`` column measures the recursion-
vs-folding comparison with Fold's own throughput lever (dynamic batching)
applied *inside* the recursive engines, so the trade-off is measured
rather than asserted.
"""

from __future__ import annotations

from benchmarks.common import (BATCH_SIZES, STEPS, fresh_model,
                               runner_config, treebank)
from repro.harness import (format_table, make_runner, measure_throughput,
                           save_results)

KINDS = ("Iterative", "Recursive", "BatchedRecursive", "Folding")


def collect():
    bank = treebank()
    table = {}
    for kind in KINDS:
        for mode in ("infer", "train"):
            for batch_size in BATCH_SIZES:
                runner = make_runner(kind, fresh_model("TreeLSTM"),
                                     batch_size, runner_config())
                result = measure_throughput(runner, bank.train, batch_size,
                                            mode, steps=STEPS, warmup=0,
                                            seed=3)
                table[(kind, mode, batch_size)] = result.throughput
    return table


def test_table2_folding(benchmark):
    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for batch_size in BATCH_SIZES:
        rows.append([batch_size]
                    + [table[(k, "infer", batch_size)] for k in KINDS]
                    + [table[(k, "train", batch_size)] for k in KINDS])
    print()
    print(format_table(
        "Table 2 — TreeLSTM throughput: iterative / recursive / folding",
        ["batch", "inf:Iter", "inf:Recur", "inf:RecMB", "inf:Fold",
         "trn:Iter", "trn:Recur", "trn:RecMB", "trn:Fold"], rows))
    save_results("table2_folding",
                 {f"{k}/{m}/b{b}": v for (k, m, b), v in table.items()})

    for batch_size in BATCH_SIZES:
        # inference: recursive beats folding and iterative
        rec_inf = table[("Recursive", "infer", batch_size)]
        assert rec_inf > table[("Folding", "infer", batch_size)]
        assert rec_inf > table[("Iterative", "infer", batch_size)]
        # training: folding beats both
        fold_trn = table[("Folding", "train", batch_size)]
        assert fold_trn > table[("Recursive", "train", batch_size)]
        assert fold_trn > table[("Iterative", "train", batch_size)]
        # beyond the paper: micro-batching narrows the folding gap without
        # ever hurting the recursive implementation
        assert (table[("BatchedRecursive", "infer", batch_size)]
                >= table[("Recursive", "infer", batch_size)] * 0.95)
