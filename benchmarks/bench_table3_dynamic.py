"""Table 3: TD-TreeLSTM (dynamically structured model) throughput.

Paper result (instances/s):

    batch   Iterative  Recursive  Folding
    1       0.30       5.59       not supported
    64      0.34       9.30       not supported

Shape claims:
  * the recursive implementation beats the iterative frontier-queue
    baseline by a large factor (paper: up to 18.6x) — tree nodes whose
    structure is *discovered at run time* still execute in parallel;
  * the iterative implementation barely scales with batch size (a single
    sequential frontier loop);
  * folding is **inapplicable**: the tree structure is unknown before
    execution, so there is nothing to pre-batch (we assert the structure
    really is value-dependent).
"""

from __future__ import annotations

import numpy as np

import repro
from benchmarks.common import WORKERS
from repro.harness import format_table, save_results
from repro.models import ModelConfig, TDTreeLSTM

BATCHES = (1, 64)
STEPS = 2


def _throughput(built, runtime, batch_size, rng):
    session = repro.Session(built.graph, runtime, num_workers=WORKERS,
                            record=False)
    # warmup
    seeds = rng.integers(0, 200, size=batch_size).astype(np.int32)
    session.run(built.node_counts, built.feed_dict(seeds))
    total = 0.0
    for _ in range(STEPS):
        seeds = rng.integers(0, 200, size=batch_size).astype(np.int32)
        session.run(built.node_counts, built.feed_dict(seeds))
        total += session.last_stats.virtual_time
    return STEPS * batch_size / total


def collect():
    table = {}
    rng = np.random.default_rng(17)
    for kind in ("Recursive", "Iterative"):
        for batch_size in BATCHES:
            runtime = repro.Runtime()
            model = TDTreeLSTM(ModelConfig(vocab_size=200, hidden=32),
                               runtime, max_depth=6)
            built = (model.build_recursive(batch_size)
                     if kind == "Recursive"
                     else model.build_iterative(batch_size))
            table[(kind, batch_size)] = _throughput(built, runtime,
                                                    batch_size, rng)
    # dynamic-structure evidence (why folding cannot apply)
    runtime = repro.Runtime()
    model = TDTreeLSTM(ModelConfig(vocab_size=200, hidden=32), runtime,
                       max_depth=6)
    built = model.build_recursive(16)
    session = repro.Session(built.graph, runtime, num_workers=WORKERS)
    counts = session.run(built.node_counts,
                         built.feed_dict(np.arange(16, dtype=np.int32)))
    table["distinct_structures"] = len(set(int(c) for c in counts))
    return table


def test_table3_dynamic(benchmark):
    table = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[b, table[("Iterative", b)], table[("Recursive", b)],
             "not supported"] for b in BATCHES]
    print()
    print(format_table(
        "Table 3 — TD-TreeLSTM inference throughput (instances/s)",
        ["batch", "Iterative", "Recursive", "Folding"], rows))
    save_results("table3_dynamic",
                 {f"{kind}/b{b}": table[(kind, b)]
                  for kind in ("Recursive", "Iterative")
                  for b in BATCHES})

    # recursive >> iterative at both batch sizes (paper: 18.6x)
    for batch_size in BATCHES:
        ratio = (table[("Recursive", batch_size)]
                 / table[("Iterative", batch_size)])
        assert ratio > 3.0, f"b={batch_size}: expected large gap, {ratio=}"
    # iterative barely scales with batch (single sequential frontier)
    iter_scale = table[("Iterative", 64)] / table[("Iterative", 1)]
    rec_scale = table[("Recursive", 64)] / table[("Recursive", 1)]
    assert rec_scale > iter_scale
    # structures are value-dependent (folding cannot pre-batch)
    assert table["distinct_structures"] > 1
