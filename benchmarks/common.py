"""Shared configuration for the reproduction benchmarks.

Every benchmark measures **virtual testbed time** (the deterministic
discrete-event simulation of the paper's 36-core machine / Titan X GPU),
so reported instances/second are stable across host machines; wall-clock
time of the bench process itself is what pytest-benchmark records.

The dataset is a seeded synthetic treebank standing in for the Large Movie
Review sentences (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

import json
import os
from functools import lru_cache

import numpy as np

import repro
from repro.data import make_treebank
from repro.harness import RunnerConfig
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)

#: the paper's testbed: 2 x 18-core Xeon
WORKERS = 36
BATCH_SIZES = (1, 10, 25)
STEPS = 2


@lru_cache(maxsize=None)
def treebank():
    """The benchmark treebank (seeded; ~34 words/sentence, up to 250)."""
    return make_treebank(num_train=60, num_val=20, vocab_size=200, seed=7)


MODEL_FACTORIES = {
    "TreeRNN": lambda runtime: TreeRNNSentiment(ModelConfig(), runtime),
    "RNTN": lambda runtime: RNTNSentiment(ModelConfig(), runtime),
    "TreeLSTM": lambda runtime: TreeLSTMSentiment(tree_lstm_config(),
                                                  runtime),
}


def fresh_model(name: str):
    """A freshly-initialized model on its own runtime."""
    return MODEL_FACTORIES[name](repro.Runtime())


def runner_config(**overrides) -> RunnerConfig:
    defaults = dict(num_workers=WORKERS)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def save_bench_json(name: str, payload: dict) -> str:
    """Persist a machine-readable trajectory file at the repository root.

    ``BENCH_<name>.json`` is the perf baseline future PRs diff against
    (e.g. ``BENCH_fig8.json`` records unbatched vs batched inference
    throughput).
    """
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    path = os.path.join(root, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=float)
        fh.write("\n")
    return path
