"""Shared configuration for the reproduction benchmarks.

Under the default ``event`` backend every benchmark measures **virtual
testbed time** (the deterministic discrete-event simulation of the
paper's 36-core machine / Titan X GPU), so reported instances/second are
stable across host machines; wall-clock time of the bench process itself
is what pytest-benchmark records.  Routing the suite through a
wall-clock backend (``--engine threaded`` / ``workerpool``, or
REPRO_BENCH_ENGINE) makes the reported times **host wall-clock** —
useful for comparing backends on one machine, not portable baselines;
the recorded BENCH_*.json files carry an ``engine_provenance`` stamp so
rows stay attributable.

The dataset is a seeded synthetic treebank standing in for the Large Movie
Review sentences (see DESIGN.md for the substitution rationale).
"""

from __future__ import annotations

import json
import os
from functools import lru_cache

import numpy as np

import repro
from repro.data import make_treebank
from repro.harness import RunnerConfig
from repro.harness.reporting import (engine_provenance, host_provenance,
                                     peak_rss_mb)
from repro.models import (ModelConfig, RNTNSentiment, TreeLSTMSentiment,
                          TreeRNNSentiment, tree_lstm_config)
from repro.runtime.scheduler import resolve_executor

#: the paper's testbed: 2 x 18-core Xeon
WORKERS = 36
BATCH_SIZES = (1, 10, 25)
STEPS = 2

#: Executor backend every bench resolves its sessions/runners through.
#: One knob for the whole suite: ``pytest benchmarks --engine threaded``
#: (see benchmarks/conftest.py) or the REPRO_BENCH_ENGINE environment
#: variable; defaults to the deterministic virtual-time backend the
#: recorded baselines were measured on.
_BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "event")


def set_bench_engine(name: str) -> None:
    """Select the executor backend for this bench process (validated
    against the runtime executor registry)."""
    global _BENCH_ENGINE
    resolve_executor(name)  # fail loudly on unknown backends
    _BENCH_ENGINE = name


def bench_engine() -> str:
    """The executor backend name benches pass as ``engine=``."""
    resolve_executor(_BENCH_ENGINE)
    return _BENCH_ENGINE


@lru_cache(maxsize=None)
def treebank():
    """The benchmark treebank (seeded; ~34 words/sentence, up to 250)."""
    return make_treebank(num_train=60, num_val=20, vocab_size=200, seed=7)


MODEL_FACTORIES = {
    "TreeRNN": lambda runtime: TreeRNNSentiment(ModelConfig(), runtime),
    "RNTN": lambda runtime: RNTNSentiment(ModelConfig(), runtime),
    "TreeLSTM": lambda runtime: TreeLSTMSentiment(tree_lstm_config(),
                                                  runtime),
}


def fresh_model(name: str):
    """A freshly-initialized model on its own runtime."""
    return MODEL_FACTORIES[name](repro.Runtime())


def runner_config(**overrides) -> RunnerConfig:
    defaults = dict(num_workers=WORKERS, engine=bench_engine())
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def save_bench_json(name: str, payload: dict) -> str:
    """Persist a machine-readable trajectory file at the repository root.

    ``BENCH_<name>.json`` is the perf baseline future PRs diff against
    (e.g. ``BENCH_fig8.json`` records unbatched vs batched inference
    throughput).  Every payload is stamped with executor provenance
    (which backend produced the rows, and the registry listing at the
    time) and host provenance (cpu_count/platform — pool-scaling rows
    are uninterpretable without it) unless the bench recorded its own.
    """
    payload.setdefault("engine_provenance", engine_provenance(bench_engine()))
    payload.setdefault("host_provenance", host_provenance())
    #: process peak RSS at save time — the memory footprint stamp every
    #: recorded row set carries (MiB; sticky high-water mark)
    payload.setdefault("peak_rss_mb", peak_rss_mb())
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    path = os.path.join(root, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=float)
        fh.write("\n")
    return path


def merge_bench_json(name: str, updates: dict) -> str:
    """Merge top-level sections into ``BENCH_<name>.json`` in place.

    Lets independent benches share one trajectory file — e.g. the SLO
    overload bench and the soak harness each own a section of
    ``BENCH_serving.json`` without clobbering the admission baseline
    recorded by ``bench_serving.py``.  Missing or unreadable files start
    from an empty payload.
    """
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
    path = os.path.join(root, f"BENCH_{name}.json")
    payload = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    return save_bench_json(name, payload)
