"""Bench-suite options: one ``--engine`` flag for every bench script.

``pytest benchmarks --engine threaded`` routes every bench session /
runner / serving driver through the named executor backend, resolved via
the runtime executor registry (:mod:`repro.runtime.scheduler`) instead
of each script hard-coding engine construction.  The default ("event",
also settable via REPRO_BENCH_ENGINE) is the deterministic virtual-time
backend the recorded BENCH_*.json baselines were measured on.
"""

from __future__ import annotations


def pytest_addoption(parser):
    parser.addoption(
        "--engine", default=None,
        help="executor backend for the benches (a name registered in the "
             "runtime executor registry, e.g. event | threaded | workerpool)")


def pytest_configure(config):
    engine = config.getoption("--engine", default=None)
    if engine:
        from benchmarks import common
        common.set_bench_engine(engine)
