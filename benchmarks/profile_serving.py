"""``make profile``: the TreeLSTM serving canary under cProfile.

Runs one seeded continuous-batching serving session (the same workload
shape as ``bench_smoke``'s serving canary, TreeLSTM instead of TreeRNN)
with the profiler enabled and prints the top-20 cumulative hot spots —
the quickest way to see where master-side scheduling time goes after a
change to the engines, the coalescer or the frame-plan compiler.
"""

from __future__ import annotations

import cProfile
import pstats

from benchmarks.common import bench_engine
from repro import Runtime
from repro.data import make_treebank
from repro.harness import poisson_request_stream, serve_stream
from repro.models import TreeLSTMSentiment, tree_lstm_config

REQUESTS = 32
RATE = 3000.0
MAX_IN_FLIGHT = 8
TOP = 20


def main() -> None:
    bank = make_treebank(num_train=16, num_val=4, vocab_size=60, seed=11)
    model = TreeLSTMSentiment(
        tree_lstm_config(hidden=16, embed_dim=8, vocab_size=60), Runtime())
    stream = poisson_request_stream(REQUESTS, RATE, len(bank.train), seed=5)

    profiler = cProfile.Profile()
    profiler.enable()
    result = serve_stream(model, bank.train, stream=stream,
                          max_in_flight=MAX_IN_FLIGHT,
                          admission="continuous", batching=True,
                          num_workers=36, engine=bench_engine(), seed=5)
    profiler.disable()

    print(f"served {result.stats.requests} requests, "
          f"{result.throughput:.1f} inst/s (virtual), "
          f"{result.stats.frames_created} frames, "
          f"{result.stats.ops_executed} instances\n")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    stats.print_stats(TOP)


if __name__ == "__main__":
    main()
