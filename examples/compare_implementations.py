"""Compare the four execution strategies on the same TreeRNN model.

Reproduces the paper's central comparison in miniature: the *same*
parameters and the *same* batches run through

  * Recursive  — the paper's SubGraph/InvokeOp implementation,
  * Iterative  — batched topological while_loop (Figure 1),
  * Unrolling  — a fresh static graph per batch (PyTorch-style),
  * Folding    — depth-wise dynamic batching on a GPU profile (TF Fold),

asserting they compute identical losses, then printing throughput in
simulated-testbed time.

Run:  python examples/compare_implementations.py
"""

import numpy as np

import repro
from repro.data import batch_trees, make_treebank
from repro.harness import RunnerConfig, make_runner, measure_throughput
from repro.models import ModelConfig, TreeRNNSentiment

BATCH = 10
KINDS = ("Recursive", "Iterative", "Unrolling", "Folding")


def main():
    bank = make_treebank(num_train=40, num_val=8, vocab_size=150, seed=2)
    batch = batch_trees(bank.train[:BATCH])

    print("== numerical equivalence (same initial parameters) ==")
    losses = {}
    for kind in KINDS:
        model = TreeRNNSentiment(ModelConfig(), repro.Runtime())
        runner = make_runner(kind, model, BATCH,
                             RunnerConfig(num_workers=36))
        loss, _ = runner.train_step(batch)
        losses[kind] = loss
        print(f"  {kind:10s} first-step loss = {loss:.6f}")
    spread = max(losses.values()) - min(losses.values())
    assert spread < 1e-4, "implementations must agree numerically"
    print(f"  max spread: {spread:.2e}  -> identical computations\n")

    print("== throughput (instances/s, simulated 36-core testbed + GPU) ==")
    header = f"  {'impl':10s} {'train':>10s} {'inference':>10s}"
    print(header)
    for kind in KINDS:
        model = TreeRNNSentiment(ModelConfig(), repro.Runtime())
        runner = make_runner(kind, model, BATCH,
                             RunnerConfig(num_workers=36))
        train = measure_throughput(runner, bank.train, BATCH, "train",
                                   steps=2, warmup=0)
        infer = measure_throughput(runner, bank.train, BATCH, "infer",
                                   steps=2, warmup=0)
        print(f"  {kind:10s} {train.throughput:10.1f} "
              f"{infer.throughput:10.1f}")
    print("\nthe recursive implementation exploits intra-tree parallelism "
          "the iterative one cannot,\nand avoids the per-step graph "
          "construction the unrolling approach pays.")


if __name__ == "__main__":
    main()
