"""Dynamically structured models: top-down tree generation (TD-TreeLSTM).

The model *generates* a tree at run time: growth gates computed from each
node's state decide whether children exist, so the structure is unknown
before execution.  Folding-style pre-batching is impossible here (paper
Table 3) — but graph-native recursion handles it directly, and sibling
subtrees still run in parallel.

Run:  python examples/dynamic_generation.py
"""

import numpy as np

import repro
from repro.models import ModelConfig, TDTreeLSTM

BATCH = 8


def main():
    runtime = repro.Runtime()
    model = TDTreeLSTM(ModelConfig(vocab_size=120, hidden=24, seed=9),
                       runtime, max_depth=6)

    rec = model.build_recursive(BATCH)
    it = model.build_iterative(BATCH)
    seeds = np.arange(10, 10 + BATCH, dtype=np.int32)

    rec_session = repro.Session(rec.graph, runtime, num_workers=36,
                                record=False)
    counts = rec_session.run(rec.node_counts, rec.feed_dict(seeds))
    rec_time = rec_session.last_stats.virtual_time

    print("== generated tree sizes (structure decided by computed gates) ==")
    for seed, count in zip(seeds, counts):
        bar = "#" * max(1, int(count) // 4)
        print(f"  seed {seed:3d} -> {int(count):3d} nodes  {bar}")
    print(f"\ndistinct structures: "
          f"{len(set(int(c) for c in counts))} of {BATCH} "
          "(folding cannot pre-batch this)\n")

    it_session = repro.Session(it.graph, runtime, num_workers=36,
                               record=False)
    counts_iter = it_session.run(it.node_counts, it.feed_dict(seeds))
    iter_time = it_session.last_stats.virtual_time
    assert np.array_equal(counts, counts_iter), "implementations agree"

    print("== recursive vs iterative frontier queue (virtual time) ==")
    print(f"  recursive: {rec_time * 1e3:8.2f} ms  "
          f"({BATCH / rec_time:7.1f} inst/s)")
    print(f"  iterative: {iter_time * 1e3:8.2f} ms  "
          f"({BATCH / iter_time:7.1f} inst/s)")
    print(f"  speedup: {iter_time / rec_time:.1f}x — nodes discovered at "
          "run time still execute in parallel")


if __name__ == "__main__":
    main()
