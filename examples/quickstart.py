"""Quickstart: recursive dataflow graphs in five minutes.

Demonstrates the paper's core API surface:
  1. plain dataflow graphs and sessions;
  2. a recursive SubGraph (factorial) — graph-native recursion;
  3. parallel recursion (fibonacci) with virtual-time speedup;
  4. gradients through recursion via the backprop value cache.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro import ops


def plain_graphs():
    print("== 1. plain dataflow graph ==")
    graph = repro.Graph("intro")
    with graph.as_default():
        x = ops.placeholder(repro.float32, (2, 2), name="x")
        y = ops.reduce_sum(ops.tanh(ops.matmul(x, x)))
    session = repro.Session(graph)
    value = session.run(y, {x: np.array([[1.0, 0.5], [0.25, 1.0]],
                                        dtype=np.float32)})
    print(f"sum(tanh(x @ x)) = {value:.4f}\n")


def recursive_factorial():
    print("== 2. recursion as a graph: factorial ==")
    graph = repro.Graph("factorial")
    with graph.as_default():
        with repro.SubGraph("fact") as fact:
            n = fact.input(repro.int32, ())
            fact.declare_outputs([(repro.int32, ())])  # forward declaration
            fact.output(repro.cond(ops.less_equal(n, 1),
                                   lambda: ops.constant(1),
                                   lambda: ops.multiply(n, fact(n - 1))))
        out = fact(ops.constant(10))
    session = repro.Session(graph)
    print(f"10! = {session.run(out)}")
    stats = session.last_stats
    print(f"frames executed: {stats.frames_created}, "
          f"max recursion depth: {stats.max_frame_depth}\n")


def parallel_fibonacci():
    print("== 3. parallel recursion: fibonacci ==")
    graph = repro.Graph("fibonacci")
    with graph.as_default():
        with repro.SubGraph("fib") as fib:
            n = fib.input(repro.int32, ())
            fib.declare_outputs([(repro.int32, ())])
            fib.output(repro.cond(
                ops.less_equal(n, 1),
                lambda: ops.identity(n),
                lambda: ops.add(fib(n - 1), fib(n - 2))))
        out = fib(ops.constant(15))
    for workers in (1, 8):
        session = repro.Session(graph, num_workers=workers)
        value = session.run(out)
        print(f"fib(15) = {value} on {workers} worker(s): "
              f"{session.last_stats.virtual_time * 1e3:.2f} ms virtual")
    print("(independent recursive calls run concurrently — the paper's "
          "key win)\n")


def gradients_through_recursion():
    print("== 4. gradients through recursion ==")
    graph = repro.Graph("gradients")
    with graph.as_default():
        with repro.SubGraph("power") as power:
            x = power.input(repro.float32, ())
            n = power.input(repro.int32, ())
            power.declare_outputs([(repro.float32, ())])
            power.output(repro.cond(
                ops.less_equal(n, 0),
                lambda: ops.constant(1.0),
                lambda: ops.multiply(x, power(x, n - 1))))
        xin = ops.placeholder(repro.float32, ())
        y = power(xin, ops.constant(5))
        grads, _ = repro.gradients(y, [xin])
    session = repro.Session(graph, record=True)  # record=True: training mode
    value, grad = session.run([y, grads[0]], {xin: 1.2})
    print(f"x^5 at x=1.2: {value:.5f} (exact {1.2 ** 5:.5f})")
    print(f"d/dx = {grad:.5f} (exact 5 x^4 = {5 * 1.2 ** 4:.5f})")
    print("forward activations were cached per recursive frame and looked "
          "up\nby the backward frames (the paper's concurrent hash table).")


if __name__ == "__main__":
    plain_graphs()
    recursive_factorial()
    parallel_fibonacci()
    gradients_through_recursion()
