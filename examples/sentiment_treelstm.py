"""Train a recursive TreeLSTM for sentiment analysis (the paper's headline
application).

Builds the Figure-2 recursive program over a binary TreeLSTM cell, trains
it with Adagrad on the synthetic sentiment treebank, and reports
validation accuracy plus simulated-testbed throughput.

Run:  python examples/sentiment_treelstm.py
"""

import numpy as np

import repro
from repro.data import batch_trees, iterate_batches, make_treebank
from repro.harness import evaluate_accuracy, make_runner, RunnerConfig
from repro.models import TreeLSTMSentiment, accuracy_from_logits, \
    tree_lstm_config

BATCH = 8
EPOCHS = 3


def main():
    print("generating synthetic sentiment treebank "
          "(stands in for movie-review parse trees)...")
    bank = make_treebank(num_train=96, num_val=32, vocab_size=200,
                         mean_log_words=2.7, seed=33)
    lengths = [t.num_words for t in bank.train]
    print(f"  train={len(bank.train)} val={len(bank.val)} "
          f"words/sentence: mean={np.mean(lengths):.0f} "
          f"max={max(lengths)}")

    runtime = repro.Runtime()
    model = TreeLSTMSentiment(
        tree_lstm_config(hidden=32, embed_dim=24, learning_rate=0.1),
        runtime)
    runner = make_runner("Recursive", model, BATCH,
                         RunnerConfig(num_workers=36, learning_rate=0.1))
    print(f"built recursive graph: "
          f"{runner.built.graph.num_operations} ops, reused for every "
          f"batch and tree shape")

    for epoch in range(1, EPOCHS + 1):
        losses, vtime = [], 0.0
        for batch in iterate_batches(bank.train, BATCH, shuffle=True,
                                     rng=np.random.default_rng(epoch)):
            loss, t = runner.train_step(batch)
            losses.append(loss)
            vtime += t
        accuracy = evaluate_accuracy(runner, bank.val, BATCH)
        throughput = len(bank.train) // BATCH * BATCH / vtime
        print(f"epoch {epoch}: loss={np.mean(losses):.4f} "
              f"val_acc={accuracy:.3f} "
              f"throughput={throughput:.1f} inst/s (virtual testbed)")

    # peek at one prediction
    sample = batch_trees(bank.val[:BATCH])
    logits, _ = runner.infer_step(sample)
    predictions = np.argmax(logits, axis=-1)
    print("\nsample root predictions vs labels:")
    for tree, pred in list(zip(sample.trees, predictions))[:5]:
        sentiment = "positive" if pred == 1 else "negative"
        marker = "Y" if pred == tree.label else "N"
        print(f"  {tree.num_words:3d}-word sentence -> {sentiment:8s} "
              f"(label {'positive' if tree.label else 'negative'}) "
              f"[{marker}]")


if __name__ == "__main__":
    main()
