"""Legacy setup shim (the offline environment's setuptools predates PEP 660)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Recursive dataflow graphs for deep learning frameworks "
                 "(reproduction of Jeong et al., EuroSys 2018)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
