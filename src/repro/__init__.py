"""repro — Recursive dataflow graphs for deep learning frameworks.

A from-scratch Python reproduction of *"Improving the Expressiveness of
Deep Learning Frameworks with Recursion"* (Jeong et al., EuroSys 2018):
an embedded-control-flow dataflow framework (graphs, kernels, automatic
differentiation, a master/worker scheduler) extended with first-class
recursion via ``SubGraph`` definitions and ``InvokeOp`` execution, plus
the paper's complete evaluation stack (TreeRNN / RNTN / TreeLSTM /
TD-TreeLSTM models, iterative / unrolled / folding baselines, a synthetic
sentiment treebank, and a simulated multi-machine data-parallel trainer).

Quickstart::

    import repro
    from repro import ops

    with repro.SubGraph("fact") as fact:
        n = fact.input(repro.int32, ())
        fact.declare_outputs([(repro.int32, ())])
        fact.output(repro.cond(ops.less_equal(n, 1),
                               lambda: ops.constant(1),
                               lambda: ops.multiply(n, fact(n - 1))))

    out = fact(ops.constant(5))
    print(repro.Session().run(out))   # 120
"""

from repro.graph import (DType, Graph, Operation, Shape, Tensor, as_dtype,
                         bool_, float32, float64, get_default_graph, int32,
                         int64, reset_default_graph, variant)
from repro import ops
from repro.core import SubGraph, SubGraphError, invoke
from repro.core.autodiff import differentiate_subgraph, gradients
from repro.ops.control_flow import cond, while_loop
from repro.runtime import (AdaptiveBatchPolicy, BatchPolicy, CostModel,
                           EngineError, QueueAwareBatchPolicy,
                           RecursiveServer, RequestTicket, RunStats,
                           Runtime, ServerOverloaded, Session, Variable,
                           client_eager, default_runtime, gpu_profile,
                           reset_default_runtime, testbed_cpu, unit_cost)

__version__ = "1.0.0"

__all__ = [
    # graph substrate
    "DType", "Graph", "Operation", "Shape", "Tensor", "as_dtype",
    "bool_", "float32", "float64", "int32", "int64", "variant",
    "get_default_graph", "reset_default_graph",
    # functional ops
    "ops", "cond", "while_loop",
    # recursion (the paper's contribution)
    "SubGraph", "SubGraphError", "invoke", "gradients",
    "differentiate_subgraph",
    # runtime
    "AdaptiveBatchPolicy", "BatchPolicy", "CostModel", "EngineError",
    "QueueAwareBatchPolicy", "RecursiveServer", "RequestTicket", "RunStats",
    "Runtime", "ServerOverloaded",
    "Session", "Variable", "client_eager", "default_runtime", "gpu_profile",
    "reset_default_runtime", "testbed_cpu", "unit_cost",
]
