"""Baseline execution strategies the paper compares against.

The iterative (Figure 1) and static-unrolling builders live on the model
classes themselves (:meth:`~repro.models.base.SentimentModelBase.
build_iterative` / ``build_unrolled``); this package holds the folding
(TensorFlow Fold) dynamic-batching executor.
"""

from .folding import FoldingExecutor, FoldingSchedule, build_schedule

__all__ = ["FoldingExecutor", "FoldingSchedule", "build_schedule"]
