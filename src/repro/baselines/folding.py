"""Folding baseline: depth-wise dynamic batching (TensorFlow Fold [15]).

Fold preprocesses the batch's tree structures into *levels* — all nodes
whose children are already computed — and executes each level as one
batched GPU kernel, regrouping (gathering/scattering) child states between
levels.  This exploits GPU batching superbly for training, at the cost of

* per-level regrouping (memory reallocation and copies, as the paper
  discusses in Section 6.4), and
* requiring the *complete* tree structure before execution — which is why
  folding is inapplicable to dynamically-structured models such as
  TD-TreeLSTM (Table 3).

The executor runs on the model's numpy cell twins (values are exact and
test-verified against the graph implementations) while virtual time is
accounted with a GPU cost profile: high kernel-launch latency, very high
arithmetic throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.batching import TreeBatch
from repro.nn.losses import np_cross_entropy, np_cross_entropy_backward
from repro.runtime.cost_model import GpuCostParams, gpu_profile

__all__ = ["FoldingSchedule", "FoldingExecutor"]


@dataclass
class FoldingSchedule:
    """Level-grouped flat view of a batch of trees."""

    words: np.ndarray       # [total] int
    labels: np.ndarray      # [total] int
    left: np.ndarray        # [total] int (global slot, -1 for leaves)
    right: np.ndarray       # [total] int
    weight: np.ndarray      # [total] float: 1 / (B * n_nodes_of_instance)
    levels: list            # list of np.ndarray of global slots
    root_slots: np.ndarray  # [B] int
    total: int

    @property
    def depth(self) -> int:
        return len(self.levels)


def build_schedule(batch: TreeBatch) -> FoldingSchedule:
    """Assign every node a global slot and group slots by tree level."""
    words, labels, left, right, weight, level = [], [], [], [], [], []
    root_slots = []
    offset = 0
    for b, tree in enumerate(batch.trees):
        arrays = tree.to_arrays()
        n = arrays.num_nodes
        node_level = np.zeros(n, dtype=np.int64)
        for i in range(n):
            if not arrays.is_leaf[i]:
                l, r = arrays.children[i]
                node_level[i] = 1 + max(node_level[l], node_level[r])
        words.extend(int(w) for w in arrays.words)
        labels.extend(int(x) for x in arrays.labels)
        for i in range(n):
            if arrays.is_leaf[i]:
                left.append(-1)
                right.append(-1)
            else:
                left.append(offset + int(arrays.children[i, 0]))
                right.append(offset + int(arrays.children[i, 1]))
        weight.extend([1.0 / (batch.size * n)] * n)
        level.extend(int(x) for x in node_level)
        root_slots.append(offset + arrays.root)
        offset += n
    level = np.asarray(level)
    levels = [np.flatnonzero(level == d) for d in range(level.max() + 1)]
    return FoldingSchedule(
        words=np.asarray(words, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        weight=np.asarray(weight, dtype=np.float32),
        levels=levels, root_slots=np.asarray(root_slots, dtype=np.int64),
        total=offset)


class FoldingExecutor:
    """Runs a sentiment model with depth-wise dynamic batching."""

    def __init__(self, model, gpu: Optional[GpuCostParams] = None):
        self.model = model
        self.cell = model.cell
        self.gpu = gpu or gpu_profile()
        self.runtime = model.runtime

    def _params(self) -> dict[str, np.ndarray]:
        names = [v.name for v in self.model.variables]
        return {name: self.runtime.variables.read(name) for name in names}

    # -- forward -------------------------------------------------------------------

    def forward(self, batch: TreeBatch):
        """Level-batched forward pass.

        Returns ``(loss, root_logits, state, virtual_time)`` where ``state``
        carries everything backward() needs.
        """
        schedule = build_schedule(batch)
        params = self._params()
        cell = self.cell
        arity = cell.state_arity
        H = self.model.config.hidden
        states = [np.zeros((schedule.total, H), dtype=np.float32)
                  for _ in range(arity)]
        caches = []
        vtime = 0.0

        for depth, slots in enumerate(schedule.levels):
            n = len(slots)
            if depth == 0:
                x = self.model.embedding.np_lookup(params,
                                                   schedule.words[slots])
                out, cache = cell.np_leaf(params, x)
                flops = cell.leaf_flops(n)
                kernels = cell.leaf_kernels
            else:
                left_slots = schedule.left[slots]
                right_slots = schedule.right[slots]
                left = tuple(s[left_slots] for s in states)
                right = tuple(s[right_slots] for s in states)
                out, cache = cell.np_internal(params, left, right)
                flops = cell.internal_flops(n)
                kernels = cell.internal_kernels
                # regrouping: gather children states (2 per state component)
                vtime += 2 * arity * (self.gpu.kernel_launch
                                      + n * self.gpu.regroup_per_node
                                      + cell.state_bytes(n)
                                      / self.gpu.bytes_rate)
            for s, o in zip(states, out):
                s[slots] = o
            caches.append(cache)
            vtime += kernels * self.gpu.kernel_launch + flops / self.gpu.flops_rate
            vtime += (self.gpu.kernel_launch
                      + cell.state_bytes(n) / self.gpu.bytes_rate)  # scatter

        cls_name = self.model.classifier.name
        W, b = params[f"{cls_name}/W"], params[f"{cls_name}/b"]
        logits = states[0] @ W + b
        losses = np_cross_entropy(logits, schedule.labels)
        loss = float((losses * schedule.weight).sum())
        n_total = schedule.total
        vtime += (2 * self.gpu.kernel_launch
                  + 2 * n_total * H * self.model.config.classes
                  / self.gpu.flops_rate)
        root_logits = logits[schedule.root_slots]
        state = {"schedule": schedule, "params": params, "states": states,
                 "caches": caches, "logits": logits}
        return loss, root_logits, state, vtime

    # -- backward -----------------------------------------------------------------

    def backward(self, state) -> tuple[dict[str, np.ndarray], float]:
        """Level-batched backprop; returns (grads, virtual_time)."""
        schedule: FoldingSchedule = state["schedule"]
        params = state["params"]
        states = state["states"]
        caches = state["caches"]
        cell = self.cell
        arity = cell.state_arity
        grads: dict[str, np.ndarray] = {}

        def accumulate(partial: dict[str, np.ndarray]) -> None:
            for name, g in partial.items():
                grads[name] = grads.get(name, 0.0) + g

        cls_name = self.model.classifier.name
        W = params[f"{cls_name}/W"]
        dlogits = np_cross_entropy_backward(state["logits"], schedule.labels,
                                            schedule.weight)
        accumulate({f"{cls_name}/W": states[0].T @ dlogits,
                    f"{cls_name}/b": dlogits.sum(axis=0)})
        d_states = [dlogits @ W.T]
        d_states += [np.zeros_like(states[0]) for _ in range(arity - 1)]
        vtime = (4 * self.gpu.kernel_launch
                 + 4 * schedule.total * W.size / self.gpu.flops_rate)

        for depth in range(schedule.depth - 1, -1, -1):
            slots = schedule.levels[depth]
            n = len(slots)
            d_level = tuple(d[slots] for d in d_states)
            if depth == 0:
                dx, partial = cell.np_leaf_backward(params, caches[0],
                                                    d_level)
                accumulate(partial)
                emb_name = f"{self.model.embedding.name}/table"
                d_table = np.zeros_like(params[emb_name])
                np.add.at(d_table, schedule.words[slots], dx)
                accumulate({emb_name: d_table})
                flops = 2 * cell.leaf_flops(n)
                kernels = cell.leaf_kernels + 1
            else:
                d_left, d_right, partial = cell.np_internal_backward(
                    params, caches[depth], d_level)
                accumulate(partial)
                left_slots = schedule.left[slots]
                right_slots = schedule.right[slots]
                for d_parent, d_child_l, d_child_r in zip(d_states, d_left,
                                                          d_right):
                    np.add.at(d_parent, left_slots, d_child_l)
                    np.add.at(d_parent, right_slots, d_child_r)
                flops = 2 * cell.internal_flops(n)
                kernels = cell.internal_kernels + 2
                vtime += 2 * arity * (self.gpu.kernel_launch
                                      + n * self.gpu.regroup_per_node
                                      + cell.state_bytes(n)
                                      / self.gpu.bytes_rate)
            vtime += kernels * self.gpu.kernel_launch + flops / self.gpu.flops_rate
        return grads, vtime

    # -- steps ----------------------------------------------------------------------

    def infer_step(self, batch: TreeBatch):
        loss, root_logits, _, vtime = self.forward(batch)
        return loss, root_logits, vtime

    def train_step(self, batch: TreeBatch, optimizer):
        loss, _, state, vtime_f = self.forward(batch)
        grads, vtime_b = self.backward(state)
        optimizer.apply_numpy(self.runtime, grads)
        apply_time = sum(2 * self.gpu.kernel_launch
                         + 3 * g.size * 4 / self.gpu.bytes_rate
                         for g in grads.values()
                         if isinstance(g, np.ndarray))
        return loss, grads, vtime_f + vtime_b + apply_time
