"""The paper's contribution: SubGraph, InvokeOp and recursive autodiff.

``autodiff`` is loaded lazily: it attaches gradient functions to the
control-flow op types, which are registered by :mod:`repro.ops` — importing
it eagerly here would close an import cycle before those ops exist.
:mod:`repro.__init__` imports it once everything else is loaded.
"""

from .cache import ROOT_KEY, ValueCache, child_key
from .subgraph import SubGraph, SubGraphError
from .invoke import invoke

__all__ = ["GradContext", "differentiate_subgraph", "gradients", "ROOT_KEY",
           "ValueCache", "child_key", "invoke", "SubGraph", "SubGraphError"]


def __getattr__(name):
    if name in ("GradContext", "differentiate_subgraph", "gradients",
                "autodiff"):
        from . import autodiff
        if name == "autodiff":
            return autodiff
        return getattr(autodiff, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
