"""Automatic differentiation, including recursive backpropagation.

Three layers (paper Section 4.2):

1. :func:`gradients` — ordinary reverse-mode AD over a graph: walk the
   forward operations in reverse topological order, calling each op's
   registered gradient function and summing contributions.

2. :func:`differentiate_subgraph` — differentiate a SubGraph *body* into a
   new backward SubGraph.  References to forward values become
   ``CacheLookup`` operations resolved against the backprop value cache at
   the backward frame's key.  If the forward body recursively invokes its
   own SubGraph, the backward body holds an ``InvokeGrad`` at the same
   position — the backward SubGraph is recursive exactly where the forward
   one is (paper Section 4.2.2).  Recursive self-reference is handled by
   an in-progress marker: the inner ``InvokeGrad`` resolves its target
   backward SubGraph lazily at execution time (forward declaration for
   gradients, paper Section 5).

3. Gradient definitions for the async control-flow ops (``Invoke``,
   ``Cond``, ``Loop``), together with their backward counterparts
   (``InvokeGrad`` lives in :mod:`repro.core.invoke`; ``CondGrad`` and
   ``LoopGrad`` are defined here).  Backward frames re-derive forward
   frame keys structurally from call-site ids, so activations recorded by
   any forward frame are found by the matching backward frame.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.cache import child_key
from repro.core.subgraph import SubGraph, SubGraphError
from repro.graph import dtypes
from repro.graph.graph import Graph, Operation
from repro.graph.registry import (op_def, register_batched_async,
                                  register_batched_kernel, register_grad,
                                  register_op)
from repro.graph.tensor import Tensor
from repro.ops import array_ops, math_ops, tensor_array
from repro.ops.common import build, out1

__all__ = ["gradients", "differentiate_subgraph", "GradContext",
           "cond_grad_slot_tensors"]


def _differentiable(dtype: dtypes.DType) -> bool:
    return dtype.is_floating or dtype.is_opaque


# -- CacheLookup ---------------------------------------------------------------

def _cache_lookup_infer(op):
    return [(op.attrs["dtype"], op.attrs.get("shape"))]


def _cache_lookup_kernel(op, inputs, ctx):
    return [ctx.cache.lookup(ctx.frame.key, op.attrs["target_graph_id"],
                             op.attrs["target_op_id"],
                             op.attrs["target_out_idx"])]


def _cache_lookup_batched(ops, inputs_list, ctxs):
    """Resolve a whole bucket of gradient-frame lookups in one bulk read.

    Every member addresses the same runtime cache; grouping the keys lets
    :meth:`~repro.core.cache.ValueCache.lookup_many` take each shard lock
    once, and the engines account the bucket as a single bulk cache
    round-trip instead of N serialized lookups (the training-path
    bottleneck of paper Section 5).
    """
    keys = [(ctx.frame.key, op.attrs["target_graph_id"],
             op.attrs["target_op_id"], op.attrs["target_out_idx"])
            for op, ctx in zip(ops, ctxs)]
    return [[value] for value in ctxs[0].cache.lookup_many(keys)]


register_op("CacheLookup", infer=_cache_lookup_infer,
            kernel=_cache_lookup_kernel, grad=None, stateful=True,
            cost="cache")
# Read-only state access: N lookups fuse into one bulk cache transaction.
register_batched_kernel("CacheLookup", _cache_lookup_batched,
                        allow_stateful=True)


class GradContext:
    """Services available to gradient functions (``gb``).

    ``val(t)`` maps a *forward* tensor to a tensor usable in the graph the
    gradients are being built in: the tensor itself when differentiating a
    graph in place ("direct" mode), or a memoized ``CacheLookup`` when
    building a backward SubGraph body ("cache" mode).
    """

    def __init__(self, graph: Graph, forward_graph: Graph, mode: str):
        assert mode in ("direct", "cache")
        self.graph = graph
        self.forward_graph = forward_graph
        self.mode = mode
        self.update_ops: list[Operation] = []
        #: refs that became CacheLookups (drives selective caching)
        self._lookup_memo: dict[tuple[int, int], Optional[Tensor]] = {}
        self._rematerialize_memo: dict[tuple[int, int], Tensor] = {}

    def val(self, tensor: Tensor) -> Tensor:
        if self.mode == "direct":
            return tensor
        if tensor.graph is not self.forward_graph:
            raise SubGraphError(
                f"gradient function referenced {tensor.name} from graph "
                f"{tensor.graph.name}, expected forward graph "
                f"{self.forward_graph.name}")
        key = tensor.ref
        if key not in self._rematerialize_memo:
            self._rematerialize_memo[key] = self._rematerialize(tensor)
        return self._rematerialize_memo[key]

    def _rematerialize(self, tensor: Tensor) -> Tensor:
        # Variables and constants are cheaper to re-read than to cache per
        # recursive frame (parameters do not change within a step).
        if tensor.op.op_type == "ReadVariable":
            from repro.ops import var_ops
            with self.graph.as_default():
                return var_ops.read_variable(tensor.op.attrs["var_name"],
                                             tensor.dtype, tensor.shape)
        if tensor.op.op_type == "Const":
            from repro.ops.common import constant
            with self.graph.as_default():
                return constant(tensor.op.attrs["value"])
        self._lookup_memo[tensor.ref] = None
        return out1(
            "CacheLookup", [],
            {"target_graph_id": self.forward_graph.graph_id,
             "target_op_id": tensor.op.id,
             "target_out_idx": tensor.index,
             "dtype": tensor.dtype, "shape": tensor.shape},
            name=f"lookup_{tensor.op.name}_{tensor.index}",
            graph=self.graph)

    def add_update(self, op: Operation) -> None:
        """Register a side-effect op that must run for gradients to exist."""
        self.update_ops.append(op)


def _zero_grad_like(ref: Tensor) -> Tensor:
    """A symbolic zero gradient matching ``ref`` (array or TensorArray)."""
    if ref.dtype.is_opaque:
        return tensor_array.ta_empty_like(ref)
    return array_ops.zeros_like(ref)


def _sum_grads(a: Tensor, b: Tensor) -> Tensor:
    if a.dtype.is_opaque:
        return tensor_array.ta_combine(a, b)
    return math_ops.add(a, b)


def _backprop(forward_graph: Graph, seeds: dict[tuple[int, int], Tensor],
              gb: GradContext) -> dict[tuple[int, int], Tensor]:
    """Reverse-accumulate gradients through ``forward_graph``.

    ``seeds`` maps forward tensor refs to their incoming gradient tensors
    (already living in ``gb.graph``).  Returns the full ref -> gradient
    map.  Must be called with ``gb.graph`` as the default graph.
    """
    grad_map = dict(seeds)
    seed_ops = {forward_graph.op_by_id(ref[0]) for ref in seeds}
    relevant = forward_graph.reachable_from(seed_ops)
    for op_id in sorted(relevant, reverse=True):
        op = forward_graph.op_by_id(op_id)
        out_grads = [grad_map.get((op.id, i)) for i in range(op.num_outputs)]
        if all(g is None for g in out_grads):
            continue
        grad_fn = op_def(op.op_type).grad
        if grad_fn is None:
            if any(_differentiable(t.dtype) for t in op.inputs):
                raise SubGraphError(
                    f"op {op.name} ({op.op_type}) is not differentiable but "
                    "lies on a gradient path")
            continue
        in_grads = grad_fn(gb, op, out_grads)
        if len(in_grads) != len(op.inputs):
            raise AssertionError(
                f"gradient of {op.op_type} returned {len(in_grads)} values "
                f"for {len(op.inputs)} inputs")
        for inp, grad in zip(op.inputs, in_grads):
            if grad is None or not _differentiable(inp.dtype):
                continue
            previous = grad_map.get(inp.ref)
            grad_map[inp.ref] = (grad if previous is None
                                 else _sum_grads(previous, grad))
    return grad_map


def gradients(ys, xs, grad_ys=None):
    """Build gradients of ``sum(ys)`` with respect to ``xs``.

    Returns ``(grads, update_ops)``: ``grads[i]`` is the symbolic gradient
    for ``xs[i]`` (None if unconnected).  ``update_ops`` are side-effect
    operations — ``AccumGrad`` writes for variables and backward
    control-flow ops — that the caller must fetch (or depend on) for
    variable gradients to be accumulated; :class:`repro.nn.trainer.Trainer`
    does this automatically.
    """
    ys = list(ys) if isinstance(ys, (list, tuple)) else [ys]
    xs = list(xs) if isinstance(xs, (list, tuple)) else [xs]
    graph = ys[0].graph
    for y in ys:
        if y.graph is not graph:
            raise ValueError("all ys must live in the same graph")
    gb = GradContext(graph, graph, "direct")
    with graph.as_default():
        seeds: dict[tuple[int, int], Tensor] = {}
        for i, y in enumerate(ys):
            seed = (grad_ys[i] if grad_ys is not None
                    else array_ops.ones_like(y))
            previous = seeds.get(y.ref)
            seeds[y.ref] = (seed if previous is None
                            else _sum_grads(previous, seed))
        grad_map = _backprop(graph, seeds, gb)
    grads = [grad_map.get(x.ref) for x in xs]
    return grads, gb.update_ops


def differentiate_subgraph(subgraph: SubGraph) -> Optional[SubGraph]:
    """Build (and attach) the backward SubGraph of ``subgraph``.

    Returns None if this SubGraph is already being differentiated higher
    up the call stack (recursive case) — the backward body then refers to
    itself lazily through ``SubGraph.grad_subgraph``.
    """
    if subgraph._grad_subgraph is not None:
        return subgraph._grad_subgraph
    if subgraph._grad_in_progress:
        return None
    if not subgraph.finalized:
        raise SubGraphError(
            f"cannot differentiate unfinalized SubGraph {subgraph.name!r}")
    subgraph._grad_in_progress = True
    try:
        backward = SubGraph(f"{subgraph.name}_grad", backward=True)
        with backward:
            gb = GradContext(backward.graph, subgraph.graph, "cache")
            seeds: dict[tuple[int, int], Tensor] = {}
            for pos in subgraph.differentiable_output_positions():
                t = subgraph.output_tensors[pos]
                ph = backward.input(t.dtype, t.shape, name=f"grad_out{pos}")
                previous = seeds.get(t.ref)
                seeds[t.ref] = (ph if previous is None
                                else _sum_grads(previous, ph))
            grad_map = _backprop(subgraph.graph, seeds, gb)
            outputs = []
            for kind, index in subgraph.differentiable_input_slots():
                t = (subgraph.input_tensors[index] if kind == "arg"
                     else subgraph.captures[index][1])
                grad = grad_map.get(t.ref)
                if grad is None:
                    grad = _zero_grad_like(gb.val(t))
                outputs.append(grad)
            backward.output(*outputs)
        subgraph._grad_subgraph = backward
        # Selective caching: record only the forward values the backward
        # body actually looks up (plus what enclosing graphs' backward
        # bodies request, merged by the union below).  Installed through
        # set_cache_filter so compiled frame plans holding the old store
        # masks are invalidated.
        needed = set(gb._lookup_memo.keys())
        existing = subgraph.graph.cache_filter
        subgraph.graph.set_cache_filter(needed if existing is None
                                        else existing | needed)
        _note_external_lookups(gb)
    finally:
        subgraph._grad_in_progress = False
    return backward


def _note_external_lookups(gb: GradContext) -> None:
    """No-op hook: lookups always target gb.forward_graph, whose filter we
    just set.  Kept for symmetry with _merge_main_graph_lookups."""


def _merge_main_graph_lookups(gb: GradContext) -> None:
    """Direct-mode gradients can reference SubGraph *outputs* (seed zeros);
    those refs live in the main graph whose frames never record, so no
    filter update is needed."""


# -- gradient of Invoke ---------------------------------------------------------

def _seed_grads(gb, op, out_grads, positions):
    seeds = []
    for pos in positions:
        grad = out_grads[pos]
        if grad is None:
            grad = _zero_grad_like(gb.val(op.outputs[pos]))
        seeds.append(grad)
    return seeds


def _grad_invoke(gb, op, out_grads):
    subgraph: SubGraph = op.attrs["subgraph"]
    differentiate_subgraph(subgraph)
    seeds = _seed_grads(gb, op, out_grads,
                        subgraph.differentiable_output_positions())
    outputs = build("InvokeGrad", seeds,
                    {"fwd_subgraph": subgraph, "site_id": op.id},
                    name=f"grad_call_{subgraph.name}", graph=gb.graph)
    gb.add_update(outputs[0].op)
    in_grads: list[Optional[Tensor]] = [None] * len(op.inputs)
    capture_positions = {ph_id: pos
                         for _, ph_id, pos in op.attrs.get("capture_map", ())}
    slots = subgraph.differentiable_input_slots()
    for grad_t, (kind, index) in zip(outputs[:-1], slots):
        if kind == "arg":
            in_grads[index] = grad_t
        else:
            placeholder = subgraph.captures[index][1]
            in_grads[capture_positions[placeholder.op.id]] = grad_t
    return in_grads


register_grad("Invoke", _grad_invoke)


# -- gradient of Cond -------------------------------------------------------------

def _cond_grad_infer(op):
    n_seeds = op.attrs["n_seeds"]
    refs = op.inputs[1 + n_seeds:]
    specs = [(r.dtype, r.shape) for r in refs]
    specs.append((dtypes.bool_, ()))  # completion signal
    return specs


def cond_grad_slot_tensors(subgraph: SubGraph) -> dict:
    """Map a Cond branch's capture placeholder ids to the backward-body
    output tensors carrying their gradients.

    This is the slot wiring both CondGrad executions share: the dynamic
    starter's completion callback reads the tensors out of the finished
    backward frame, and the level-plan compiler
    (:mod:`repro.runtime.level_plan`) bakes the same wiring into its
    CondGrad finisher nodes — keeping the two paths structurally
    identical.
    """
    backward = subgraph.grad_subgraph
    slot_tensors = {}
    for (kind, index), t in zip(subgraph.differentiable_input_slots(),
                                backward.output_tensors):
        assert kind == "capture", "cond branches have no declared inputs"
        placeholder = subgraph.captures[index][1]
        slot_tensors[placeholder.op.id] = t
    return slot_tensors


def _cond_grad_starter(scheduler, inst, inputs):
    op = inst.op
    n_seeds = op.attrs["n_seeds"]
    pred = bool(np.asarray(inputs[0]))
    seeds = inputs[1:1 + n_seeds]
    refs = inputs[1 + n_seeds:]
    entries = op.attrs["cap_entries"]  # [(role, placeholder_op_id)]
    role = "true" if pred else "false"
    subgraph: SubGraph = op.attrs[f"{role}_subgraph"]
    backward = subgraph.grad_subgraph
    if len(seeds) < len(backward.input_op_ids):
        raise SubGraphError(
            f"CondGrad {op.name} received {len(seeds)} seeds for "
            f"{len(backward.input_op_ids)} backward-body inputs")
    bindings = dict(zip(backward.input_op_ids, seeds))
    key = child_key(inst.frame.key, op.attrs["site_id"])

    def on_complete(frame):
        slot_values = {ph_id: frame.value_of(t)
                       for ph_id, t in cond_grad_slot_tensors(subgraph).items()}
        outputs = []
        for (entry_role, ph_id), ref in zip(entries, refs):
            if entry_role == role and ph_id in slot_values:
                outputs.append(slot_values[ph_id])
            else:
                outputs.append(tensor_array.zero_value_like(ref))
        outputs.append(np.bool_(True))
        scheduler.finish_async(inst, outputs)

    scheduler.spawn_frame(backward, bindings, key, inst.frame.depth + 1,
                       on_complete, inst)


register_op("CondGrad", infer=_cond_grad_infer, is_async=True,
            starter=_cond_grad_starter, cost="cond")


def _grad_cond(gb, op, out_grads):
    true_sg: SubGraph = op.attrs["true_subgraph"]
    false_sg: SubGraph = op.attrs["false_subgraph"]
    differentiate_subgraph(true_sg)
    differentiate_subgraph(false_sg)
    seeds = _seed_grads(gb, op, out_grads,
                        true_sg.differentiable_output_positions())
    entries = []
    refs = []
    in_positions = []
    for entry_role, ph_id, pos in op.attrs.get("capture_map", ()):
        if _differentiable(op.inputs[pos].dtype):
            entries.append((entry_role, ph_id))
            refs.append(gb.val(op.inputs[pos]))
            in_positions.append(pos)
    pred_val = gb.val(op.inputs[0])
    outputs = build("CondGrad", [pred_val] + seeds + refs,
                    {"site_id": op.id, "true_subgraph": true_sg,
                     "false_subgraph": false_sg, "n_seeds": len(seeds),
                     "cap_entries": entries},
                    name="grad_cond", graph=gb.graph)
    gb.add_update(outputs[0].op)
    in_grads: list[Optional[Tensor]] = [None] * len(op.inputs)
    for pos, grad_t in zip(in_positions, outputs[:-1]):
        in_grads[pos] = grad_t
    return in_grads


register_grad("Cond", _grad_cond)


# -- gradient of Loop ---------------------------------------------------------------

def _loop_grad_infer(op):
    specs = [(t.dtype, t.shape) for t in op.inputs]
    specs.append((dtypes.bool_, ()))  # completion signal
    return specs


def _loop_grad_starter(scheduler, inst, inputs):
    op = inst.op
    body: SubGraph = op.attrs["body_subgraph"]
    backward = body.grad_subgraph
    site_id = op.attrs["site_id"]
    diff_positions = op.attrs["diff_var_positions"]
    entries = op.attrs["cap_entries"]  # [placeholder_op_id]
    n_state = len(diff_positions)
    state = list(inputs[:n_state])
    refs = inputs[n_state:]
    capture_totals: list = [None] * len(entries)
    entry_index = {ph_id: i for i, ph_id in enumerate(entries)}
    parent_key = inst.frame.key
    depth = inst.frame.depth + 1
    iterations = scheduler.runtime.cache.lookup_meta((parent_key, site_id))
    counter = {"i": iterations - 1}
    slots = body.differentiable_input_slots()
    step_overhead = scheduler.cost_model.loop_step_overhead(n_state)
    if len(backward.input_op_ids) != n_state:
        raise SubGraphError(
            f"LoopGrad {op.name}: backward body declares "
            f"{len(backward.input_op_ids)} inputs for {n_state} "
            "differentiable loop variables")

    def finish():
        outputs = list(state)
        for total, ref in zip(capture_totals, refs):
            outputs.append(tensor_array.zero_value_like(ref)
                           if total is None else total)
        outputs.append(np.bool_(True))
        scheduler.finish_async(inst, outputs)

    def run_iter():
        bindings = dict(zip(backward.input_op_ids, state))
        key = child_key(parent_key, (site_id, counter["i"]))
        scheduler.spawn_frame(backward, bindings, key, depth, iter_done, inst)

    def iter_done(frame):
        values = [frame.value_of(t) for t in backward.output_tensors]
        new_state = []
        for (kind, index), value in zip(slots, values):
            if kind == "arg":
                new_state.append(value)
            else:
                placeholder = body.captures[index][1]
                slot = entry_index.get(placeholder.op.id)
                if slot is not None:
                    current = capture_totals[slot]
                    if current is None:
                        capture_totals[slot] = value
                    elif isinstance(current, tensor_array.TensorArrayValue):
                        capture_totals[slot] = current.combine(value)
                    else:
                        capture_totals[slot] = current + value
        state[:] = new_state
        counter["i"] -= 1
        if counter["i"] >= 0:
            scheduler.post_continuation(step_overhead, run_iter)
        else:
            finish()

    if iterations == 0:
        finish()
    else:
        run_iter()


register_op("LoopGrad", infer=_loop_grad_infer, is_async=True,
            starter=_loop_grad_starter, cost="loop")


def _grad_loop(gb, op, out_grads):
    body: SubGraph = op.attrs["body_subgraph"]
    differentiate_subgraph(body)
    diff_positions = [i for i, t in enumerate(op.inputs[:op.attrs["n_vars"]])
                      if _differentiable(t.dtype)]
    body_out_positions = body.differentiable_output_positions()
    if diff_positions != body_out_positions:
        raise SubGraphError(
            "loop variables changed differentiability between input and "
            f"output: {diff_positions} vs {body_out_positions}")
    seeds = _seed_grads(gb, op, out_grads, diff_positions)
    entries = []
    refs = []
    in_positions = []
    for entry_role, ph_id, pos in op.attrs.get("capture_map", ()):
        if entry_role == "body" and _differentiable(op.inputs[pos].dtype):
            entries.append(ph_id)
            refs.append(gb.val(op.inputs[pos]))
            in_positions.append(pos)
    outputs = build("LoopGrad", seeds + refs,
                    {"site_id": op.id, "body_subgraph": body,
                     "diff_var_positions": diff_positions,
                     "cap_entries": entries},
                    name="grad_loop", graph=gb.graph)
    gb.add_update(outputs[0].op)
    in_grads: list[Optional[Tensor]] = [None] * len(op.inputs)
    body = outputs[:-1]
    for var_pos, grad_t in zip(diff_positions, body[:len(diff_positions)]):
        in_grads[var_pos] = grad_t
    for pos, grad_t in zip(in_positions, body[len(diff_positions):]):
        in_grads[pos] = grad_t
    return in_grads


register_grad("Loop", _grad_loop)
