"""The backpropagation value cache (paper Section 5).

During the forward pass every operation output produced inside a recursive
frame is stored in a concurrent hash table, keyed by

    (frame key, producing graph id, op id, output index)

where the *frame key* combines the invocation's topological position (the
call-site op id, plus the iteration index for loop frames) with the key of
the parent frame — exactly the paper's uniqueness argument.  During the
backward pass, ``CacheLookup`` operations inside backward SubGraph bodies
retrieve the forward values by binding the backward frame to the matching
forward frame key.

Using a queue or stack instead would be incorrect: concurrent frames
complete in nondeterministic order, so values could be routed to the wrong
gradient operation (as the paper notes).

The table is *sharded*: keys hash to one of ``num_shards`` independently
locked dictionaries, so concurrent frames (threaded engine workers) do not
serialize on a single lock.  The bulk APIs — :meth:`ValueCache.store_many`
and :meth:`ValueCache.lookup_many` — group their entries by shard and take
each shard lock once, which is what lets the engines turn the N per-frame
``CacheLookup``/store round-trips of a fused micro-batch into one bulk
cache transaction (the training-path analogue of the batched forward
kernels).
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Iterable, Optional, Sequence

__all__ = ["ValueCache", "ROOT_KEY", "child_key"]

#: Key of the root (main-graph) frame.
ROOT_KEY: tuple = ()

#: Default shard count: enough to make lock collisions rare at the
#: threaded engine's worker counts, small enough to stay cheap to clear.
DEFAULT_SHARDS = 16


def child_key(parent_key: tuple, site: Hashable) -> tuple:
    """Derive a child frame key from its parent key and call-site position.

    ``site`` is the call-site op id for InvokeOp/CondOp frames, or an
    ``(op id, iteration)`` pair for loop-body frames.
    """
    return parent_key + (site,)


class _Shard:
    """One independently locked partition of the cache table."""

    __slots__ = ("table", "lock", "stores", "lookups")

    def __init__(self):
        self.table: dict[tuple, Any] = {}
        self.lock = threading.Lock()
        self.stores = 0
        self.lookups = 0


class ValueCache:
    """A concurrent (sharded) hash table of forward activation values."""

    def __init__(self, num_shards: int = DEFAULT_SHARDS):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._shards = [_Shard() for _ in range(num_shards)]
        self._meta: dict[tuple, Any] = {}
        self._meta_lock = threading.Lock()

    def _shard_of(self, key: tuple) -> _Shard:
        return self._shards[hash(key) % self.num_shards]

    # -- scalar API ----------------------------------------------------------

    def store(self, frame_key: tuple, graph_id: int, op_id: int,
              out_idx: int, value: Any) -> None:
        key = (frame_key, graph_id, op_id, out_idx)
        shard = self._shard_of(key)
        with shard.lock:
            shard.table[key] = value
            shard.stores += 1

    def lookup(self, frame_key: tuple, graph_id: int, op_id: int,
               out_idx: int) -> Any:
        key = (frame_key, graph_id, op_id, out_idx)
        shard = self._shard_of(key)
        with shard.lock:
            shard.lookups += 1
            try:
                return shard.table[key]
            except KeyError:
                raise KeyError(self._miss_message(key)) from None

    # -- bulk API ------------------------------------------------------------

    def store_many(self, entries: Iterable[tuple]) -> None:
        """Store ``(frame_key, graph_id, op_id, out_idx, value)`` entries.

        Entries are grouped by shard and each shard lock is acquired once,
        so a fused micro-batch's recorded outputs cost one lock round-trip
        per touched shard instead of one per value.
        """
        by_shard: dict[int, list[tuple[tuple, Any]]] = {}
        for frame_key, graph_id, op_id, out_idx, value in entries:
            key = (frame_key, graph_id, op_id, out_idx)
            by_shard.setdefault(hash(key) % self.num_shards, []).append(
                (key, value))
        for index, pairs in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                for key, value in pairs:
                    shard.table[key] = value
                shard.stores += len(pairs)

    def lookup_many(self, keys: Sequence[tuple]) -> list:
        """Resolve many ``(frame_key, graph_id, op_id, out_idx)`` keys.

        Returns values in key order.  One lock acquisition per touched
        shard — the bulk read the batched ``CacheLookup`` kernel issues for
        a whole bucket of gradient frames.
        """
        results: list = [None] * len(keys)
        by_shard: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            by_shard.setdefault(hash(key) % self.num_shards, []).append(
                position)
        for index, positions in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                shard.lookups += len(positions)
                for position in positions:
                    key = keys[position]
                    try:
                        results[position] = shard.table[key]
                    except KeyError:
                        raise KeyError(self._miss_message(key)) from None
        return results

    # -- counters ------------------------------------------------------------

    @property
    def stores(self) -> int:
        return sum(s.stores for s in self._shards)

    @property
    def lookups(self) -> int:
        return sum(s.lookups for s in self._shards)

    # -- control-flow metadata ----------------------------------------------

    def store_meta(self, key: tuple, value: Any) -> None:
        """Store control-flow metadata (e.g. a loop's iteration count)."""
        with self._meta_lock:
            self._meta[key] = value

    def lookup_meta(self, key: tuple) -> Any:
        with self._meta_lock:
            try:
                return self._meta[key]
            except KeyError:
                raise KeyError(f"no control-flow metadata under {key}") from None

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.table.clear()
        with self._meta_lock:
            self._meta.clear()

    def __len__(self) -> int:
        return sum(len(s.table) for s in self._shards)

    @staticmethod
    def _miss_message(key: tuple) -> str:
        frame_key, graph_id, op_id, out_idx = key
        return (f"backprop cache miss: frame={frame_key} graph={graph_id} "
                f"op={op_id}:{out_idx}. Was the forward pass run with "
                "record=True?")
