"""The backpropagation value cache (paper Section 5).

During the forward pass every operation output produced inside a recursive
frame is stored in a concurrent hash table, keyed by

    (frame key, producing graph id, op id, output index)

where the *frame key* combines the invocation's topological position (the
call-site op id, plus the iteration index for loop frames) with the key of
the parent frame — exactly the paper's uniqueness argument.  During the
backward pass, ``CacheLookup`` operations inside backward SubGraph bodies
retrieve the forward values by binding the backward frame to the matching
forward frame key.

Using a queue or stack instead would be incorrect: concurrent frames
complete in nondeterministic order, so values could be routed to the wrong
gradient operation (as the paper notes).
"""

from __future__ import annotations

import threading
from typing import Any, Hashable, Optional

__all__ = ["ValueCache", "ROOT_KEY", "child_key"]

#: Key of the root (main-graph) frame.
ROOT_KEY: tuple = ()


def child_key(parent_key: tuple, site: Hashable) -> tuple:
    """Derive a child frame key from its parent key and call-site position.

    ``site`` is the call-site op id for InvokeOp/CondOp frames, or an
    ``(op id, iteration)`` pair for loop-body frames.
    """
    return parent_key + (site,)


class ValueCache:
    """A concurrent hash table of forward activation values."""

    def __init__(self):
        self._table: dict[tuple, Any] = {}
        self._meta: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self.stores = 0
        self.lookups = 0

    def store(self, frame_key: tuple, graph_id: int, op_id: int,
              out_idx: int, value: Any) -> None:
        with self._lock:
            self._table[(frame_key, graph_id, op_id, out_idx)] = value
            self.stores += 1

    def lookup(self, frame_key: tuple, graph_id: int, op_id: int,
               out_idx: int) -> Any:
        with self._lock:
            self.lookups += 1
            try:
                return self._table[(frame_key, graph_id, op_id, out_idx)]
            except KeyError:
                raise KeyError(
                    f"backprop cache miss: frame={frame_key} graph={graph_id} "
                    f"op={op_id}:{out_idx}. Was the forward pass run with "
                    "record=True?") from None

    def store_meta(self, key: tuple, value: Any) -> None:
        """Store control-flow metadata (e.g. a loop's iteration count)."""
        with self._lock:
            self._meta[key] = value

    def lookup_meta(self, key: tuple) -> Any:
        with self._lock:
            try:
                return self._meta[key]
            except KeyError:
                raise KeyError(f"no control-flow metadata under {key}") from None

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self._meta.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)
