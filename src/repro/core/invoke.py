"""InvokeOp: recursion in dataflow graphs (paper Section 3.2).

An ``InvokeOp`` takes a set of tensors as input, runs its associated
SubGraph with those inputs, and returns the SubGraph's outputs.  It is an
ordinary graph operation — what differs is the kernel: instead of a
mathematical computation it *initiates a new frame* over the SubGraph's
body, processed by the same master scheduler and the same ready queue as
every other operation (paper Figure 4, step (4)).

``InvokeGrad`` is the backpropagation counterpart built by automatic
differentiation: it runs the SubGraph's *backward* SubGraph in a frame
bound to the same frame key as the forward call, so ``CacheLookup``
operations inside the backward body retrieve the forward activations from
the concurrent value cache (paper Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import child_key
from repro.core.subgraph import SubGraph, SubGraphError
from repro.graph import dtypes
from repro.graph.registry import register_batched_async, register_op
from repro.graph.tensor import Tensor
from repro.ops.common import build, role_captures

__all__ = ["invoke"]


def _invoke_infer(op):
    subgraph: SubGraph = op.attrs["subgraph"]
    return list(subgraph.output_specs)


def _invoke_starter(scheduler, inst, inputs):
    # ``scheduler`` is the SchedulerCore (any executor backend): starters
    # only touch the shared frame-lifecycle surface — spawn_frame,
    # finish_async, post_continuation, record, runtime, cost_model.
    op = inst.op
    # spawn-constant spec, resolved once per op at first execution: the
    # target SubGraph is finalized by then, so its binding ids, capture
    # routing and output locations are frozen
    spec = op.attrs.get("_spawn_spec")
    if spec is None:
        subgraph: SubGraph = op.attrs["subgraph"]
        if not subgraph.finalized:
            raise SubGraphError(
                f"InvokeOp {op.name} executed before SubGraph "
                f"{subgraph.name!r} was finalized")
        # bind only the site's n_args declared inputs (a recursive site
        # may predate later .input() declarations); captures follow by
        # position via the capture map
        spec = (subgraph,
                subgraph.input_op_ids[:op.attrs["n_args"]],
                role_captures(op, "main"),
                subgraph.output_locs)
        op.attrs["_spawn_spec"] = spec
    subgraph, input_ids, captures, output_locs = spec
    if len(inputs) < len(input_ids):
        raise SubGraphError(
            f"InvokeOp {op.name} received {len(inputs)} inputs for "
            f"{len(input_ids)} declared SubGraph inputs")
    bindings = dict(zip(input_ids, inputs))
    for placeholder_id, position in captures:
        bindings[placeholder_id] = inputs[position]
    key = child_key(inst.frame.key, op.id)

    # partial compilation: a spine frame carries per-call-site shape
    # profiles; a fully-determined subtree runs as a compiled sub-sweep
    # instead of a dynamic frame tree, and a partially-determined one
    # spawns dynamically with its sub-profiles threaded one level down
    rec = inst.frame.rec_profiles
    entry = rec.get(op.id) if rec is not None else None
    if entry is not None and entry[0] is subgraph:
        profile = entry[1]
        if scheduler._spawn_profiled_child(inst, subgraph, bindings, key,
                                           profile):
            return

        def on_complete(frame):
            scheduler.finish_async(inst, frame.values_at(output_locs))

        frame = scheduler.spawn_frame(subgraph, bindings, key,
                                      inst.frame.depth + 1, on_complete,
                                      inst)
        scheduler._attach_child_profiles(frame, subgraph, profile)
        return

    def on_complete(frame):
        scheduler.finish_async(inst, frame.values_at(output_locs))

    scheduler.spawn_frame(subgraph, bindings, key, inst.frame.depth + 1,
                       on_complete, inst)


register_op("Invoke", infer=_invoke_infer, is_async=True,
            starter=_invoke_starter, cost="invoke")
# Concurrent calls of the *same* SubGraph with same-shaped arguments fuse
# into one batched frame spawn (the caller-context setup is paid once for
# the bucket; every member still gets its own frame).
register_batched_async("Invoke", identity_attrs=("subgraph",))
# The gradient function is registered by repro.core.autodiff to avoid an
# import cycle.


def invoke(subgraph: SubGraph, args) -> Tensor | tuple[Tensor, ...]:
    """Create an InvokeOp calling ``subgraph`` in the current default graph."""
    if len(args) != len(subgraph.input_tensors):
        raise SubGraphError(
            f"SubGraph {subgraph.name!r} takes {len(subgraph.input_tensors)} "
            f"inputs, got {len(args)}")
    # Touch output_specs early: recursion requires a forward declaration.
    subgraph.output_specs
    attrs = {"subgraph": subgraph, "n_args": len(args), "capture_map": []}
    outputs = build("Invoke", list(args), attrs, name=f"call_{subgraph.name}")
    op = outputs[0].op if outputs else None
    # Validate declared arg dtypes.
    for i, (given, declared) in enumerate(zip(op.inputs,
                                              subgraph.input_tensors)):
        if given.dtype != declared.dtype:
            raise SubGraphError(
                f"argument {i} of {subgraph.name!r} has dtype "
                f"{given.dtype.name}, expected {declared.dtype.name}")
    if subgraph.finalized:
        subgraph.register_site(op, "main")
    else:
        subgraph.register_site(op, "main")
    if len(outputs) == 1:
        return outputs[0]
    return tuple(outputs)


# -- InvokeGrad ---------------------------------------------------------------


def _invoke_grad_infer(op):
    subgraph: SubGraph = op.attrs["fwd_subgraph"]
    specs = []
    for kind, index in subgraph.differentiable_input_slots():
        if kind == "arg":
            t = subgraph.input_tensors[index]
        else:
            t = subgraph.captures[index][1]
        specs.append((t.dtype, t.shape))
    specs.append((dtypes.bool_, ()))  # completion signal
    return specs


def _invoke_grad_starter(scheduler, inst, inputs):
    op = inst.op
    spec = op.attrs.get("_spawn_spec")
    if spec is None:
        subgraph: SubGraph = op.attrs["fwd_subgraph"]
        # resolved lazily at first execution: recursion-safe
        grad_sg = subgraph.grad_subgraph
        spec = (grad_sg, grad_sg.input_op_ids, grad_sg.output_locs,
                op.attrs["site_id"])
        op.attrs["_spawn_spec"] = spec
    grad_sg, input_ids, output_locs, site_id = spec
    if len(inputs) < len(input_ids):
        raise SubGraphError(
            f"InvokeGrad {op.name} received {len(inputs)} seeds for "
            f"{len(input_ids)} backward-body inputs")
    bindings = dict(zip(input_ids, inputs))
    key = child_key(inst.frame.key, site_id)

    def on_complete(frame):
        outputs = frame.values_at(output_locs)
        outputs.append(np.bool_(True))
        scheduler.finish_async(inst, outputs)

    scheduler.spawn_frame(grad_sg, bindings, key, inst.frame.depth + 1,
                       on_complete, inst)


register_op("InvokeGrad", infer=_invoke_grad_infer, is_async=True,
            starter=_invoke_grad_starter, cost="invoke")
# Backward frames of concurrent recursive calls batch exactly like the
# forward ones: one fused spawn per bucket of same-signature InvokeGrads.
register_batched_async("InvokeGrad", identity_attrs=("fwd_subgraph",))
