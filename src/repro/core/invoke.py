"""InvokeOp: recursion in dataflow graphs (paper Section 3.2).

An ``InvokeOp`` takes a set of tensors as input, runs its associated
SubGraph with those inputs, and returns the SubGraph's outputs.  It is an
ordinary graph operation — what differs is the kernel: instead of a
mathematical computation it *initiates a new frame* over the SubGraph's
body, processed by the same master scheduler and the same ready queue as
every other operation (paper Figure 4, step (4)).

``InvokeGrad`` is the backpropagation counterpart built by automatic
differentiation: it runs the SubGraph's *backward* SubGraph in a frame
bound to the same frame key as the forward call, so ``CacheLookup``
operations inside the backward body retrieve the forward activations from
the concurrent value cache (paper Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import child_key
from repro.core.subgraph import SubGraph, SubGraphError
from repro.graph import dtypes
from repro.graph.registry import register_batched_async, register_op
from repro.graph.tensor import Tensor
from repro.ops.common import build

__all__ = ["invoke"]


def _invoke_infer(op):
    subgraph: SubGraph = op.attrs["subgraph"]
    return list(subgraph.output_specs)


def _invoke_starter(engine, inst, inputs):
    op = inst.op
    subgraph: SubGraph = op.attrs["subgraph"]
    if not subgraph.finalized:
        raise SubGraphError(
            f"InvokeOp {op.name} executed before SubGraph "
            f"{subgraph.name!r} was finalized")
    n_args = op.attrs["n_args"]
    bindings = {subgraph.input_tensors[i].op.id: inputs[i]
                for i in range(n_args)}
    for _, placeholder_id, position in op.attrs.get("capture_map", ()):
        bindings[placeholder_id] = inputs[position]
    key = child_key(inst.frame.key, op.id)

    def on_complete(frame):
        outputs = [frame.value_of(t) for t in subgraph.output_tensors]
        engine.finish_async(inst, outputs)

    engine.spawn_frame(subgraph, bindings, key, inst.frame.depth + 1,
                       on_complete, inst)


register_op("Invoke", infer=_invoke_infer, is_async=True,
            starter=_invoke_starter, cost="invoke")
# Concurrent calls of the *same* SubGraph with same-shaped arguments fuse
# into one batched frame spawn (the caller-context setup is paid once for
# the bucket; every member still gets its own frame).
register_batched_async("Invoke", identity_attrs=("subgraph",))
# The gradient function is registered by repro.core.autodiff to avoid an
# import cycle.


def invoke(subgraph: SubGraph, args) -> Tensor | tuple[Tensor, ...]:
    """Create an InvokeOp calling ``subgraph`` in the current default graph."""
    if len(args) != len(subgraph.input_tensors):
        raise SubGraphError(
            f"SubGraph {subgraph.name!r} takes {len(subgraph.input_tensors)} "
            f"inputs, got {len(args)}")
    # Touch output_specs early: recursion requires a forward declaration.
    subgraph.output_specs
    attrs = {"subgraph": subgraph, "n_args": len(args), "capture_map": []}
    outputs = build("Invoke", list(args), attrs, name=f"call_{subgraph.name}")
    op = outputs[0].op if outputs else None
    # Validate declared arg dtypes.
    for i, (given, declared) in enumerate(zip(op.inputs,
                                              subgraph.input_tensors)):
        if given.dtype != declared.dtype:
            raise SubGraphError(
                f"argument {i} of {subgraph.name!r} has dtype "
                f"{given.dtype.name}, expected {declared.dtype.name}")
    if subgraph.finalized:
        subgraph.register_site(op, "main")
    else:
        subgraph.register_site(op, "main")
    if len(outputs) == 1:
        return outputs[0]
    return tuple(outputs)


# -- InvokeGrad ---------------------------------------------------------------


def _invoke_grad_infer(op):
    subgraph: SubGraph = op.attrs["fwd_subgraph"]
    specs = []
    for kind, index in subgraph.differentiable_input_slots():
        if kind == "arg":
            t = subgraph.input_tensors[index]
        else:
            t = subgraph.captures[index][1]
        specs.append((t.dtype, t.shape))
    specs.append((dtypes.bool_, ()))  # completion signal
    return specs


def _invoke_grad_starter(engine, inst, inputs):
    op = inst.op
    subgraph: SubGraph = op.attrs["fwd_subgraph"]
    grad_sg = subgraph.grad_subgraph  # resolved lazily: recursion-safe
    bindings = {grad_sg.input_tensors[i].op.id: inputs[i]
                for i in range(len(grad_sg.input_tensors))}
    key = child_key(inst.frame.key, op.attrs["site_id"])

    def on_complete(frame):
        outputs = [frame.value_of(t) for t in grad_sg.output_tensors]
        outputs.append(np.bool_(True))
        engine.finish_async(inst, outputs)

    engine.spawn_frame(grad_sg, bindings, key, inst.frame.depth + 1,
                       on_complete, inst)


register_op("InvokeGrad", infer=_invoke_grad_infer, is_async=True,
            starter=_invoke_grad_starter, cost="invoke")
# Backward frames of concurrent recursive calls batch exactly like the
# forward ones: one fused spawn per bucket of same-signature InvokeGrads.
register_batched_async("InvokeGrad", identity_attrs=("fwd_subgraph",))
