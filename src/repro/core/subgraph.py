"""SubGraph: the unit of recursion (paper Section 3.1).

A :class:`SubGraph` groups operations of a dataflow graph into a reusable,
function-like fragment with declared inputs and outputs.  Calling a
SubGraph object creates an ``InvokeOp`` in the *current* graph — including
inside the SubGraph's own body, which is what makes recursion expressible::

    with SubGraph("TreeLSTM") as tree:
        idx = tree.input(repro.int32, ())
        tree.declare_outputs([(repro.float32, (1, H))])

        def leaf():
            return lstm(embed(words[idx]))

        def internal():
            left = tree(children[idx][0])     # recursive call
            right = tree(children[idx][1])    # recursive call
            return lstm2(left, right)

        tree.output(repro.cond(is_leaf, leaf, internal))

    root_state = tree(root_idx)

Three pieces of framework machinery live here:

* **Forward declaration** (paper Section 5): a recursive call site is
  created before the SubGraph body is complete.  Declaring the output
  signature up front (``declare_outputs``) gives the call site its types;
  the body is "registered" to the pending sites when the definition
  episode closes.
* **Outer references** (paper Section 5): operations inside a body may
  refer to tensors of enclosing graphs.  Such references are routed
  through *capture* placeholders, and every call site is automatically
  patched to pass the captured values — iterated to a fixpoint because
  patching one SubGraph's sites can add captures to another (nested
  conditionals, mutual recursion).
* **Definition episodes**: nested ``with SubGraph(...)`` blocks form an
  episode; when the outermost block exits, all SubGraphs defined inside it
  are finalized together, sites are patched, and their body graphs frozen.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from repro.graph import dtypes
from repro.graph.graph import Graph, get_default_graph
from repro.graph.tensor import Shape, Tensor

__all__ = ["SubGraph", "SubGraphError"]


class SubGraphError(RuntimeError):
    """Raised for malformed SubGraph definitions or invocations."""


def _differentiable(dtype: dtypes.DType) -> bool:
    return dtype.is_floating or dtype.is_opaque


class _DefinitionState(threading.local):
    def __init__(self):
        self.stack: list["SubGraph"] = []
        self.episode: list["SubGraph"] = []


_defs = _DefinitionState()


class _Site:
    """A call site (InvokeOp/CondOp/LoopOp) to be patched with captures."""

    __slots__ = ("op", "role", "appended")

    def __init__(self, op, role: str):
        self.op = op
        self.role = role
        self.appended = 0


class SubGraph:
    """A reusable, possibly recursive fragment of a dataflow graph."""

    def __init__(self, name: str = "subgraph", *, backward: bool = False):
        self.name = name
        self.parent_graph = get_default_graph()
        self.graph = Graph(name, is_subgraph_body=True)
        self.graph.owning_subgraph = self
        self.graph.is_backward_body = backward
        self.is_backward = backward
        self.input_tensors: list[Tensor] = []
        self._input_op_ids: Optional[tuple[int, ...]] = None
        self.output_tensors: Optional[list[Tensor]] = None
        self._output_locs: Optional[tuple[tuple[int, int], ...]] = None
        self._declared_outputs: Optional[list[tuple]] = None
        #: list of (outer source tensor, body placeholder) pairs
        self.captures: list[tuple[Tensor, Tensor]] = []
        self._capture_memo: dict[tuple[int, int], Tensor] = {}
        self._sites: list[_Site] = []
        self._finalized = False
        self._grad_subgraph: Optional["SubGraph"] = None
        self._grad_in_progress = False
        self._context_depth = 0

    # -- definition ----------------------------------------------------------

    def __enter__(self) -> "SubGraph":
        if self._finalized:
            raise SubGraphError(f"SubGraph {self.name!r} is already defined")
        self._graph_ctx = self.graph.as_default()
        self._graph_ctx.__enter__()
        _defs.stack.append(self)
        _defs.episode.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._graph_ctx.__exit__(exc_type, exc, tb)
        popped = _defs.stack.pop()
        assert popped is self, "unbalanced SubGraph definition nesting"
        if exc_type is None and not _defs.stack:
            episode, _defs.episode = _defs.episode, []
            _close_episode(episode)
        elif exc_type is not None and not _defs.stack:
            _defs.episode = []

    def input(self, dtype, shape: Shape = None,
              name: str = "input") -> Tensor:
        """Declare an input of this SubGraph (a placeholder in its body)."""
        if self._finalized:
            raise SubGraphError("cannot add inputs to a finalized SubGraph")
        from repro.ops import math_ops
        with self.graph.as_default():
            tensor = math_ops.placeholder(dtype, shape, name=name)
        self.input_tensors.append(tensor)
        return tensor

    def declare_outputs(self, specs: Sequence[tuple]) -> None:
        """Predeclare the output signature: a list of (dtype, shape).

        Required before any *recursive* call, because a call site must know
        the callee's signature (the paper's forward declaration).
        """
        self._declared_outputs = [(dtypes.as_dtype(d), s) for d, s in specs]

    def output(self, *tensors) -> None:
        """Set the SubGraph outputs (ends the function body)."""
        if self.output_tensors is not None:
            raise SubGraphError(f"outputs of {self.name!r} already set")
        from repro.ops.common import convert, to_graph
        converted = []
        with self.graph.as_default():
            for t in tensors:
                converted.append(to_graph(convert(t), self.graph))
        if self._declared_outputs is not None:
            if len(converted) != len(self._declared_outputs):
                raise SubGraphError(
                    f"{self.name!r} declared {len(self._declared_outputs)} "
                    f"outputs but produced {len(converted)}")
            for i, (t, (dtype, _)) in enumerate(
                    zip(converted, self._declared_outputs)):
                if t.dtype != dtype:
                    raise SubGraphError(
                        f"output {i} of {self.name!r} has dtype "
                        f"{t.dtype.name}, declared {dtype.name}")
        self.output_tensors = converted

    def capture(self, outer: Tensor) -> Tensor:
        """Route an enclosing-graph tensor into this body (outer reference).

        The returned placeholder stands for ``outer``'s value; all call
        sites are patched to pass it.  Memoized per source tensor.
        """
        if self.is_backward:
            raise SubGraphError(
                "backward SubGraphs must reference forward values through "
                "the backprop cache, not captures — this is a framework bug")
        if outer.graph is not self.parent_graph:
            raise SubGraphError(
                f"capture source {outer.name} must live in the parent graph "
                f"{self.parent_graph.name}, got {outer.graph.name}")
        memo_key = (id(outer.op), outer.index)
        if memo_key in self._capture_memo:
            return self._capture_memo[memo_key]
        if self.graph.finalized:
            raise SubGraphError(
                f"SubGraph {self.name!r} is frozen; new outer references "
                "are no longer allowed")
        from repro.ops import math_ops
        with self.graph.as_default():
            placeholder = math_ops.placeholder(
                outer.dtype, outer.shape, name=f"capture_{outer.op.name}")
        self._capture_memo[memo_key] = placeholder
        self.captures.append((outer, placeholder))
        return placeholder

    # -- signature helpers ----------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def input_op_ids(self) -> tuple[int, ...]:
        """Op ids of the declared-input placeholders, in input order.

        These are the binding keys every frame spawn of this SubGraph
        writes; cached so the per-spawn starters skip the
        tensor-attribute walk (recomputed while inputs may still be
        added, frozen after finalization).
        """
        ids = self._input_op_ids
        if ids is None or len(ids) != len(self.input_tensors):
            ids = tuple(t.op.id for t in self.input_tensors)
            self._input_op_ids = ids
        return ids

    @property
    def output_locs(self) -> tuple[tuple[int, int], ...]:
        """``(op_id, output_index)`` per output tensor, cached.

        Spawn completions resolve these through the frame plan's
        ``index_of`` (one dict hit per output) instead of chasing
        tensor/op attributes per frame return.
        """
        locs = self._output_locs
        if locs is None:
            if self.output_tensors is None:
                raise SubGraphError(
                    f"SubGraph {self.name!r} has no outputs yet")
            locs = tuple((t.op.id, t.index) for t in self.output_tensors)
            self._output_locs = locs
        return locs

    @property
    def output_specs(self) -> list[tuple]:
        """(dtype, shape) per output, from the body or the declaration."""
        if self.output_tensors is not None:
            return [(t.dtype, t.shape) for t in self.output_tensors]
        if self._declared_outputs is not None:
            return list(self._declared_outputs)
        raise SubGraphError(
            f"SubGraph {self.name!r} has no outputs yet; call "
            "declare_outputs(...) before recursive calls")

    @property
    def grad_subgraph(self) -> "SubGraph":
        if self._grad_subgraph is None:
            raise SubGraphError(
                f"SubGraph {self.name!r} has no gradient; run "
                "repro.gradients/differentiate_subgraph first")
        return self._grad_subgraph

    def differentiable_output_positions(self) -> list[int]:
        return [i for i, (d, _) in enumerate(self.output_specs)
                if _differentiable(d)]

    def differentiable_input_slots(self) -> list[tuple[str, int]]:
        """Gradient slots in canonical order: ("arg", i) then ("capture", j)."""
        slots: list[tuple[str, int]] = []
        for i, t in enumerate(self.input_tensors):
            if _differentiable(t.dtype):
                slots.append(("arg", i))
        for j, (_, placeholder) in enumerate(self.captures):
            if _differentiable(placeholder.dtype):
                slots.append(("capture", j))
        return slots

    # -- invocation -----------------------------------------------------------

    def __call__(self, *args):
        """Create an InvokeOp calling this SubGraph in the current graph.

        Returns a single tensor, or a tuple for multi-output SubGraphs.
        """
        from repro.core.invoke import invoke as invoke_fn
        return invoke_fn(self, args)

    def register_site(self, op, role: str) -> None:
        """Record a call site; append captures now or when finalized."""
        site = _Site(op, role)
        self._sites.append(site)
        if self._finalized:
            self._patch_site(site)

    def _patch_site(self, site: _Site) -> bool:
        """Append any not-yet-passed captures to a call site's inputs."""
        from repro.ops.common import to_graph
        changed = False
        while site.appended < len(self.captures):
            source, placeholder = self.captures[site.appended]
            value = to_graph(source, site.op.graph)
            position = len(site.op.inputs)
            site.op.inputs.append(value)
            site.op.attrs.setdefault("capture_map", []).append(
                (site.role, placeholder.op.id, position))
            site.op.graph._invalidate_caches()
            site.appended += 1
            changed = True
        return changed

    def _patch_all_sites(self) -> bool:
        changed = False
        for site in self._sites:
            changed |= self._patch_site(site)
        return changed

    def _validate_definition(self) -> None:
        if self.output_tensors is None:
            raise SubGraphError(
                f"SubGraph {self.name!r} was defined without calling "
                ".output(...)")
        self.graph.validate()

    def __repr__(self) -> str:
        state = "finalized" if self._finalized else "defining"
        return (f"<SubGraph {self.name!r} inputs={len(self.input_tensors)} "
                f"captures={len(self.captures)} {state}>")


def _close_episode(episode: list[SubGraph]) -> None:
    """Finalize all SubGraphs of a definition episode together.

    Capture patching is iterated to a fixpoint: patching the sites of one
    SubGraph can introduce new captures on another (routing values through
    nested bodies).  Only then are body graphs frozen.
    """
    for sg in episode:
        sg._validate_definition()
        sg._finalized = True
    changed = True
    while changed:
        changed = False
        for sg in episode:
            changed |= sg._patch_all_sites()
    for sg in episode:
        sg.graph.finalize()
