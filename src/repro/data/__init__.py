"""Data substrate: trees, vocabulary, synthetic treebank, batching."""

from .batching import TreeBatch, batch_trees, iterate_batches
from .treebank import (SyntheticTreebank, TreebankConfig, build_shape,
                       label_tree, make_treebank)
from .trees import Tree, TreeArrays, TreeNode
from .vocab import Vocabulary, WordKind

__all__ = ["TreeBatch", "batch_trees", "iterate_batches",
           "SyntheticTreebank", "TreebankConfig", "build_shape",
           "label_tree", "make_treebank", "Tree", "TreeArrays", "TreeNode",
           "Vocabulary", "WordKind"]
