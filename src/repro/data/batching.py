"""Padded batching of trees into feedable arrays.

One graph per batch size handles arbitrary tree sizes: the node dimension
is padded to the largest tree in the batch and the per-instance node count
is fed alongside (this is precisely the reuse advantage of embedded
control flow the paper leverages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .trees import Tree

__all__ = ["TreeBatch", "batch_trees", "iterate_batches"]


@dataclass
class TreeBatch:
    """Arrays for a batch of ``B`` trees padded to ``N`` nodes."""

    words: np.ndarray      # int32 [B, N]
    children: np.ndarray   # int32 [B, N, 2]
    is_leaf: np.ndarray    # bool  [B, N]
    labels: np.ndarray     # int32 [B, N]
    n_nodes: np.ndarray    # int32 [B]
    root: np.ndarray       # int32 [B]
    trees: list
    #: per-tree cached shape profiles (nested tuples, batch order) — the
    #: admission key for the compiled level-plan fast path
    profiles: tuple = ()

    @property
    def size(self) -> int:
        return len(self.n_nodes)

    @property
    def max_nodes(self) -> int:
        return self.words.shape[1]

    @property
    def total_nodes(self) -> int:
        return int(self.n_nodes.sum())

    def root_labels(self) -> np.ndarray:
        return self.labels[np.arange(self.size), self.root]


def batch_trees(trees: Sequence[Tree]) -> TreeBatch:
    """Flatten and pad a list of trees into a :class:`TreeBatch`."""
    if not trees:
        raise ValueError("cannot batch zero trees")
    arrays = [t.to_arrays() for t in trees]
    batch_size = len(arrays)
    max_nodes = max(a.num_nodes for a in arrays)
    words = np.zeros((batch_size, max_nodes), dtype=np.int32)
    children = np.zeros((batch_size, max_nodes, 2), dtype=np.int32)
    is_leaf = np.ones((batch_size, max_nodes), dtype=np.bool_)
    labels = np.zeros((batch_size, max_nodes), dtype=np.int32)
    n_nodes = np.zeros(batch_size, dtype=np.int32)
    root = np.zeros(batch_size, dtype=np.int32)
    for b, a in enumerate(arrays):
        n = a.num_nodes
        words[b, :n] = np.maximum(a.words, 0)
        children[b, :n] = np.maximum(a.children, 0)
        is_leaf[b, :n] = a.is_leaf
        labels[b, :n] = a.labels
        n_nodes[b] = n
        root[b] = a.root
    return TreeBatch(words=words, children=children, is_leaf=is_leaf,
                     labels=labels, n_nodes=n_nodes, root=root,
                     trees=list(trees),
                     profiles=tuple(t.shape_profile for t in trees))


def iterate_batches(trees: Sequence[Tree], batch_size: int,
                    shuffle: bool = False,
                    rng: np.random.Generator | None = None,
                    drop_remainder: bool = True) -> Iterator[TreeBatch]:
    """Yield :class:`TreeBatch` chunks of ``batch_size`` trees."""
    order = np.arange(len(trees))
    if shuffle:
        (rng or np.random.default_rng(0)).shuffle(order)
    for start in range(0, len(order), batch_size):
        chunk = order[start:start + batch_size]
        if drop_remainder and len(chunk) < batch_size:
            return
        yield batch_trees([trees[i] for i in chunk])
