"""Synthetic sentiment treebank generator.

Stands in for the Large Movie Review / Stanford Sentiment Treebank data
the paper uses (binary parse trees, every node labeled).  Generation is
fully seeded and deterministic:

1. sample a sentence length from a clipped log-normal (movie-review
   sentences: most 10-60 words, a long tail up to ~250 — the range of the
   paper's Figure 11 x-axis);
2. sample words (content / negator / intensifier / neutral mix);
3. build a binary parse shape over the words (natural = random splits
   biased towards balance; see :mod:`repro.data.shapes` for the
   balanced / moderate / linear variants of Table 1);
4. label every node with the composed sentiment: leaves inherit their
   word's polarity; an internal node sums its children, except that a
   negator left-child flips and an intensifier left-child amplifies the
   right phrase.  Binary label = (score > 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .trees import Tree, TreeNode
from .vocab import Vocabulary, WordKind

__all__ = ["TreebankConfig", "SyntheticTreebank", "label_tree",
           "build_shape", "make_treebank"]


@dataclass
class TreebankConfig:
    vocab_size: int = 200
    num_train: int = 400
    num_val: int = 100
    min_words: int = 4
    max_words: int = 250
    mean_log_words: float = 3.3   # exp(3.3) ~ 27 words
    sigma_log_words: float = 0.55
    shape: str = "natural"        # natural | balanced | moderate | linear
    seed: int = 7


def _sample_length(rng: np.random.Generator, config: TreebankConfig) -> int:
    length = int(np.exp(rng.normal(config.mean_log_words,
                                   config.sigma_log_words)))
    return int(np.clip(length, config.min_words, config.max_words))


def _sample_words(rng: np.random.Generator, vocab: Vocabulary,
                  length: int) -> list[int]:
    """Sample a sentence with a consistent sentiment leaning.

    Like a real movie review, each sentence leans positive or negative:
    content words matching the sentence's leaning are drawn with higher
    probability, so root sentiment is predictable from composed phrase
    sentiment while node labels stay fully compositional.
    """
    leaning = 1.0 if rng.random() < 0.5 else -1.0
    content = np.flatnonzero(vocab.kinds == WordKind.CONTENT)
    matching = content[vocab.polarity[content] * leaning > 0]
    words = []
    for raw in rng.integers(0, vocab.size, size=length):
        word = int(raw)
        if (vocab.kinds[word] == WordKind.CONTENT
                and vocab.polarity[word] * leaning < 0
                and rng.random() < 0.55):
            word = int(rng.choice(matching))
        words.append(word)
    # Avoid a negator/intensifier in the final position (it would have no
    # right phrase to modify at any level).
    if vocab.kinds[words[-1]] in (WordKind.NEGATOR, WordKind.INTENSIFIER):
        words[-1] = vocab.sample_word(rng, WordKind.CONTENT)
    return words


def build_shape(words: Sequence[int], shape: str,
                rng: np.random.Generator) -> TreeNode:
    """Build an unlabeled binary tree of the given shape over ``words``."""
    def natural(lo: int, hi: int) -> TreeNode:
        if hi - lo == 1:
            return TreeNode(word=words[lo])
        # split near the middle with noise: yields realistically balanced
        # parses (balancedness ~0.5-0.8)
        span = hi - lo
        mid = lo + 1 + int((span - 2) * rng.beta(2.0, 2.0)) if span > 2 \
            else lo + 1
        return TreeNode(left=natural(lo, mid), right=natural(mid, hi))

    def balanced(lo: int, hi: int) -> TreeNode:
        if hi - lo == 1:
            return TreeNode(word=words[lo])
        mid = (lo + hi) // 2
        return TreeNode(left=balanced(lo, mid), right=balanced(mid, hi))

    def moderate(lo: int, hi: int) -> TreeNode:
        if hi - lo == 1:
            return TreeNode(word=words[lo])
        span = hi - lo
        # strongly skewed splits: a thin left phrase, deep right spine —
        # moderately balanced trees sitting between balanced and linear
        frac = rng.uniform(0.04, 0.22)
        mid = lo + max(1, min(span - 1, int(span * frac)))
        return TreeNode(left=moderate(lo, mid), right=moderate(mid, hi))

    def linear(lo: int, hi: int) -> TreeNode:
        # left-leaning chain: ((((w0 w1) w2) w3) ...)
        node = TreeNode(word=words[lo])
        for i in range(lo + 1, hi):
            node = TreeNode(left=node, right=TreeNode(word=words[i]))
        return node

    builders = {"natural": natural, "balanced": balanced,
                "moderate": moderate, "linear": linear}
    try:
        builder = builders[shape]
    except KeyError:
        raise ValueError(f"unknown tree shape {shape!r}; "
                         f"choose from {sorted(builders)}") from None
    return builder(0, len(words))


def label_tree(node: TreeNode, vocab: Vocabulary) -> float:
    """Assign composed sentiment scores and binary labels bottom-up."""
    if node.is_leaf:
        node.score = float(vocab.polarity[node.word])
    else:
        left_score = label_tree(node.left, vocab)
        right_score = label_tree(node.right, vocab)
        if node.left.is_leaf and vocab.is_negator(node.left.word):
            node.score = -right_score
        elif node.left.is_leaf and vocab.is_intensifier(node.left.word):
            node.score = 1.5 * right_score
        else:
            node.score = left_score + right_score
    node.label = int(node.score > 0)
    return node.score


def _generate_tree(rng: np.random.Generator, vocab: Vocabulary,
                   config: TreebankConfig,
                   length: Optional[int] = None) -> Tree:
    length = length if length is not None else _sample_length(rng, config)
    words = _sample_words(rng, vocab, length)
    root = build_shape(words, config.shape, rng)
    label_tree(root, vocab)
    return Tree(root)


@dataclass
class SyntheticTreebank:
    """A generated dataset: train/validation trees plus its vocabulary."""

    vocab: Vocabulary
    train: list[Tree]
    val: list[Tree]
    config: TreebankConfig

    def with_shape(self, shape: str) -> "SyntheticTreebank":
        """The same word sequences re-parsed into a different tree shape
        (the Table 1 balanced/moderate/linear datasets)."""
        rng = np.random.default_rng(self.config.seed + 1)

        def reparse(tree: Tree) -> Tree:
            root = build_shape(tree.words(), shape, rng)
            label_tree(root, self.vocab)
            return Tree(root)

        clone = SyntheticTreebank(
            vocab=self.vocab,
            train=[reparse(t) for t in self.train],
            val=[reparse(t) for t in self.val],
            config=TreebankConfig(**{**self.config.__dict__,
                                     "shape": shape}))
        return clone

    def trees_of_length(self, length: int, count: int,
                        seed: int = 0) -> list[Tree]:
        """Generate fresh instances with exactly ``length`` words
        (the Figure 11 sentence-length sweep)."""
        rng = np.random.default_rng(self.config.seed + 1000 + seed)
        return [_generate_tree(rng, self.vocab, self.config, length=length)
                for _ in range(count)]


def make_treebank(config: Optional[TreebankConfig] = None,
                  **overrides) -> SyntheticTreebank:
    """Generate a seeded synthetic treebank."""
    if config is None:
        config = TreebankConfig(**overrides)
    elif overrides:
        config = TreebankConfig(**{**config.__dict__, **overrides})
    rng = np.random.default_rng(config.seed)
    vocab = Vocabulary.build(config.vocab_size, rng)
    train = [_generate_tree(rng, vocab, config)
             for _ in range(config.num_train)]
    val = [_generate_tree(rng, vocab, config) for _ in range(config.num_val)]
    return SyntheticTreebank(vocab=vocab, train=train, val=val,
                             config=config)
