"""Binary parse trees with per-node sentiment labels.

A :class:`Tree` owns a root :class:`TreeNode`; every node carries a label
(all nodes are labeled, as in sentiment treebanks).  ``to_arrays`` flattens
the tree into post-order-indexed arrays — children always receive smaller
indices than their parent, which is exactly the topologically-sorted
indexing the paper's iterative implementation requires (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

__all__ = ["TreeNode", "Tree", "TreeArrays", "shape_profile_of"]


def shape_profile_of(node: "TreeNode") -> tuple:
    """The structural shape signature of a subtree as nested tuples.

    A leaf is ``()``; an internal node is the tuple of its children's
    profiles — so two trees have equal profiles iff they have identical
    shape (ignoring words/labels).  This is the key the level-plan
    compiler (:mod:`repro.runtime.level_plan`) memoizes on: equal
    profiles reuse one compiled wavefront schedule.
    """
    # iterative post-order build: degenerate chain trees exceed the
    # default recursion limit long before they exceed memory
    out: dict[int, tuple] = {}
    stack = [(node, False)]
    while stack:
        cur, expanded = stack.pop()
        if cur.is_leaf:
            out[id(cur)] = ()
        elif expanded:
            out[id(cur)] = (out[id(cur.left)], out[id(cur.right)])
        else:
            stack.append((cur, True))
            stack.append((cur.right, False))
            stack.append((cur.left, False))
    return out[id(node)]


def _profile_stats(profile: tuple) -> tuple[int, int, int]:
    """(num_nodes, num_leaves, depth) of a shape profile, iteratively."""
    nodes = leaves = 0
    depth = 0
    stack = [(profile, 1)]
    while stack:
        p, d = stack.pop()
        nodes += 1
        if d > depth:
            depth = d
        if not p:
            leaves += 1
        else:
            for child in p:
                stack.append((child, d + 1))
    return nodes, leaves, depth


class TreeNode:
    """A node of a binary parse tree."""

    __slots__ = ("word", "left", "right", "label", "score")

    def __init__(self, word: Optional[int] = None,
                 left: Optional["TreeNode"] = None,
                 right: Optional["TreeNode"] = None, label: int = 0,
                 score: float = 0.0):
        if (word is None) == (left is None):
            raise ValueError("a node is either a leaf (word) or internal "
                             "(two children)")
        if (left is None) != (right is None):
            raise ValueError("internal nodes need exactly two children")
        self.word = word
        self.left = left
        self.right = right
        self.label = label
        self.score = score

    @property
    def is_leaf(self) -> bool:
        return self.word is not None

    def size(self) -> int:
        """Total number of nodes in this subtree."""
        if self.is_leaf:
            return 1
        return 1 + self.left.size() + self.right.size()

    def num_leaves(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.num_leaves() + self.right.num_leaves()

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def leaves(self) -> Iterator["TreeNode"]:
        if self.is_leaf:
            yield self
        else:
            yield from self.left.leaves()
            yield from self.right.leaves()

    def post_order(self) -> Iterator["TreeNode"]:
        if not self.is_leaf:
            yield from self.left.post_order()
            yield from self.right.post_order()
        yield self


@dataclass
class TreeArrays:
    """Flat array form of one tree (children-before-parent indexing)."""

    words: np.ndarray      # int32 [n], -1 at internal nodes
    children: np.ndarray   # int32 [n, 2], -1 at leaves
    is_leaf: np.ndarray    # bool [n]
    labels: np.ndarray     # int32 [n]
    root: int

    @property
    def num_nodes(self) -> int:
        return len(self.words)


class Tree:
    """A labeled binary parse tree (one data instance)."""

    def __init__(self, root: TreeNode):
        self.root = root
        self._shape_profile: Optional[tuple] = None
        self._stats: Optional[tuple] = None

    @property
    def shape_profile(self) -> tuple:
        """Cached structural shape signature (see :func:`shape_profile_of`).

        Computed once per tree; admission-time consumers (the level-plan
        fast path, serving size hints) read the cached tuple instead of
        re-walking the tree on every request.
        """
        if self._shape_profile is None:
            self._shape_profile = shape_profile_of(self.root)
        return self._shape_profile

    def _cached_stats(self) -> tuple:
        if self._stats is None:
            self._stats = _profile_stats(self.shape_profile)
        return self._stats

    @property
    def num_nodes(self) -> int:
        return self._cached_stats()[0]

    @property
    def num_leaves(self) -> int:
        return self._cached_stats()[1]

    @property
    def num_words(self) -> int:
        return self._cached_stats()[1]

    @property
    def depth(self) -> int:
        return self._cached_stats()[2]

    @property
    def label(self) -> int:
        return self.root.label

    def words(self) -> list[int]:
        return [leaf.word for leaf in self.root.leaves()]

    def balancedness(self) -> float:
        """1.0 for a perfectly balanced tree, -> 0 for a linear chain.

        Defined as ``log2(num_leaves) / (depth - 1)`` (1.0 when depth is
        minimal, smaller when the tree degenerates towards a chain).
        """
        leaves = self.num_leaves
        if leaves <= 1 or self.depth <= 1:
            return 1.0
        return float(np.log2(leaves) / (self.depth - 1))

    def to_arrays(self) -> TreeArrays:
        """Flatten into topologically-indexed arrays (post-order)."""
        order = list(self.root.post_order())
        index = {id(node): i for i, node in enumerate(order)}
        n = len(order)
        words = np.full(n, -1, dtype=np.int32)
        children = np.full((n, 2), -1, dtype=np.int32)
        is_leaf = np.zeros(n, dtype=np.bool_)
        labels = np.zeros(n, dtype=np.int32)
        for i, node in enumerate(order):
            labels[i] = node.label
            if node.is_leaf:
                words[i] = node.word
                is_leaf[i] = True
            else:
                children[i, 0] = index[id(node.left)]
                children[i, 1] = index[id(node.right)]
        return TreeArrays(words=words, children=children, is_leaf=is_leaf,
                          labels=labels, root=n - 1)

    def __repr__(self) -> str:
        return (f"<Tree words={self.num_words} nodes={self.num_nodes} "
                f"depth={self.depth} label={self.label}>")
