"""Vocabulary with word polarities for the synthetic treebank.

The paper evaluates on movie-review sentiment data, which we cannot ship
offline.  The synthetic vocabulary preserves what the models must learn:
content words carry a latent polarity, negators flip the polarity of the
phrase to their right, and intensifiers amplify it.  Sentiment composes
bottom-up exactly like the models compose representations bottom-up, so
the task is genuinely learnable by the TreeRNN family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Vocabulary", "WordKind"]


class WordKind:
    CONTENT = 0
    NEGATOR = 1
    INTENSIFIER = 2
    NEUTRAL = 3


@dataclass
class Vocabulary:
    """Word ids 0..size-1 with per-word kind and polarity."""

    size: int
    kinds: np.ndarray       # int [size]
    polarity: np.ndarray    # float [size], 0 for non-content words

    @classmethod
    def build(cls, size: int = 200, rng: np.random.Generator | None = None,
              negator_fraction: float = 0.04,
              intensifier_fraction: float = 0.04,
              neutral_fraction: float = 0.25) -> "Vocabulary":
        rng = rng or np.random.default_rng(0)
        kinds = np.full(size, WordKind.CONTENT, dtype=np.int64)
        polarity = np.zeros(size, dtype=np.float64)
        n_neg = max(1, int(size * negator_fraction))
        n_int = max(1, int(size * intensifier_fraction))
        n_neu = max(1, int(size * neutral_fraction))
        ids = rng.permutation(size)
        neg_ids = ids[:n_neg]
        int_ids = ids[n_neg:n_neg + n_int]
        neu_ids = ids[n_neg + n_int:n_neg + n_int + n_neu]
        kinds[neg_ids] = WordKind.NEGATOR
        kinds[int_ids] = WordKind.INTENSIFIER
        kinds[neu_ids] = WordKind.NEUTRAL
        content = kinds == WordKind.CONTENT
        # polarities in {-2,-1,1,2}: no neutral content words, so composed
        # scores rarely cancel to exactly zero
        raw = rng.choice([-2.0, -1.0, 1.0, 2.0], size=int(content.sum()))
        polarity[content] = raw
        return cls(size=size, kinds=kinds, polarity=polarity)

    def sample_word(self, rng: np.random.Generator,
                    kind: int | None = None) -> int:
        if kind is None:
            return int(rng.integers(0, self.size))
        candidates = np.flatnonzero(self.kinds == kind)
        return int(rng.choice(candidates))

    def is_negator(self, word: int) -> bool:
        return self.kinds[word] == WordKind.NEGATOR

    def is_intensifier(self, word: int) -> bool:
        return self.kinds[word] == WordKind.INTENSIFIER
