"""Simulated multi-machine data-parallel training."""

from .cluster import CommunicationModel, DataParallelCluster

__all__ = ["CommunicationModel", "DataParallelCluster"]
