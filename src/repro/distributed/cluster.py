"""Simulated multi-machine data-parallel training (paper Figure 10).

The paper scales TreeLSTM training to 8 machines with synchronous data
parallelism over a parameter server [12].  We simulate that setting:

* the global batch is split into per-machine shards;
* every machine runs the recursive implementation on its shard (its
  virtual compute time measured by the engine — shards run sequentially on
  the host, but their gradients genuinely sum in the accumulators, exactly
  like synchronous data parallelism);
* the synchronous step time is ``max(shard compute times) + communication
  + parameter update``, where communication is a push+pull of the full
  parameter set over the configured link.

Near-linear scaling emerges because per-step compute falls ~1/M while the
communication term (a few MB of parameters) stays small — with stragglers
(the max over unevenly-sized shards) providing the paper's slight
sublinearity (1.85×/3.65×/7.34× at 2/4/8 machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.batching import TreeBatch, batch_trees
from repro.nn.trainer import Trainer
from repro.runtime.session import Runtime

__all__ = ["CommunicationModel", "DataParallelCluster"]


@dataclass
class CommunicationModel:
    """Parameter-server style synchronous gradient exchange."""

    bandwidth_bytes_per_s: float = 1.2e9   # 10 GbE link
    latency_s: float = 120e-6
    #: parameter-server processing per byte (aggregation)
    server_rate: float = 4.0e9

    def round_trip(self, param_bytes: int, num_machines: int) -> float:
        """Push gradients + pull parameters, server aggregates M shards."""
        transfer = 2.0 * param_bytes / self.bandwidth_bytes_per_s
        aggregate = num_machines * param_bytes / self.server_rate
        return 2 * self.latency_s + transfer + aggregate


class DataParallelCluster:
    """Synchronous data parallelism over M simulated machines."""

    def __init__(self, model, global_batch: int, num_machines: int,
                 optimizer, runtime: Runtime,
                 comm: Optional[CommunicationModel] = None,
                 session_kwargs: Optional[dict] = None):
        if global_batch % num_machines:
            raise ValueError(
                f"global batch {global_batch} does not divide across "
                f"{num_machines} machines")
        self.model = model
        self.runtime = runtime
        self.num_machines = num_machines
        self.global_batch = global_batch
        self.shard_size = global_batch // num_machines
        self.comm = comm or CommunicationModel()
        built = model.build_recursive(self.shard_size)
        self.built = built
        self.trainer = Trainer(built.graph, built.loss, optimizer, runtime,
                               session_kwargs=session_kwargs)
        self.param_bytes = sum(
            runtime.variables.read(v.name).nbytes
            for v in runtime.trainable_variables())

    def split(self, trees: Sequence) -> list[TreeBatch]:
        """Stratified sharding: deal size-sorted trees round-robin so shard
        compute times stay balanced (the standard straggler mitigation)."""
        if len(trees) != self.global_batch:
            raise ValueError(
                f"need {self.global_batch} trees, got {len(trees)}")
        by_size = sorted(trees, key=lambda t: t.num_nodes, reverse=True)
        shards: list[list] = [[] for _ in range(self.num_machines)]
        for i, tree in enumerate(by_size):
            shards[i % self.num_machines].append(tree)
        return [batch_trees(shard) for shard in shards]

    def train_step(self, trees: Sequence) -> tuple[float, float]:
        """One synchronous step; returns (mean loss, virtual step time)."""
        shards = self.split(trees)
        self.runtime.accumulators.zero()
        losses = []
        compute_times = []
        for shard in shards:
            feeds = self.built.feed_dict(shard)
            self.runtime.cache.clear()
            values = self.trainer.session.run(self.trainer._grad_fetches,
                                              feeds, record=True)
            losses.append(float(values[0]))
            compute_times.append(self.trainer.session.last_stats.virtual_time)
        # apply once on the aggregated gradients
        self.trainer.session.run(self.trainer._apply_fetches, record=False)
        apply_time = self.trainer.session.last_stats.virtual_time
        step_time = (max(compute_times)
                     + self.comm.round_trip(self.param_bytes,
                                            self.num_machines)
                     + apply_time)
        return float(np.mean(losses)), step_time

    def throughput(self, trees: Sequence, steps: int = 3) -> float:
        """Instances/second over ``steps`` synchronous steps."""
        rng = np.random.default_rng(11)
        total_time = 0.0
        pool = list(trees)
        for _ in range(steps):
            replace = len(pool) < self.global_batch
            picks = rng.choice(len(pool), size=self.global_batch,
                               replace=replace)
            _, step_time = self.train_step([pool[i] for i in picks])
            total_time += step_time
        return self.global_batch * steps / total_time
