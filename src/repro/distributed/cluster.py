"""Multi-machine data-parallel training (paper Figure 10).

The paper scales TreeLSTM training to 8 machines with synchronous data
parallelism over a parameter server [12].  Two execution modes:

``execution="simulated"`` (the original mode):

* the global batch is split into per-machine shards;
* every machine runs the recursive implementation on its shard (its
  virtual compute time measured by the engine — shards run sequentially on
  the host, but their gradients genuinely sum in the accumulators, exactly
  like synchronous data parallelism);
* the synchronous step time is ``max(shard compute times) + communication
  + parameter update``, where communication is a push+pull of the full
  parameter set over the configured link.

``execution="procpool"`` (measured): per-machine compute is *real*.  The
global batch's trees are admitted concurrently into one serving session
on the multi-process :mod:`~repro.runtime.procpool` backend with
``num_workers = num_machines`` — each worker process stands in for one
machine, kernels execute in parallel across them, and the compute term
is the measured wall clock of the fan-out instead of virtual time.
Cross-replica reduction reuses the canonical-order
:class:`~repro.runtime.variables.GradientAccumulator`: every tree's root
frame is keyed by its *global* batch index, so the accumulated gradient
is a sum in one canonical order no matter how many workers (replicas)
computed the pieces — bit-identical at any ``num_machines``.  The
communication term stays modeled (the workers share memory; a real
parameter-server link does not).

Near-linear scaling emerges because per-step compute falls ~1/M while the
communication term (a few MB of parameters) stays small — with stragglers
(the max over unevenly-sized shards) providing the paper's slight
sublinearity (1.85×/3.65×/7.34× at 2/4/8 machines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.batching import TreeBatch, batch_trees
from repro.nn.trainer import Trainer
from repro.runtime.scheduler import available_executors
from repro.runtime.session import Runtime, Session

__all__ = ["CommunicationModel", "DataParallelCluster"]


@dataclass
class CommunicationModel:
    """Parameter-server style synchronous gradient exchange."""

    bandwidth_bytes_per_s: float = 1.2e9   # 10 GbE link
    latency_s: float = 120e-6
    #: parameter-server processing per byte (aggregation)
    server_rate: float = 4.0e9

    def round_trip(self, param_bytes: int, num_machines: int) -> float:
        """Push gradients + pull parameters, server aggregates M shards."""
        transfer = 2.0 * param_bytes / self.bandwidth_bytes_per_s
        aggregate = num_machines * param_bytes / self.server_rate
        return 2 * self.latency_s + transfer + aggregate


class DataParallelCluster:
    """Synchronous data parallelism over M machines.

    ``execution="simulated"`` runs shards sequentially and reports
    virtual compute times; ``execution="procpool"`` fans the batch out
    over ``num_machines`` worker *processes* and measures real wall
    clock (see the module docstring).  Measured clusters hold a live
    serving session — call :meth:`close` (or use as a context manager)
    when done.
    """

    def __init__(self, model, global_batch: int, num_machines: int,
                 optimizer, runtime: Runtime,
                 comm: Optional[CommunicationModel] = None,
                 session_kwargs: Optional[dict] = None,
                 execution: str = "simulated"):
        if global_batch % num_machines:
            raise ValueError(
                f"global batch {global_batch} does not divide across "
                f"{num_machines} machines")
        if execution not in ("simulated", "procpool"):
            raise ValueError(f"unknown execution mode {execution!r}")
        if execution == "procpool" and "procpool" not in available_executors():
            raise ValueError(
                "execution='procpool' needs the multi-process backend, "
                "which is unavailable on this platform (no fork)")
        self.model = model
        self.runtime = runtime
        self.num_machines = num_machines
        self.global_batch = global_batch
        self.shard_size = global_batch // num_machines
        self.comm = comm or CommunicationModel()
        self.execution = execution
        if execution == "procpool":
            # per-tree roots: every tree is admitted as its own request,
            # keyed by global batch index for canonical-order reduction
            built = model.build_recursive(1)
            kwargs = dict(session_kwargs or {})
            kwargs.update(engine="procpool", num_workers=num_machines,
                          record=True, batching=True)
            self.trainer = Trainer(built.graph, built.loss, optimizer,
                                   runtime, session_kwargs=kwargs)
            # parameter updates run on the in-process reference engine:
            # they are a handful of stateful ops (master-inline anyway)
            # and virtual apply time matches the simulated mode's
            self._apply_session = Session(built.graph, runtime,
                                          engine="event")
            self._serving = False
        else:
            built = model.build_recursive(self.shard_size)
            self.trainer = Trainer(built.graph, built.loss, optimizer,
                                   runtime, session_kwargs=session_kwargs)
        self.built = built
        self.param_bytes = sum(
            runtime.variables.read(v.name).nbytes
            for v in runtime.trainable_variables())

    def split(self, trees: Sequence) -> list[TreeBatch]:
        """Stratified sharding: deal size-sorted trees round-robin so shard
        compute times stay balanced (the standard straggler mitigation)."""
        if len(trees) != self.global_batch:
            raise ValueError(
                f"need {self.global_batch} trees, got {len(trees)}")
        by_size = sorted(trees, key=lambda t: t.num_nodes, reverse=True)
        shards: list[list] = [[] for _ in range(self.num_machines)]
        for i, tree in enumerate(by_size):
            shards[i % self.num_machines].append(tree)
        return [batch_trees(shard) for shard in shards]

    def train_step(self, trees: Sequence) -> tuple[float, float]:
        """One synchronous step; returns (mean loss, step time).

        Step time is virtual in simulated mode and measured wall clock
        (plus the modeled communication term) in procpool mode.
        """
        if self.execution == "procpool":
            return self._measured_step(trees)
        shards = self.split(trees)
        self.runtime.accumulators.zero()
        losses = []
        compute_times = []
        for shard in shards:
            feeds = self.built.feed_dict(shard)
            self.runtime.cache.clear()
            values = self.trainer.session.run(self.trainer._grad_fetches,
                                              feeds, record=True)
            losses.append(float(values[0]))
            compute_times.append(self.trainer.session.last_stats.virtual_time)
        # apply once on the aggregated gradients
        self.trainer.session.run(self.trainer._apply_fetches, record=False)
        apply_time = self.trainer.session.last_stats.virtual_time
        step_time = (max(compute_times)
                     + self.comm.round_trip(self.param_bytes,
                                            self.num_machines)
                     + apply_time)
        return float(np.mean(losses)), step_time

    def _measured_step(self, trees: Sequence) -> tuple[float, float]:
        """One synchronous step on the multi-process pool.

        All trees of the global batch are admitted concurrently (each a
        root keyed by its global index), the pool's worker processes
        execute the kernels in parallel, and the compute term is the
        measured wall clock of submit-to-drain.  Gradients land in the
        shared accumulators under canonical keys, so the reduction
        order — and therefore the summed gradient, bit for bit — is
        independent of ``num_machines``.
        """
        if len(trees) != self.global_batch:
            raise ValueError(
                f"need {self.global_batch} trees, got {len(trees)}")
        engine = self.trainer.session._engine
        if not self._serving:
            # one long-lived serving session: the pool forks once, not
            # per step (workers re-read nothing — variable reads are
            # master-side and ship current values with each task)
            engine.begin_serving()
            self._serving = True
        session = self.trainer.session
        fetches = self.trainer._grad_fetches
        self.runtime.accumulators.zero()
        self.runtime.cache.clear()
        losses = [None] * len(trees)

        def completer(i):
            def on_complete(values):
                losses[i] = float(values[0])
            return on_complete

        start = time.perf_counter()
        for i, tree in enumerate(trees):
            feed_map = session._build_feed_map(
                self.built.feed_dict(batch_trees([tree])))
            engine.submit_root(self.built.graph, fetches, feed_map,
                               key=(i,), on_complete=completer(i))
        engine.drain()
        wall = time.perf_counter() - start
        self._apply_session.run(self.trainer._apply_fetches, record=False)
        apply_time = self._apply_session.last_stats.virtual_time
        step_time = (wall
                     + self.comm.round_trip(self.param_bytes,
                                            self.num_machines)
                     + apply_time)
        return float(np.mean(losses)), step_time

    def close(self) -> None:
        """Stop the measured-mode pool (no-op for simulated clusters)."""
        if getattr(self, "_serving", False):
            self.trainer.session._engine.end_serving()
            self._serving = False

    def __enter__(self) -> "DataParallelCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def throughput(self, trees: Sequence, steps: int = 3) -> float:
        """Instances/second over ``steps`` synchronous steps."""
        rng = np.random.default_rng(11)
        total_time = 0.0
        pool = list(trees)
        for _ in range(steps):
            replace = len(pool) < self.global_batch
            picks = rng.choice(len(pool), size=self.global_batch,
                               replace=replace)
            _, step_time = self.train_step([pool[i] for i in picks])
            total_time += step_time
        return self.global_batch * steps / total_time
