"""Graph substrate: dtypes, symbolic tensors, graphs and the op registry."""

from .dtypes import (DType, as_dtype, bool_, float32, float64, from_numpy,
                     int32, int64, variant)
from .graph import Graph, Operation, get_default_graph, reset_default_graph
from .registry import ExecContext, OpDef, op_def, register_grad, register_op
from .tensor import Shape, Tensor

__all__ = [
    "DType", "as_dtype", "bool_", "float32", "float64", "from_numpy",
    "int32", "int64", "variant",
    "Graph", "Operation", "get_default_graph", "reset_default_graph",
    "ExecContext", "OpDef", "op_def", "register_grad", "register_op",
    "Shape", "Tensor",
]
