"""Element types for dataflow graph tensors.

A :class:`DType` wraps a numpy dtype and classifies it for the purposes of
automatic differentiation (only floating types carry gradients) and kernel
dispatch.  The special :data:`variant` dtype is used for opaque runtime
values such as :class:`~repro.ops.tensor_array.TensorArrayValue` that flow
along graph edges but are not numeric arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DType",
    "float32",
    "float64",
    "int32",
    "int64",
    "bool_",
    "variant",
    "as_dtype",
    "from_numpy",
]


class DType:
    """An element type for tensors flowing through the graph."""

    _by_name: dict[str, "DType"] = {}

    def __init__(self, name: str, np_dtype, *, floating: bool = False,
                 integer: bool = False, boolean: bool = False,
                 opaque: bool = False):
        self.name = name
        self.np_dtype = np.dtype(np_dtype) if np_dtype is not None else None
        self.is_floating = floating
        self.is_integer = integer
        self.is_bool = boolean
        self.is_opaque = opaque
        DType._by_name[name] = self

    def __repr__(self) -> str:
        return f"repro.{self.name}"

    def __eq__(self, other) -> bool:
        if isinstance(other, DType):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)


float32 = DType("float32", np.float32, floating=True)
float64 = DType("float64", np.float64, floating=True)
int32 = DType("int32", np.int32, integer=True)
int64 = DType("int64", np.int64, integer=True)
bool_ = DType("bool", np.bool_, boolean=True)
variant = DType("variant", None, opaque=True)

_NUMPY_TO_DTYPE = {
    np.dtype(np.float32): float32,
    np.dtype(np.float64): float64,
    np.dtype(np.int32): int32,
    np.dtype(np.int64): int64,
    np.dtype(np.bool_): bool_,
}


def as_dtype(value) -> DType:
    """Coerce ``value`` (DType, string, or numpy dtype) to a :class:`DType`."""
    if isinstance(value, DType):
        return value
    if isinstance(value, str):
        try:
            return DType._by_name[value]
        except KeyError:
            raise TypeError(f"unknown dtype name: {value!r}") from None
    try:
        np_dtype = np.dtype(value)
    except TypeError:
        raise TypeError(f"cannot interpret {value!r} as a dtype") from None
    try:
        return _NUMPY_TO_DTYPE[np_dtype]
    except KeyError:
        raise TypeError(f"unsupported numpy dtype: {np_dtype}") from None


def from_numpy(array: np.ndarray) -> DType:
    """Return the :class:`DType` matching a numpy array's dtype."""
    try:
        return _NUMPY_TO_DTYPE[array.dtype]
    except KeyError:
        raise TypeError(f"unsupported numpy dtype: {array.dtype}") from None


def as_value(value, dtype: DType | None = None):
    """Convert a Python/numpy value to a runtime tensor value.

    Numeric values become numpy arrays of ``dtype`` (or an inferred dtype).
    Opaque values (``variant`` dtype) are passed through untouched.
    """
    if dtype is not None and dtype.is_opaque:
        return value
    if isinstance(value, np.ndarray):
        arr = value
    else:
        arr = np.asarray(value)
    if arr.dtype == np.dtype(np.float16):
        arr = arr.astype(np.float32)
    if dtype is None:
        # Normalize Python defaults: float -> float32, int -> int32.
        if arr.dtype == np.dtype(np.float64) and not isinstance(value, np.ndarray):
            arr = arr.astype(np.float32)
        elif arr.dtype in (np.dtype(np.int64), np.dtype(int)) and not isinstance(value, np.ndarray):
            arr = arr.astype(np.int32)
        return arr
    return arr.astype(dtype.np_dtype, copy=False)
