"""Dataflow graphs and operations.

This is the substrate the paper assumes: a directed acyclic graph whose
vertices are operations and whose edges carry tensors (Section 2.1).  The
module provides:

* :class:`Operation` — a vertex with typed inputs/outputs, attributes and
  control dependencies;
* :class:`Graph` — a container of operations with name uniquing, a default
  graph stack, consumer maps for the scheduler, and validation;
* :func:`get_default_graph` and the ``with graph.as_default():`` idiom.

SubGraph bodies (:mod:`repro.core.subgraph`) are ordinary :class:`Graph`
objects flagged with ``is_subgraph_body`` so the runtime knows to record
their values into the backpropagation cache.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Iterable, Optional, Sequence

from . import dtypes, registry
from .tensor import Shape, Tensor

__all__ = ["Operation", "Graph", "get_default_graph", "reset_default_graph",
           "graph_by_id"]

_graph_counter = [0]
_graph_counter_lock = threading.Lock()

#: Weak index of every live graph by its ``graph_id``.  Multi-process
#: executors resolve slot-level work descriptors through this — a forked
#: worker inherits the parent's graphs at fork time and looks them up by
#: id, never unpickling graph structure off the wire.
_graphs_by_id: "weakref.WeakValueDictionary[int, Graph]" = \
    weakref.WeakValueDictionary()


def graph_by_id(graph_id: int) -> Optional["Graph"]:
    """Return the live :class:`Graph` with ``graph_id``, or ``None``.

    Graphs register themselves on construction and the index holds them
    weakly, so a returned graph is always the same object the id was
    minted for — ids are process-global and never reused.
    """
    return _graphs_by_id.get(graph_id)


class Operation:
    """A single graph vertex.

    Attributes:
        graph: owning :class:`Graph`.
        id: integer id unique within the owning graph (also its creation
            order, so iterating ops by id is a topological order).
        name: unique string name within the graph.
        op_type: registry key selecting the kernel / gradient / inference.
        inputs: data-edge inputs (list of :class:`Tensor`).
        control_inputs: operations that must complete before this one runs
            but contribute no data.
        attrs: static attributes (shapes, sub-graph references, ...).
        outputs: produced :class:`Tensor` handles.
    """

    __slots__ = ("graph", "id", "name", "op_type", "inputs",
                 "control_inputs", "attrs", "outputs", "traceback_hint")

    def __init__(self, graph: "Graph", op_id: int, name: str, op_type: str,
                 inputs: Sequence[Tensor], attrs: dict[str, Any]):
        self.graph = graph
        self.id = op_id
        self.name = name
        self.op_type = op_type
        self.inputs = list(inputs)
        self.control_inputs: list[Operation] = []
        self.attrs = dict(attrs)
        self.outputs: list[Tensor] = []
        self.traceback_hint: Optional[str] = None

    def add_control_input(self, op: "Operation") -> None:
        """Add a control dependency on ``op`` (must be in the same graph)."""
        if op.graph is not self.graph:
            raise ValueError(
                f"control input {op.name} belongs to a different graph")
        if op not in self.control_inputs:
            self.control_inputs.append(op)
            self.graph._invalidate_caches()

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def __repr__(self) -> str:
        return f"<Operation {self.name!r} type={self.op_type}>"


class Graph:
    """A dataflow graph: an append-only list of operations.

    Operations are added through :meth:`add_op`, normally via the helpers
    in :mod:`repro.ops`.  Once a graph has been :meth:`finalize`-d (done
    automatically for SubGraph bodies) it rejects further additions — the
    runtime relies on finalized bodies being immutable.
    """

    def __init__(self, name: str = "graph", *, is_subgraph_body: bool = False):
        with _graph_counter_lock:
            _graph_counter[0] += 1
            self.graph_id = _graph_counter[0]
            _graphs_by_id[self.graph_id] = self
        self.name = f"{name}_{self.graph_id}"
        self.is_subgraph_body = is_subgraph_body
        #: The SubGraph that owns this body graph (set by SubGraph).
        self.owning_subgraph = None
        self._ops: list[Operation] = []
        self._ops_by_name: dict[str, Operation] = {}
        self._name_counts: dict[str, int] = {}
        self._finalized = False
        self._consumers_cache: Optional[dict[int, list[Operation]]] = None
        #: Compiled FramePlans keyed by op-id set (see repro.runtime.plan);
        #: the runtime owns the values, the graph owns the invalidation.
        self._frame_plans: dict = {}
        #: Pruned root-frame plans keyed by fetch-op-id set.
        self._fetch_plans: dict = {}
        #: Compiled LevelPlans keyed by (root plan, shape profile, record)
        #: (see repro.runtime.level_plan); invalidated with the frame plans.
        self._level_plans: dict = {}
        #: Registry mutation counter the cached plans were compiled at:
        #: registering an op, gradient or batched kernel *after* a plan
        #: compiled invalidates it (plans bake in resolved OpDefs and
        #: batch-signature prefixes).  Checked by repro.runtime.plan.
        self._plan_registry_version = registry.registry_version()
        #: Selective-caching record set: (op_id, out_idx) pairs the backward
        #: body looks up, or None to record everything (see set_cache_filter).
        self.cache_filter = None
        self._lock = threading.RLock()
        #: Per-graph memo used by Variable.read() to avoid duplicate reads.
        self.variable_read_memo: dict[str, Tensor] = {}
        #: Collections, e.g. names of variables read by this graph.
        self.collections: dict[str, list] = {}

    # -- construction ------------------------------------------------------

    def unique_name(self, base: str) -> str:
        """Return a name unique within this graph, derived from ``base``."""
        with self._lock:
            count = self._name_counts.get(base, 0)
            self._name_counts[base] = count + 1
            return base if count == 0 else f"{base}_{count}"

    def add_op(self, op_type: str, inputs: Sequence[Tensor] = (),
               attrs: Optional[dict[str, Any]] = None,
               name: Optional[str] = None) -> Operation:
        """Create an operation, infer its outputs, and append it."""
        from . import registry

        if self._finalized:
            raise RuntimeError(
                f"graph {self.name} is finalized; no more ops may be added")
        inputs = [self._check_input(op_type, i, t)
                  for i, t in enumerate(inputs)]
        op_def = registry.op_def(op_type)
        attrs = dict(attrs or {})
        with self._lock:
            op_id = len(self._ops)
            op_name = self.unique_name(name or op_type.lower())
            op = Operation(self, op_id, op_name, op_type, inputs, attrs)
            specs = op_def.infer(op)
            for idx, (dtype, shape) in enumerate(specs):
                op.outputs.append(Tensor(op, idx, dtype, shape))
            self._ops.append(op)
            self._ops_by_name[op_name] = op
            self._consumers_cache = None
            self._frame_plans.clear()
            self._fetch_plans.clear()
            self._level_plans.clear()
        return op

    def _check_input(self, op_type: str, position: int, tensor) -> Tensor:
        if not isinstance(tensor, Tensor):
            raise TypeError(
                f"input {position} of {op_type} is not a Tensor: {tensor!r}; "
                "wrap constants with ops.constant()")
        if tensor.graph is not self:
            raise ValueError(
                f"input {position} of {op_type} ({tensor.name}) belongs to "
                f"graph {tensor.graph.name}, not {self.name}. Cross-graph "
                "references are only legal through SubGraph captures.")
        return tensor

    def finalize(self) -> None:
        """Freeze the graph; subsequent :meth:`add_op` calls raise."""
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized

    # -- inspection --------------------------------------------------------

    @property
    def operations(self) -> list[Operation]:
        return list(self._ops)

    @property
    def num_operations(self) -> int:
        return len(self._ops)

    def get_operation(self, name: str) -> Operation:
        return self._ops_by_name[name]

    def op_by_id(self, op_id: int) -> Operation:
        return self._ops[op_id]

    def consumers(self) -> dict[int, list[Operation]]:
        """Map from op id to the list of operations consuming its outputs
        (including control-dependency consumers)."""
        with self._lock:
            if self._consumers_cache is None:
                table: dict[int, list[Operation]] = {op.id: [] for op in self._ops}
                for op in self._ops:
                    seen: set[int] = set()
                    for t in op.inputs:
                        if t.op.id not in seen:
                            table[t.op.id].append(op)
                            seen.add(t.op.id)
                    for c in op.control_inputs:
                        if c.id not in seen:
                            table[c.id].append(op)
                            seen.add(c.id)
                self._consumers_cache = table
            return self._consumers_cache

    def _invalidate_caches(self) -> None:
        with self._lock:
            self._consumers_cache = None
            self._frame_plans.clear()
            self._fetch_plans.clear()
            self._level_plans.clear()

    def set_cache_filter(self, refs) -> None:
        """Install the selective-caching record set.

        ``refs`` is a set of ``(op_id, out_idx)`` pairs — the forward
        values the backward body looks up — or ``None`` to record every
        output.  Compiled frame plans bake the filter into per-slot store
        masks, so changing it invalidates them.  Frames already in
        flight keep their compiled masks, so their stores may diverge
        from the new record set in either direction (computed values are
        unaffected either way); in practice filters are installed by
        ``differentiate_subgraph`` at graph-build time, before any frame
        of the graph executes.
        """
        with self._lock:
            self.cache_filter = refs
            self._frame_plans.clear()
            self._fetch_plans.clear()
            self._level_plans.clear()

    def dependency_count(self, op: Operation) -> int:
        """Number of distinct producer operations this op waits on."""
        producers = {t.op.id for t in op.inputs}
        producers.update(c.id for c in op.control_inputs)
        return len(producers)

    def validate(self) -> None:
        """Check structural invariants: ids consistent, inputs in-graph,
        and input edges only point backwards (acyclicity by construction).
        """
        for i, op in enumerate(self._ops):
            if op.id != i:
                raise AssertionError(f"op id mismatch at index {i}")
            for t in op.inputs:
                if t.op.graph is not self:
                    raise AssertionError(
                        f"{op.name} input {t.name} from foreign graph")
                if t.op.id >= op.id:
                    raise AssertionError(
                        f"{op.name} consumes {t.name} created later; graphs "
                        "must be constructed in topological order")

    def reachable_from(self, ops: Iterable[Operation]) -> set[int]:
        """Ids of all operations needed to compute ``ops`` (reverse BFS over
        data and control edges)."""
        stack = [op for op in ops]
        seen: set[int] = set()
        while stack:
            op = stack.pop()
            if op.id in seen:
                continue
            seen.add(op.id)
            for t in op.inputs:
                if t.op.id not in seen:
                    stack.append(t.op)
            for c in op.control_inputs:
                if c.id not in seen:
                    stack.append(c)
        return seen

    def __repr__(self) -> str:
        kind = "SubGraphBody" if self.is_subgraph_body else "Graph"
        return f"<{kind} {self.name!r} ops={len(self._ops)}>"

    # -- default graph management ------------------------------------------

    def as_default(self) -> "_DefaultGraphContext":
        """Context manager installing this graph as the construction target."""
        return _DefaultGraphContext(self)


class _DefaultGraphState(threading.local):
    def __init__(self):
        self.stack: list[Graph] = []
        self.root: Optional[Graph] = None


_default_state = _DefaultGraphState()


class _DefaultGraphContext:
    def __init__(self, graph: Graph):
        self._graph = graph

    def __enter__(self) -> Graph:
        _default_state.stack.append(self._graph)
        return self._graph

    def __exit__(self, *exc) -> None:
        popped = _default_state.stack.pop()
        assert popped is self._graph, "unbalanced graph context nesting"


def get_default_graph() -> Graph:
    """The graph new operations are added to.

    This is the innermost ``with graph.as_default():`` graph, or a
    process-wide root graph created on first use.
    """
    if _default_state.stack:
        return _default_state.stack[-1]
    if _default_state.root is None:
        _default_state.root = Graph("root")
    return _default_state.root


def reset_default_graph() -> Graph:
    """Discard the implicit root graph (tests use this for isolation)."""
    if _default_state.stack:
        raise RuntimeError("cannot reset while graph contexts are active")
    _default_state.root = Graph("root")
    return _default_state.root
