"""Operation registry: kernels, gradients and output inference.

Every operation type used in a graph must be registered here.  An
:class:`OpDef` bundles:

* ``infer(op)``  -> list of (dtype, shape) output specs, run at graph
  construction time;
* ``kernel(op, inputs, ctx)`` -> list of output values, run by the engine
  (``ctx`` is an :class:`ExecContext` giving access to the runtime);
* ``grad(gb, op, out_grads)`` -> list of per-input gradient tensors (or
  None), used by :mod:`repro.core.autodiff`;
* ``is_async``: the kernel does not return values directly but installs
  child frames (InvokeOp / CondOp / LoopOp);
* ``stateful``: the kernel has side effects (variable writes, gradient
  accumulation) and must never be deduplicated or pruned once fetched;
* ``batched_kernel``: optional vectorized kernel executing *many*
  same-signature instances of the op in one call (cross-instance dynamic
  micro-batching, see :mod:`repro.runtime.batching`).  The contract is
  ``batched_kernel(ops, inputs_list, ctxs) -> list of per-instance output
  lists`` where the three arguments are parallel per-instance sequences.
  Batched kernels must be *value-preserving*: each instance's outputs must
  be bit-identical to what the scalar ``kernel`` would have produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["OpDef", "register_op", "register_grad", "register_batched_kernel",
           "register_batched_async", "op_def", "ExecContext", "all_op_types",
           "registry_version"]


@dataclass
class ExecContext:
    """Runtime services available to kernels."""

    runtime: Any          # repro.runtime.session.Runtime
    frame: Any            # repro.runtime.scheduler Frame executing this op
    record: bool          # True when forward values must be cached

    @property
    def variables(self):
        return self.runtime.variables

    @property
    def cache(self):
        return self.runtime.cache

    @property
    def accumulators(self):
        return self.runtime.accumulators


@dataclass
class OpDef:
    name: str
    infer: Callable[[Any], list]
    kernel: Optional[Callable[[Any, list, ExecContext], list]] = None
    grad: Optional[Callable[[Any, Any, list], list]] = None
    is_async: bool = False
    stateful: bool = False
    #: Optional vectorized kernel over many same-signature instances:
    #: ``batched_kernel(ops, inputs_list, ctxs) -> list[list[value]]``.
    batched_kernel: Optional[Callable[[list, list, list], list]] = None
    #: Extra metadata, e.g. cost-model hints.
    meta: dict = field(default_factory=dict)


_REGISTRY: dict[str, OpDef] = {}

#: Monotonic counter bumped on every registry mutation (op registration,
#: gradient attachment, batched-kernel/batched-async installation).
#: Compiled frame plans bake registry state in — resolved OpDefs, batch
#: signature prefixes (None while no ``batched_kernel`` exists) — so the
#: plan caches (:mod:`repro.runtime.plan`) stamp the version they were
#: compiled at and drop themselves when it moves.
_REGISTRY_VERSION = [0]


def registry_version() -> int:
    """The current registry mutation counter (see ``_REGISTRY_VERSION``)."""
    return _REGISTRY_VERSION[0]


def _bump_version() -> None:
    _REGISTRY_VERSION[0] += 1


def register_op(name: str, *, infer, kernel=None, grad=None,
                is_async: bool = False, stateful: bool = False,
                **meta) -> OpDef:
    """Register an operation type.  Raises if ``name`` is already taken."""
    if name in _REGISTRY:
        raise ValueError(f"op type {name!r} already registered")
    op = OpDef(name=name, infer=infer, kernel=kernel, grad=grad,
               is_async=is_async, stateful=stateful, meta=dict(meta))
    _REGISTRY[name] = op
    _bump_version()
    return op


def register_grad(name: str, grad_fn) -> None:
    """Attach (or replace) the gradient function of an existing op type."""
    _REGISTRY[name].grad = grad_fn
    _bump_version()


def _member_loop(definition: OpDef):
    """The always-correct batched kernel: run each member's scalar kernel.

    Still profitable — the engines charge one fused dispatch/overhead for
    the whole bucket — and trivially value-preserving.
    """
    def batched(ops, inputs_list, ctxs):
        return [definition.kernel(op, inputs, ctx)
                for op, inputs, ctx in zip(ops, inputs_list, ctxs)]
    return batched


def register_batched_kernel(name: str, fn=None, *,
                            batch_attrs: tuple = (),
                            allow_stateful: bool = False) -> None:
    """Mark op type ``name`` as micro-batchable.

    ``fn(ops, inputs_list, ctxs)`` executes a whole bucket at once; pass
    ``None`` to install the member-loop fallback (amortizes per-op engine
    overhead without vectorizing the math).  ``batch_attrs`` names the op
    attrs that must match for two instances to share a bucket (e.g. a
    Concat axis) — they become part of the batch signature.

    Stateful ops are rejected unless ``allow_stateful=True``: the opt-in is
    for ops whose statefulness is *read-only* (``CacheLookup`` reads the
    backprop value cache but mutates nothing), where executing N instances
    in one fused call is order-independent and value-preserving.  Ops with
    write side effects (``Assign``, ``AccumGrad``) must never take it.
    """
    definition = _REGISTRY[name]
    if definition.is_async:
        raise ValueError(f"op type {name!r} is async; register a batched "
                         "starter via register_batched_async instead")
    if definition.stateful and not allow_stateful:
        raise ValueError(f"op type {name!r} is stateful and cannot be "
                         "micro-batched (pass allow_stateful=True only for "
                         "read-only state access)")
    definition.batched_kernel = fn if fn is not None \
        else _member_loop(definition)
    definition.meta["batch_attrs"] = tuple(batch_attrs)
    _bump_version()


def register_batched_async(name: str, *, identity_attrs: tuple = ()) -> None:
    """Mark async op type ``name`` as frame-spawn batchable.

    Async ops have no kernel — their *starter* installs child frames.  A
    bucket of same-signature async instances is executed by charging one
    fused frame-spawn overhead and then running every member's starter, so
    N concurrent recursive calls (forward ``Invoke`` or backward
    ``InvokeGrad``) pay the caller/callee context-setup cost once plus a
    small per-member term instead of N times.

    ``identity_attrs`` names attrs whose *object identity* must match for
    two instances to fuse (e.g. the target SubGraph) — value equality is
    meaningless for graph-bearing attrs.
    """
    definition = _REGISTRY[name]
    if not definition.is_async:
        raise ValueError(f"op type {name!r} is not async")
    definition.meta["batch_async"] = True
    definition.meta["batch_identity_attrs"] = tuple(identity_attrs)
    _bump_version()


def op_def(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown op type {name!r}; is its module imported?") from None


def all_op_types() -> list[str]:
    return sorted(_REGISTRY)
