"""Operation registry: kernels, gradients and output inference.

Every operation type used in a graph must be registered here.  An
:class:`OpDef` bundles:

* ``infer(op)``  -> list of (dtype, shape) output specs, run at graph
  construction time;
* ``kernel(op, inputs, ctx)`` -> list of output values, run by the engine
  (``ctx`` is an :class:`ExecContext` giving access to the runtime);
* ``grad(gb, op, out_grads)`` -> list of per-input gradient tensors (or
  None), used by :mod:`repro.core.autodiff`;
* ``is_async``: the kernel does not return values directly but installs
  child frames (InvokeOp / CondOp / LoopOp);
* ``stateful``: the kernel has side effects (variable writes, gradient
  accumulation) and must never be deduplicated or pruned once fetched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["OpDef", "register_op", "register_grad", "op_def", "ExecContext",
           "all_op_types"]


@dataclass
class ExecContext:
    """Runtime services available to kernels."""

    runtime: Any          # repro.runtime.session.Runtime
    frame: Any            # repro.runtime.engine Frame executing this op
    record: bool          # True when forward values must be cached

    @property
    def variables(self):
        return self.runtime.variables

    @property
    def cache(self):
        return self.runtime.cache

    @property
    def accumulators(self):
        return self.runtime.accumulators


@dataclass
class OpDef:
    name: str
    infer: Callable[[Any], list]
    kernel: Optional[Callable[[Any, list, ExecContext], list]] = None
    grad: Optional[Callable[[Any, Any, list], list]] = None
    is_async: bool = False
    stateful: bool = False
    #: Extra metadata, e.g. cost-model hints.
    meta: dict = field(default_factory=dict)


_REGISTRY: dict[str, OpDef] = {}


def register_op(name: str, *, infer, kernel=None, grad=None,
                is_async: bool = False, stateful: bool = False,
                **meta) -> OpDef:
    """Register an operation type.  Raises if ``name`` is already taken."""
    if name in _REGISTRY:
        raise ValueError(f"op type {name!r} already registered")
    op = OpDef(name=name, infer=infer, kernel=kernel, grad=grad,
               is_async=is_async, stateful=stateful, meta=dict(meta))
    _REGISTRY[name] = op
    return op


def register_grad(name: str, grad_fn) -> None:
    """Attach (or replace) the gradient function of an existing op type."""
    _REGISTRY[name].grad = grad_fn


def op_def(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown op type {name!r}; is its module imported?") from None


def all_op_types() -> list[str]:
    return sorted(_REGISTRY)
