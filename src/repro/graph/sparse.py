"""Sparse embedding-gradient value: an ``IndexedSlices``-style triple.

``Gather`` on a ``[vocab, embed]`` table touches O(batch) rows; its
dense gradient is O(vocab).  :class:`IndexedSlices` keeps the gradient
as ``(indices, values, dense_shape)`` — O(touched rows) — so it can flow
through the accumulator, the optimizers and the shm transport without
ever materializing the table-shaped zero matrix, densifying only at the
explicit ``read_accum(dense=True)`` boundary (or when an optimizer that
needs every row, e.g. Adam's decay, asks for it).

Bit-identity contract
---------------------
Every ``IndexedSlices`` produced by a kernel has **unique** indices:
duplicate rows are pre-combined at emission time by
:meth:`IndexedSlices.from_scatter`, which replicates exactly the
left-fold order ``np.add.at`` applies in the dense scatter.  Because
each slice carries at most one value per row, downstream reductions
(concatenating segments, scattering a segment into a running buffer)
perform precisely the same float additions in precisely the same order
as the dense path — gradients stay bit-identical on every executor and
in level-plan mode.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

__all__ = ["IndexedSlices", "sparse_gather_grads_enabled",
           "set_sparse_gather_grads"]


#: Process-wide mode switch for GatherGrad emission.  Defaults on; the
#: paired memory bench flips it to record the dense baseline.
_SPARSE_GRADS = os.environ.get("REPRO_SPARSE_GRADS", "1") not in (
    "0", "false", "False", "")


def sparse_gather_grads_enabled() -> bool:
    """Whether ``GatherGrad`` kernels emit :class:`IndexedSlices`."""
    return _SPARSE_GRADS


def set_sparse_gather_grads(enabled: bool) -> bool:
    """Flip sparse GatherGrad emission; returns the previous setting."""
    global _SPARSE_GRADS
    previous = _SPARSE_GRADS
    _SPARSE_GRADS = bool(enabled)
    return previous


class IndexedSlices:
    """``(indices, values, dense_shape)`` gradient for a row-gathered
    tensor.

    ``indices`` is a 1-D int array of **unique** row ids; ``values`` is
    ``[len(indices), *dense_shape[1:]]``; ``dense_shape`` is the shape of
    the dense tensor this sparsely represents.  Instances are treated as
    immutable by the runtime (kernels never mutate a received slice).
    """

    __slots__ = ("indices", "values", "dense_shape")

    #: Opt out of numpy's binary-ufunc dispatch so ``ndarray + slices``
    #: routes through ``__radd__`` instead of element-broadcasting.
    __array_ufunc__ = None

    def __init__(self, indices: np.ndarray, values: np.ndarray,
                 dense_shape: Tuple[int, ...]):
        self.indices = indices
        self.values = values
        self.dense_shape = tuple(int(d) for d in dense_shape)

    # -- construction --------------------------------------------------

    @classmethod
    def from_scatter(cls, indices, grads, dense_shape,
                     dtype=None) -> "IndexedSlices":
        """Build a unique-index slice equal to ``np.add.at(zeros, i, g)``.

        ``indices`` may be any integer shape; ``grads`` must have shape
        ``indices.shape + dense_shape[1:]``.  Duplicate rows are combined
        here, in appearance order — the same left-fold the dense scatter
        performs — so the result is bit-identical to the dense gradient
        restricted to its touched rows.  ``dtype`` (the table's dtype)
        matches the cast the dense scatter applies on accumulate.
        """
        dense_shape = tuple(int(d) for d in dense_shape)
        idx = np.asarray(indices).reshape(-1)
        cols = dense_shape[1:]
        vals = np.ascontiguousarray(grads, dtype=dtype).reshape(
            (idx.size,) + cols)
        uniq, inverse = np.unique(idx, return_inverse=True)
        if uniq.size == idx.size:
            return cls(idx, vals, dense_shape)
        combined = np.zeros((uniq.size,) + cols, dtype=vals.dtype)
        np.add.at(combined, inverse, vals)
        return cls(uniq, combined, dense_shape)

    # -- inspection ----------------------------------------------------

    @property
    def dtype(self):
        return self.values.dtype

    @property
    def shape(self) -> Tuple[int, ...]:
        """The *dense* shape (what downstream shape inference sees)."""
        return self.dense_shape

    @property
    def nbytes(self) -> int:
        return int(self.indices.nbytes + self.values.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IndexedSlices(rows={self.indices.size}, "
                f"dense_shape={self.dense_shape}, dtype={self.dtype})")

    # -- conversion ----------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize the dense tensor.  Exact: rows are unique, so the
        scatter performs one plain add per touched row — the same
        ``zeros + g`` fold the dense GatherGrad kernel applies."""
        out = np.zeros(self.dense_shape, dtype=self.values.dtype)
        np.add.at(out, self.indices, self.values)
        return out

    # -- arithmetic (the Add kernel is ``inputs[0] + inputs[1]``) ------

    def __add__(self, other):
        if isinstance(other, IndexedSlices):
            if other.dense_shape != self.dense_shape:
                raise ValueError("IndexedSlices dense_shape mismatch: "
                                 f"{self.dense_shape} vs {other.dense_shape}")
            # Concatenation preserves operand order; each side has unique
            # rows, so any later reduction adds the left segment's value
            # for a row before the right's — the dense pairwise order.
            return IndexedSlices(
                np.concatenate([self.indices, other.indices]),
                np.concatenate([self.values, other.values]),
                self.dense_shape)
        # sparse + dense: densify (exact — unique rows scatter once each)
        dense = self.to_dense()
        dense += np.asarray(other, dtype=dense.dtype)
        return dense

    def __radd__(self, other):
        dense = np.asarray(other).copy()
        np.add.at(dense, self.indices, self.values)
        return dense

    # -- reduction helpers ---------------------------------------------

    def add_to(self, buf: np.ndarray) -> None:
        """In-place ``buf += self`` (unique rows: one add per row)."""
        np.add.at(buf, self.indices, self.values)

    def unique(self) -> "IndexedSlices":
        """Canonical form: sorted unique rows, values combined in
        left-to-right segment order (exact vs. the dense left-fold)."""
        uniq, inverse = np.unique(self.indices, return_inverse=True)
        if uniq.size == self.indices.size and np.array_equal(
                uniq, self.indices):
            return self
        combined = np.zeros((uniq.size,) + self.values.shape[1:],
                            dtype=self.values.dtype)
        np.add.at(combined, inverse, self.values)
        return IndexedSlices(uniq, combined, self.dense_shape)
