"""Symbolic tensors: handles to operation outputs.

A :class:`Tensor` does not hold data; it names output ``index`` of an
:class:`~repro.graph.graph.Operation` together with its static dtype and
(best-effort) static shape.  Tensors support the usual arithmetic operators,
which build the corresponding graph operations.
"""

from __future__ import annotations

from typing import Optional, Tuple

from . import dtypes

__all__ = ["Tensor", "Shape"]

#: A static shape: a tuple whose entries are ints or None (unknown), or
#: None entirely when the rank itself is unknown.
Shape = Optional[Tuple[Optional[int], ...]]


class Tensor:
    """A symbolic handle to one output of a graph operation."""

    __slots__ = ("op", "index", "dtype", "shape")

    def __init__(self, op, index: int, dtype: dtypes.DType, shape: Shape = None):
        self.op = op
        self.index = index
        self.dtype = dtype
        self.shape = tuple(shape) if shape is not None else None

    @property
    def graph(self):
        """The graph that owns this tensor's producing operation."""
        return self.op.graph

    @property
    def name(self) -> str:
        return f"{self.op.name}:{self.index}"

    @property
    def ref(self) -> tuple[int, int]:
        """A hashable (op id, output index) pair identifying this tensor."""
        return (self.op.id, self.index)

    def __repr__(self) -> str:
        shape = "?" if self.shape is None else list(self.shape)
        return f"<Tensor {self.name} dtype={self.dtype.name} shape={shape}>"

    def __hash__(self) -> int:
        return hash((id(self.op), self.index))

    def __eq__(self, other) -> bool:
        if isinstance(other, Tensor):
            return self.op is other.op and self.index == other.index
        return NotImplemented

    # -- operator overloads (lazily import ops to avoid import cycles) ----

    def _ops(self):
        from repro import ops
        return ops

    def __add__(self, other):
        return self._ops().add(self, other)

    def __radd__(self, other):
        return self._ops().add(other, self)

    def __sub__(self, other):
        return self._ops().subtract(self, other)

    def __rsub__(self, other):
        return self._ops().subtract(other, self)

    def __mul__(self, other):
        return self._ops().multiply(self, other)

    def __rmul__(self, other):
        return self._ops().multiply(other, self)

    def __truediv__(self, other):
        return self._ops().divide(self, other)

    def __rtruediv__(self, other):
        return self._ops().divide(other, self)

    def __matmul__(self, other):
        return self._ops().matmul(self, other)

    def __neg__(self):
        return self._ops().negative(self)

    def __pow__(self, exponent):
        if exponent == 2:
            return self._ops().square(self)
        raise NotImplementedError("only **2 is supported; use ops.exp/log")

    def __lt__(self, other):
        return self._ops().less(self, other)

    def __le__(self, other):
        return self._ops().less_equal(self, other)

    def __gt__(self, other):
        return self._ops().greater(self, other)

    def __ge__(self, other):
        return self._ops().greater_equal(self, other)

    def __getitem__(self, key):
        from repro.ops import array_ops
        return array_ops.python_index(self, key)

    def __bool__(self):
        raise TypeError(
            "symbolic Tensor cannot be used as a Python bool; use repro.cond "
            "for data-dependent control flow inside graphs")

    def __iter__(self):
        raise TypeError("symbolic Tensor is not iterable")
