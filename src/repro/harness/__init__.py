"""Evaluation harness: runners, throughput, convergence, reporting.

Training runs support the engines' micro-batching through the
``RunnerConfig.batching`` knob (``False`` / ``True`` / ``"adaptive"``);
:class:`BatchedRecursiveRunner` trains with the adaptive per-signature
flush policy by default.  :func:`format_batch_histogram` and
:func:`format_adaptive_policy` render a run's batch-width distributions
and the adaptive policy's tuned per-signature state for inspection.
"""

from .convergence import (ConvergencePoint, ConvergenceResult,
                          evaluate_accuracy, run_convergence)
from .reporting import (ascii_series, format_adaptive_policy,
                        format_batch_histogram, format_table, results_dir,
                        save_results)
from .runners import (BatchedRecursiveRunner, FoldingRunner, IterativeRunner,
                      RecursiveRunner, RunnerConfig, UnrolledRunner,
                      make_runner)
from .serving import ServingResult, compare_batching, serve_concurrent
from .throughput import (ThroughputResult, measure_latency_curve,
                         measure_throughput)

__all__ = ["ConvergencePoint", "ConvergenceResult", "evaluate_accuracy",
           "run_convergence", "ascii_series", "format_adaptive_policy",
           "format_batch_histogram", "format_table", "results_dir",
           "save_results", "BatchedRecursiveRunner", "FoldingRunner",
           "IterativeRunner", "RecursiveRunner", "RunnerConfig",
           "UnrolledRunner", "make_runner", "ServingResult",
           "compare_batching", "serve_concurrent", "ThroughputResult",
           "measure_latency_curve", "measure_throughput"]
