"""Evaluation harness: runners, throughput, serving, convergence, reporting.

Training runs support the engines' micro-batching through the
``RunnerConfig.batching`` knob (``False`` / ``True`` / ``"adaptive"``);
:class:`BatchedRecursiveRunner` trains with the adaptive per-signature
flush policy by default.  :func:`format_batch_histogram` and
:func:`format_adaptive_policy` render a run's batch-width distributions
and the adaptive policy's tuned per-signature state for inspection.

Serving (:mod:`repro.harness.serving`): :func:`serve_stream` drives a
seeded open-loop request stream through the streaming
:class:`~repro.runtime.server.RecursiveServer` (continuous batching:
requests admitted into the running engine, ``max_in_flight`` admission
control, queue-cap backpressure), :func:`compare_admission` measures the
wave-vs-continuous gap, and :func:`format_latency` renders per-request
p50/p95/p99 queue/engine/total latency.
"""

from .convergence import (ConvergencePoint, ConvergenceResult,
                          evaluate_accuracy, run_convergence)
from .reporting import (ascii_series, format_adaptive_policy,
                        format_batch_histogram, format_latency, format_table,
                        results_dir, save_results)
from .runners import (BatchedRecursiveRunner, FoldingRunner, IterativeRunner,
                      RecursiveRunner, RunnerConfig, UnrolledRunner,
                      make_runner)
from .serving import (RequestStream, ServingResult, SoakResult,
                      burst_request_stream, compare_admission,
                      compare_batching, poisson_request_stream, run_soak,
                      serve_concurrent, serve_stream)
from .throughput import (ThroughputResult, measure_latency_curve,
                         measure_throughput)

__all__ = ["ConvergencePoint", "ConvergenceResult", "evaluate_accuracy",
           "run_convergence", "ascii_series", "format_adaptive_policy",
           "format_batch_histogram", "format_latency", "format_table",
           "results_dir",
           "save_results", "BatchedRecursiveRunner", "FoldingRunner",
           "IterativeRunner", "RecursiveRunner", "RunnerConfig",
           "UnrolledRunner", "make_runner", "RequestStream", "ServingResult",
           "SoakResult", "burst_request_stream", "compare_admission",
           "compare_batching", "poisson_request_stream", "run_soak",
           "serve_concurrent", "serve_stream",
           "ThroughputResult", "measure_latency_curve", "measure_throughput"]
