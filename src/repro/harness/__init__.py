"""Evaluation harness: runners, throughput, convergence, reporting."""

from .convergence import (ConvergencePoint, ConvergenceResult,
                          evaluate_accuracy, run_convergence)
from .reporting import ascii_series, format_table, results_dir, save_results
from .runners import (FoldingRunner, IterativeRunner, RecursiveRunner,
                      RunnerConfig, UnrolledRunner, make_runner)
from .throughput import (ThroughputResult, measure_latency_curve,
                         measure_throughput)

__all__ = ["ConvergencePoint", "ConvergenceResult", "evaluate_accuracy",
           "run_convergence", "ascii_series", "format_table", "results_dir",
           "save_results", "FoldingRunner", "IterativeRunner",
           "RecursiveRunner", "RunnerConfig", "UnrolledRunner", "make_runner",
           "ThroughputResult", "measure_latency_curve",
           "measure_throughput"]
