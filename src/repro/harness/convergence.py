"""Convergence measurement: validation accuracy vs (virtual) training time.

Reproduces Figure 9's methodology: both implementations compute
numerically identical updates, so accuracy-per-epoch curves coincide;
what differs is the virtual time axis — the faster implementation reaches
any accuracy threshold sooner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.data.batching import batch_trees, iterate_batches
from repro.models.common import accuracy_from_logits

__all__ = ["ConvergencePoint", "ConvergenceResult", "run_convergence"]


@dataclass
class ConvergencePoint:
    epoch: int
    virtual_time: float      # cumulative training seconds
    train_loss: float
    val_accuracy: float


@dataclass
class ConvergenceResult:
    kind: str
    points: list[ConvergencePoint] = field(default_factory=list)

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """First cumulative time at which val accuracy >= target."""
        for point in self.points:
            if point.val_accuracy >= target:
                return point.virtual_time
        return None

    def final_accuracy(self) -> float:
        return self.points[-1].val_accuracy if self.points else 0.0


def evaluate_accuracy(runner, trees: Sequence, batch_size: int) -> float:
    """Root-label accuracy over ``trees`` using the runner's infer path."""
    correct = 0
    total = 0
    for batch in iterate_batches(trees, batch_size, drop_remainder=True):
        logits, _ = runner.infer_step(batch)
        predictions = np.argmax(logits, axis=-1)
        correct += int((predictions == batch.root_labels()).sum())
        total += batch.size
    return correct / max(total, 1)


def run_convergence(runner, train_trees: Sequence, val_trees: Sequence,
                    batch_size: int, epochs: int,
                    seed: int = 0) -> ConvergenceResult:
    """Train for ``epochs`` and record (time, accuracy) after each one."""
    rng = np.random.default_rng(seed)
    result = ConvergenceResult(kind=runner.kind)
    elapsed = 0.0
    for epoch in range(1, epochs + 1):
        losses = []
        for batch in iterate_batches(train_trees, batch_size, shuffle=True,
                                     rng=rng):
            loss, vtime = runner.train_step(batch)
            losses.append(loss)
            elapsed += vtime
        accuracy = evaluate_accuracy(runner, val_trees, batch_size)
        result.points.append(
            ConvergencePoint(epoch=epoch, virtual_time=elapsed,
                             train_loss=float(np.mean(losses)),
                             val_accuracy=accuracy))
    return result
