"""Table/figure formatting and result persistence for the benchmarks."""

from __future__ import annotations

import json
import os
from typing import Any, Optional, Sequence

__all__ = ["format_table", "save_results", "results_dir", "ascii_series",
           "format_batch_histogram", "format_adaptive_policy",
           "format_latency", "format_level_histogram", "engine_provenance",
           "host_provenance", "peak_rss_mb"]


def peak_rss_mb() -> float:
    """Process peak resident-set size in MiB (0.0 when unavailable).

    The OS high-water mark since process start — ``ru_maxrss`` is KiB on
    Linux, bytes on macOS.  Sticky by construction: it never decreases
    within a process, so paired in-process comparisons should rely on
    the engine's ``RunStats.peak_live_bytes`` estimate and treat this as
    the absolute footprint stamp for bench provenance.
    """
    try:
        import resource
        import sys
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":
            return peak / 2**20
        return peak / 1024.0
    except Exception:  # noqa: BLE001 - platforms without resource
        return 0.0


def host_provenance() -> dict:
    """Provenance stamp for bench rows: what host produced them.

    Pool-scaling numbers are meaningless without the core count — a
    workerpool/procpool speedup of ~1.0 is *expected* on a 1-CPU bench
    host and a regression on an 8-CPU one.  Returns::

        {"cpu_count": os.cpu_count(), "platform": ..., "python": ...}

    Benchmarks embed this in their JSON payloads (``save_bench_json``
    does it automatically) so recorded baselines are interpretable
    across bench hosts.
    """
    import platform

    return {"cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version()}


def engine_provenance(engine: Optional[str] = None) -> dict:
    """Provenance stamp for bench rows: which backend produced them.

    Resolves ``engine`` (default ``"event"``) through the runtime
    executor registry — so a typo fails loudly instead of silently
    mislabeling a baseline — and returns::

        {"engine": <name>, "executor": <class name>,
         "registered_executors": [...]}

    Benchmarks embed this in their JSON payloads (``save_bench_json``
    does it automatically) so recorded baselines are attributable when
    several backends exist.
    """
    from repro.runtime.scheduler import available_executors, resolve_executor

    name = engine or "event"
    return {"engine": name,
            "executor": resolve_executor(name).__name__,
            "registered_executors": available_executors()}


def results_dir() -> str:
    """``results/`` at the repository root (created on demand)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(os.path.join(here, "..", "..", ".."))
    path = os.path.join(root, "results")
    os.makedirs(path, exist_ok=True)
    return path


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}" if abs(value) >= 10 else f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(name: str, payload: dict) -> str:
    """Persist a bench's results as JSON under results/."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=float)
    return path


def format_batch_histogram(stats, max_types: int = 12,
                           bar_width: int = 30) -> str:
    """Render a run's per-signature batch-width histograms, by op type.

    ``stats`` is a :class:`~repro.runtime.stats.RunStats` whose
    ``batch_width_hist`` was filled by a batching engine.  One block per
    op type (most-fused first): width buckets with counts and a bar scaled
    to the op type's most common width.  This is the inspection surface
    for the adaptive flush policy — a healthy signature shows mass at
    wide buckets, a starved one collapses to the minimum size.
    """
    merged = stats.width_histogram_by_type()
    if not merged:
        return "batch-width histogram: (no fused batches)"
    lines = ["batch-width histogram (members per fused call, by op type)"]
    by_mass = sorted(merged.items(),
                     key=lambda kv: -sum(w * c for w, c in kv[1].items()))
    for op_type, hist in by_mass[:max_types]:
        total = sum(hist.values())
        peak = max(hist.values())
        mean = sum(w * c for w, c in hist.items()) / total
        lines.append(f"  {op_type}  (flushes={total}, mean width={mean:.1f})")
        for width in sorted(hist):
            count = hist[width]
            bar = "#" * max(1, round(bar_width * count / peak))
            lines.append(f"    w={width:<4d} {count:>6d}  {bar}")
    if len(by_mass) > max_types:
        lines.append(f"  ... {len(by_mass) - max_types} more op types")
    return "\n".join(lines)


def format_level_histogram(stats, max_levels: int = 16,
                           bar_width: int = 30) -> str:
    """Render a run's compiled level-plan counters and width histogram.

    ``stats`` is a :class:`~repro.runtime.stats.RunStats` whose
    ``level_plan_hits``/``level_plan_fallbacks`` and ``level_width_hist``
    were filled by the compiled fast path
    (:mod:`repro.runtime.level_plan`).  One row per depth level (deepest
    mass first): fused-dispatch width buckets with counts and a bar
    scaled to the level's most common width.  Healthy compiled sweeps
    show widths near ``batch × merged runs``; a high fallback count
    means admissions are missing the fast path (ineligible graph shape,
    no profile, or plan-cache invalidation churn).
    """
    hits, fallbacks = stats.level_plan_hits, stats.level_plan_fallbacks
    partial = getattr(stats, "level_plan_partial_roots", 0)
    if not (hits or fallbacks or partial):
        return "level-plan: (no profiled admissions)"
    lines = [f"level-plan: hits={hits}  fallbacks={fallbacks}"]
    if partial or getattr(stats, "level_plan_subtree_runs", 0):
        lines.append(f"  partial roots={partial}  "
                     f"subtree sweeps={stats.level_plan_subtree_runs}")
    probes = (getattr(stats, "level_plan_cache_hits", 0)
              + getattr(stats, "level_plan_cache_misses", 0))
    if probes:
        lines.append(
            f"  compile cache: hit rate="
            f"{stats.level_plan_cache_hit_rate:.2f} "
            f"(hits={stats.level_plan_cache_hits}, "
            f"misses={stats.level_plan_cache_misses}, "
            f"evictions={stats.level_plan_evictions})  "
            f"compile={stats.level_plan_compile_ms:.1f} ms")
    if not stats.level_width_hist:
        lines.append("  (no compiled dispatches recorded)")
        return "\n".join(lines)
    by_mass = sorted(stats.level_width_hist.items(),
                     key=lambda kv: -sum(w * c for w, c in kv[1].items()))
    for level, hist in by_mass[:max_levels]:
        total = sum(hist.values())
        peak = max(hist.values())
        mean = sum(w * c for w, c in hist.items()) / total
        lines.append(f"  level {level}  (dispatches={total}, "
                     f"mean width={mean:.1f})")
        for width in sorted(hist):
            count = hist[width]
            bar = "#" * max(1, round(bar_width * count / peak))
            lines.append(f"    w={width:<4d} {count:>6d}  {bar}")
    if len(by_mass) > max_levels:
        lines.append(f"  ... {len(by_mass) - max_levels} more levels")
    return "\n".join(lines)


def format_adaptive_policy(policy, max_rows: int = 16) -> str:
    """Render an AdaptiveBatchPolicy's tuned per-signature state.

    Shows, for the most-flushed signatures, the width EMA the policy has
    converged to and the per-signature min-size/timeout it derived —
    ``snapshot()`` keys are batch signatures whose first element is the
    op type.
    """
    from repro.runtime.batching import AdaptiveBatchPolicy

    if not isinstance(policy, AdaptiveBatchPolicy):
        return f"policy: fixed (min={policy.min_batch}, " \
               f"timeout={policy.flush_timeout * 1e3:.2f} ms)"
    rows = sorted(policy.snapshot().items(),
                  key=lambda kv: -kv[1]["flushes"])
    lines = ["adaptive flush policy (per-signature tuned state)"]
    if not rows:
        lines.append("  (no flushes observed yet)")
    for signature, state in rows[:max_rows]:
        op_type = signature[0] if isinstance(signature, tuple) else signature
        lines.append(
            f"  {op_type:<22} flushes={state['flushes']:<6d} "
            f"width_ema={state['width_ema']:6.1f}  "
            f"min={state['min_batch']:<3d} "
            f"timeout={state['timeout'] * 1e3:.2f} ms")
    if len(rows) > max_rows:
        lines.append(f"  ... {len(rows) - max_rows} more signatures")
    return "\n".join(lines)


def format_latency(stats, title: str = "request latency") -> str:
    """Render a serving run's per-request latency distribution.

    ``stats`` is a :class:`~repro.runtime.stats.RunStats` filled by a
    :class:`~repro.runtime.server.RecursiveServer` session: one row per
    component (time-in-queue, time-in-engine, end-to-end) with
    p50/p95/p99/mean/max in milliseconds.  The queue row is the admission
    signal — a wave-synchronized server piles queue time onto every
    request admitted behind a wave tail, a continuous server keeps it near
    the arrival jitter.
    """
    summary = stats.latency_summary()
    if not summary:
        return f"{title}: (no requests completed)"
    lines = [f"{title} (ms): {summary['requests']} requests, "
             f"{summary['rejected']} rejected"]
    header = f"  {'component':<10}" + "".join(
        f"{c:>9}" for c in ("p50", "p95", "p99", "mean", "max"))
    lines.append(header)
    for component in ("queue", "engine", "total"):
        row = summary[component]
        lines.append(f"  {component:<10}" + "".join(
            f"{row[k] * 1e3:9.3f}"
            for k in ("p50", "p95", "p99", "mean", "max")))
    return "\n".join(lines)


def ascii_series(title: str, series: dict[str, dict], width: int = 60,
                 height: int = 12) -> str:
    """Very small ASCII plot: one char per series, x sorted numerically."""
    lines = [title]
    all_x = sorted({x for s in series.values() for x in s})
    all_y = [y for s in series.values() for y in s.values()]
    if not all_y:
        return title + " (no data)"
    y_max = max(all_y) or 1.0
    for name, points in series.items():
        scaled = {x: points.get(x) for x in all_x}
        bars = []
        for x in all_x:
            y = scaled.get(x)
            bars.append("." if y is None
                        else str(min(9, int(round(9 * y / y_max)))))
        lines.append(f"  {name:<12} {''.join(bars)}")
    lines.append(f"  (scale: 9 = {y_max:.3g})")
    return "\n".join(lines)
