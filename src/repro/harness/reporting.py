"""Table/figure formatting and result persistence for the benchmarks."""

from __future__ import annotations

import json
import os
from typing import Any, Optional, Sequence

__all__ = ["format_table", "save_results", "results_dir", "ascii_series"]


def results_dir() -> str:
    """``results/`` at the repository root (created on demand)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(os.path.join(here, "..", "..", ".."))
    path = os.path.join(root, "results")
    os.makedirs(path, exist_ok=True)
    return path


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these)."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}" if abs(value) >= 10 else f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h)
              for i, h in enumerate(headers)]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(name: str, payload: dict) -> str:
    """Persist a bench's results as JSON under results/."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=float)
    return path


def ascii_series(title: str, series: dict[str, dict], width: int = 60,
                 height: int = 12) -> str:
    """Very small ASCII plot: one char per series, x sorted numerically."""
    lines = [title]
    all_x = sorted({x for s in series.values() for x in s})
    all_y = [y for s in series.values() for y in s.values()]
    if not all_y:
        return title + " (no data)"
    y_max = max(all_y) or 1.0
    for name, points in series.items():
        scaled = {x: points.get(x) for x in all_x}
        bars = []
        for x in all_x:
            y = scaled.get(x)
            bars.append("." if y is None
                        else str(min(9, int(round(9 * y / y_max)))))
        lines.append(f"  {name:<12} {''.join(bars)}")
    lines.append(f"  (scale: 9 = {y_max:.3g})")
    return "\n".join(lines)
