"""Uniform runners for the four execution strategies the paper compares.

Every runner exposes ``train_step(batch) -> (loss, virtual_seconds)`` and
``infer_step(batch) -> (root_logits, virtual_seconds)`` so the throughput
harness can treat Recursive / Iterative / Unrolling / Folding identically.

* Recursive and Iterative build their graph **once per batch size** and
  reuse it every step (the embedded-control-flow advantage).
* Unrolling rebuilds a fresh graph **every step** (PyTorch-style); its
  virtual time includes per-op graph-construction cost and it executes
  with a single-worker eager profile.
* Folding runs the numpy dynamic-batching executor under the GPU profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.baselines.folding import FoldingExecutor
from repro.data.batching import TreeBatch
from repro.nn.optimizers import Adagrad
from repro.nn.trainer import Trainer
from repro.runtime.batching import BatchPolicy
from repro.runtime.cost_model import CostModel, client_eager, testbed_cpu
from repro.runtime.session import Session

__all__ = ["RunnerConfig", "RecursiveRunner", "BatchedRecursiveRunner",
           "IterativeRunner", "UnrolledRunner", "FoldingRunner",
           "make_runner"]

#: Paper testbed: 2 x 18-core Xeon.
PAPER_WORKERS = 36
#: Client-side graph construction cost per op for the unrolling baseline.
BUILD_COST_PER_OP = 9e-6


@dataclass
class RunnerConfig:
    num_workers: int = PAPER_WORKERS
    cost_model: Optional[CostModel] = None
    scheduler: str = "fifo"
    #: executor backend name, resolved through the runtime executor
    #: registry ("event" | "threaded" | "workerpool" | any registered
    #: backend).  The virtual-time paper figures use "event".
    engine: str = "event"
    learning_rate: float = 0.05
    #: cross-instance dynamic micro-batching in the engines: ``False``,
    #: ``True`` (fixed flush policy) or ``"adaptive"`` (per-signature
    #: adaptive flush policy — covers the training path: backward frames,
    #: gradient kernels and bulk value-cache traffic all coalesce)
    batching: "bool | str" = False
    batch_policy: Optional[BatchPolicy] = None

    def model_for(self):
        return self.cost_model or testbed_cpu()


class _GraphRunner:
    """Shared logic for runners with a pre-built reusable graph."""

    builder = ""
    kind = ""

    def __init__(self, model, batch_size: int,
                 config: Optional[RunnerConfig] = None, train: bool = True):
        self.model = model
        self.batch_size = batch_size
        self.config = config or RunnerConfig()
        self.built = getattr(model, self.builder)(batch_size)
        session_kwargs = dict(num_workers=self.config.num_workers,
                              cost_model=self.config.model_for(),
                              scheduler=self.config.scheduler,
                              engine=self.config.engine,
                              batching=self.config.batching,
                              batch_policy=self.config.batch_policy)
        self.trainer = None
        if train:
            self.trainer = Trainer(self.built.graph, self.built.loss,
                                   Adagrad(self.config.learning_rate),
                                   model.runtime,
                                   session_kwargs=session_kwargs)
            self.infer_session = self.trainer.session
        else:
            self.infer_session = Session(self.built.graph, model.runtime,
                                         record=False, **session_kwargs)

    def train_step(self, batch: TreeBatch) -> tuple[float, float]:
        loss = self.trainer.step(self.built.feed_dict(batch))
        return loss, self.trainer.last_step_stats.virtual_time

    def infer_step(self, batch: TreeBatch) -> tuple[np.ndarray, float]:
        logits = self.infer_session.run(self.built.root_logits,
                                        self.built.feed_dict(batch),
                                        record=False)
        return logits, self.infer_session.last_stats.virtual_time


class RecursiveRunner(_GraphRunner):
    """The paper's approach: recursive SubGraph + InvokeOps."""

    builder = "build_recursive"
    kind = "Recursive"


class BatchedRecursiveRunner(RecursiveRunner):
    """Recursive execution with cross-instance dynamic micro-batching.

    Same graph and values as :class:`RecursiveRunner` — the engines fuse
    same-signature ready ops from concurrent frames into vectorized kernel
    calls, closing the throughput gap to Fold-style dynamic batching while
    keeping the recursive programming model.  Training steps batch too
    (backward frame spawns, gradient kernels, bulk value-cache traffic);
    the adaptive per-signature flush policy is the default so bucket
    min-sizes and timeouts tune themselves to the workload.
    """

    kind = "BatchedRecursive"

    def __init__(self, model, batch_size: int,
                 config: Optional[RunnerConfig] = None, train: bool = True):
        config = replace(config) if config is not None else RunnerConfig()
        if not config.batching:
            config.batching = "adaptive"
        super().__init__(model, batch_size, config, train=train)


class IterativeRunner(_GraphRunner):
    """Embedded-control-flow baseline: batched topological while_loop."""

    builder = "build_iterative"
    kind = "Iterative"


class UnrolledRunner:
    """Static-unrolling baseline: a fresh graph per batch, eager profile."""

    kind = "Unrolling"

    def __init__(self, model, batch_size: int,
                 config: Optional[RunnerConfig] = None, train: bool = True):
        self.model = model
        self.batch_size = batch_size
        self.config = config or RunnerConfig()
        self.cost_model = client_eager()
        self.optimizer = Adagrad(self.config.learning_rate)

    def _session_kwargs(self) -> dict:
        # Eager execution: a single client-side stream of ops.
        return dict(num_workers=1, cost_model=self.cost_model)

    def train_step(self, batch: TreeBatch) -> tuple[float, float]:
        built = self.model.build_unrolled(batch)
        build_time = built.build_op_count * BUILD_COST_PER_OP
        trainer = Trainer(built.graph, built.loss, self.optimizer,
                          self.model.runtime,
                          session_kwargs=self._session_kwargs())
        loss = trainer.step({})
        return loss, build_time + trainer.last_step_stats.virtual_time

    def infer_step(self, batch: TreeBatch) -> tuple[np.ndarray, float]:
        built = self.model.build_unrolled(batch)
        build_time = built.build_op_count * BUILD_COST_PER_OP
        session = Session(built.graph, self.model.runtime, record=False,
                          **self._session_kwargs())
        logits = session.run(built.root_logits)
        return logits, build_time + session.last_stats.virtual_time


class FoldingRunner:
    """TensorFlow-Fold-style dynamic batching on the GPU profile."""

    kind = "Folding"

    def __init__(self, model, batch_size: int,
                 config: Optional[RunnerConfig] = None, train: bool = True):
        self.model = model
        self.batch_size = batch_size
        self.config = config or RunnerConfig()
        self.executor = FoldingExecutor(model)
        self.optimizer = Adagrad(self.config.learning_rate)

    def train_step(self, batch: TreeBatch) -> tuple[float, float]:
        loss, _, vtime = self.executor.train_step(batch, self.optimizer)
        return loss, vtime

    def infer_step(self, batch: TreeBatch) -> tuple[np.ndarray, float]:
        _, logits, vtime = self.executor.infer_step(batch)
        return logits, vtime


_RUNNERS = {"Recursive": RecursiveRunner,
            "BatchedRecursive": BatchedRecursiveRunner,
            "Iterative": IterativeRunner,
            "Unrolling": UnrolledRunner, "Folding": FoldingRunner}


def make_runner(kind: str, model, batch_size: int,
                config: Optional[RunnerConfig] = None, train: bool = True):
    try:
        cls = _RUNNERS[kind]
    except KeyError:
        raise ValueError(f"unknown runner kind {kind!r}; "
                         f"choose from {sorted(_RUNNERS)}") from None
    return cls(model, batch_size, config, train=train)
