"""Serving drivers: streaming (continuous-batching) and wave-synchronized.

The "millions of users" scenario.  The recursive programming model gives
serving for free: a request is one root ``InvokeOp`` instance of the
model's recursive graph, and concurrent requests' inner operations
interleave in one ready queue where the cross-instance micro-batching
scheduler (``batching=True``) fuses same-shape work from unrelated trees.

**Wave vs. continuous admission.**  The original driver ran rigid
*waves*: admit N requests, wait for all N to finish, admit the next N.
Every wave tail starves the coalescer — while the last straggler tree
finishes, the ready queue empties, fused batch widths collapse, and
workers idle even though new requests are already queued.  The streaming
driver (:func:`serve_stream`) instead runs an open-loop request stream
through a :class:`~repro.runtime.server.RecursiveServer`, which admits a
queued request the moment an in-flight slot frees (*continuous
batching*): new instances' ops fuse with in-flight ones immediately, so
the engine never sees a wave tail.

The knobs (see :class:`~repro.runtime.server.RecursiveServer`):

* ``max_in_flight`` — admission control: concurrent root instances in
  the engine.  Equal concurrency is what makes wave vs. continuous a
  fair comparison.
* ``queue_cap`` — backpressure: requests arriving onto a full queue are
  rejected (counted, surfaced via ``ServingResult.rejected``).
* ``arrival_rate`` — open-loop Poisson arrivals (requests per engine
  second); ``None`` means a burst backlog (all requests arrive at t=0).
* ``admission`` — ``"continuous"`` or ``"wave"`` (the legacy baseline).

Determinism: request streams are seeded (:func:`poisson_request_stream`)
and the event engine is a deterministic simulator, so a fixed seed gives
bit-identical per-request results *and* identical virtual-time latency
distributions run over run.  Per-request outputs are keyed by request id
in ``ServingResult.request_logits`` and are bit-identical to a one-shot
``Session.run`` of the same tree.

:func:`serve_concurrent` / :func:`compare_batching` are kept as thin
compatibility wrappers (wave-synchronized, burst arrivals) over the same
server; ``benchmarks/bench_serving.py`` records the wave-vs-continuous
baseline into ``BENCH_serving.json``.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.data.batching import batch_trees
from repro.runtime.batching import BatchPolicy, QueueAwareBatchPolicy
from repro.runtime.cost_model import CostModel
from repro.runtime.session import Session
from repro.runtime.stats import RunStats

__all__ = ["ServingResult", "SoakResult", "RequestStream",
           "poisson_request_stream", "burst_request_stream", "serve_stream",
           "compare_admission", "serve_concurrent", "compare_batching",
           "run_soak"]


# -- request streams -----------------------------------------------------------


@dataclass(frozen=True)
class RequestStream:
    """A deterministic open-loop request arrival plan.

    ``arrivals`` is a time-sorted tuple of ``(arrival_time, tree_index)``
    pairs: under the event engine the times are virtual seconds at which
    the request enters the server queue; under the threaded engine they
    are wall-clock offsets the driver replays with real sleeps.
    """

    arrivals: tuple
    seed: int
    rate: Optional[float] = None   # requests/second; None = burst at t=0

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)


def poisson_request_stream(num_requests: int, rate: float, pool_size: int,
                           seed: int = 0) -> RequestStream:
    """Seeded Poisson-process arrivals over a pool of ``pool_size`` trees.

    Inter-arrival gaps are exponential with mean ``1/rate``; tree indices
    are uniform over the pool.  Both are drawn from one
    ``np.random.default_rng(seed)``, so the stream — and therefore every
    serving benchmark driven by it — is reproducible run-to-run.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate <= 0:
        raise ValueError("rate must be positive (requests per second)")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=num_requests)
    times = np.cumsum(gaps) - gaps[0]   # first request arrives at t=0
    indices = rng.integers(0, pool_size, size=num_requests)
    return RequestStream(arrivals=tuple(zip(times.tolist(),
                                            (int(i) for i in indices))),
                         seed=seed, rate=rate)


def burst_request_stream(num_requests: int, pool_size: int,
                         seed: int = 0) -> RequestStream:
    """All requests arrive at t=0 (a closed backlog)."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, pool_size, size=num_requests)
    return RequestStream(arrivals=tuple((0.0, int(i)) for i in indices),
                         seed=seed, rate=None)


# -- results -------------------------------------------------------------------


@dataclass
class ServingResult:
    """Aggregate + per-request statistics of one serving run."""

    mode: str                 # admission mode: "continuous" | "wave"
    concurrency: int          # max_in_flight admission cap
    instances: int            # requests served to completion
    virtual_seconds: float    # engine-clock makespan of the session
    batching: bool
    stats: RunStats = field(default_factory=RunStats)
    #: per-request root logits keyed by request id (submission order);
    #: each value is the ``[1, classes]`` output of that request's tree
    request_logits: dict = field(default_factory=dict)
    #: per-request end-to-end latency keyed by request id (completed
    #: requests only — dropped requests produce no latency sample)
    request_latencies: dict = field(default_factory=dict)
    rejected: int = 0         # requests shed at admission
    cancelled: int = 0        # requests cancelled by the client
    timed_out: int = 0        # requests dropped by deadline enforcement
    deadline_misses: int = 0  # timed-out + completed-after-deadline
    goodput: int = 0          # completions that met their deadline
    waves: int = 0            # wave count (legacy wave driver only)

    @classmethod
    def from_server(cls, server, *, mode: str, concurrency: int,
                    batching: bool) -> "ServingResult":
        """Collect one drained server session's per-request bookkeeping.

        The single place the harness reads tickets back: per-request
        logits keyed by request id, shed/cancel/miss counts, and the
        session-cumulative stats (whose latency samples the server
        recorded per ticket via
        :meth:`~repro.runtime.stats.RunStats.note_ticket`).  With
        ``keep_tickets=False`` the ticket list is empty (a long-lived
        server drops completed requests), so ``request_logits`` is empty
        while the counters and latency reservoir remain exact.
        """
        stats = server.stats
        request_logits = {t.request_id: t.value for t in server.tickets
                          if t.error is None and t.value is not None}
        request_latencies = {t.request_id: t.latency for t in server.tickets
                             if t.latency is not None}
        return cls(mode=mode, concurrency=concurrency,
                   instances=server.completed,
                   virtual_seconds=stats.virtual_time,
                   batching=batching, stats=stats,
                   request_logits=request_logits,
                   request_latencies=request_latencies,
                   rejected=server.rejected,
                   cancelled=server.cancelled,
                   timed_out=server.timed_out,
                   deadline_misses=stats.deadline_misses,
                   goodput=stats.goodput_requests)

    @property
    def throughput(self) -> float:
        """Served instances per engine-clock second."""
        return self.instances / self.virtual_seconds

    @property
    def goodput_rate(self) -> float:
        """Deadline-meeting completions per engine-clock second."""
        return self.goodput / self.virtual_seconds

    @property
    def logits(self) -> Optional[np.ndarray]:
        """All served requests' root logits stacked in request-id order.

        Row ``k`` is the logits of the ``k``-th *served* request (rejected
        requests have no output and are skipped); use
        ``request_logits`` for explicit per-request keying.
        """
        if not self.request_logits:
            return None
        return np.concatenate([self.request_logits[rid]
                               for rid in sorted(self.request_logits)],
                              axis=0)

    def latency_summary(self) -> dict:
        """p50/p95/p99 queue/engine/total latency (see RunStats)."""
        return self.stats.latency_summary()

    def summary(self) -> str:
        mode = "batched" if self.batching else "unbatched"
        dropped = ""
        if self.rejected:
            dropped += f" rejected={self.rejected}"
        if self.timed_out:
            dropped += f" timed_out={self.timed_out}"
        if self.cancelled:
            dropped += f" cancelled={self.cancelled}"
        if self.deadline_misses:
            dropped += (f" misses={self.deadline_misses}"
                        f" goodput={self.goodput}")
        lines = [f"serving[{mode}/{self.mode}] "
                 f"max_in_flight={self.concurrency} "
                 f"requests={self.instances}" + dropped
                 + f": {self.throughput:.1f} instances/s"]
        if self.stats.batches:
            lines.append(f"  fused kernels={self.stats.batches}  "
                         f"mean batch={self.stats.batch_efficiency:.1f}  "
                         f"max batch={self.stats.max_batch}")
        latency = self.latency_summary()
        if latency:
            total = latency["total"]
            queue = latency["queue"]
            lines.append(f"  latency p50={total['p50'] * 1e3:.3f} ms  "
                         f"p95={total['p95'] * 1e3:.3f} ms  "
                         f"p99={total['p99'] * 1e3:.3f} ms  "
                         f"(queue p95={queue['p95'] * 1e3:.3f} ms)")
        return "\n".join(lines)


# -- the streaming driver ------------------------------------------------------


def serve_stream(model, trees: Sequence, *,
                 num_requests: Optional[int] = None,
                 arrival_rate: Optional[float] = None,
                 stream: Optional[RequestStream] = None,
                 max_in_flight: int = 16,
                 queue_cap: Optional[int] = None,
                 admission: str = "continuous",
                 order: str = "edf", shedding: str = "cap",
                 queue_cost_cap: Optional[float] = None,
                 capacity_factor: Optional[float] = None,
                 deadline_slack: Union[None, float, Callable] = None,
                 enforce_deadlines: bool = True,
                 tenants: Optional[Sequence[str]] = None,
                 tenant_weights: Optional[dict] = None,
                 size_hints: bool = True,
                 keep_tickets: bool = True,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 num_workers: int = 36,
                 cost_model: Optional[CostModel] = None,
                 engine: str = "event", scheduler: str = "fifo",
                 seed: int = 0) -> ServingResult:
    """Serve an open-loop request stream through a streaming server.

    Each request is one tree served as a root instance of the model's
    per-request recursive graph (``build_recursive(1)``) — all requests
    share one graph, so their inner ops carry identical batch signatures
    and fuse across requests.  Provide either ``stream`` or
    ``num_requests`` (+ optional ``arrival_rate``; ``None`` = burst).

    SLO knobs (all forwarded to the server — see
    :class:`~repro.runtime.server.RecursiveServer`): ``order`` /
    ``shedding`` / ``queue_cost_cap`` / ``capacity_factor`` /
    ``tenant_weights`` / ``enforce_deadlines`` / ``keep_tickets``.
    ``deadline_slack`` attaches a deadline to every request — a float is
    a uniform arrival-relative timeout in engine seconds, a callable
    receives the request's tree and returns its slack (e.g. proportional
    to ``tree.num_nodes``).  ``tenants`` assigns requests to fair-queue
    lanes round-robin over the given names.  ``size_hints`` passes each
    tree's node count to the server's admission-time cost prediction.

    When ``batching`` is enabled and no explicit ``batch_policy`` is
    given, the queue-aware policy is installed: per-signature minimum
    batch sizes adapt on both engines, and on the threaded engine flush
    timeouts additionally track server load (the event engine flushes on
    wavefront drain, so timeouts never bind there).  Returns a
    :class:`ServingResult` with per-request logits and latency
    percentiles.
    """
    pool = list(trees)
    if stream is None:
        if num_requests is None:
            raise ValueError("provide either stream= or num_requests=")
        if arrival_rate is not None:
            stream = poisson_request_stream(num_requests, arrival_rate,
                                            len(pool), seed)
        else:
            stream = burst_request_stream(num_requests, len(pool), seed)
    if batching and batch_policy is None:
        batch_policy = QueueAwareBatchPolicy()

    built = model.build_recursive(1)
    session = Session(built.graph, model.runtime, num_workers=num_workers,
                      cost_model=cost_model, record=False,
                      scheduler=scheduler, engine=engine, batching=batching,
                      batch_policy=batch_policy)
    feeds = {idx: built.feed_dict(batch_trees([pool[idx]]))
             for idx in {i for _, i in stream.arrivals}}

    def slo_kwargs(rid, idx):
        kwargs = {}
        if deadline_slack is not None:
            slack = (deadline_slack(pool[idx]) if callable(deadline_slack)
                     else deadline_slack)
            kwargs["timeout"] = slack
        if tenants:
            kwargs["tenant"] = tenants[rid % len(tenants)]
        if size_hints:
            kwargs["size_hint"] = pool[idx].num_nodes
        return kwargs

    with session.serve(max_in_flight=max_in_flight, queue_cap=queue_cap,
                       admission=admission, order=order, shedding=shedding,
                       queue_cost_cap=queue_cost_cap,
                       capacity_factor=capacity_factor,
                       tenant_weights=tenant_weights,
                       enforce_deadlines=enforce_deadlines,
                       keep_tickets=keep_tickets) as server:
        if engine == "event":
            for rid, (when, idx) in enumerate(stream.arrivals):
                server.submit(built.root_logits, feeds[idx], at=when,
                              **slo_kwargs(rid, idx))
        else:
            start = time.perf_counter()
            for rid, (when, idx) in enumerate(stream.arrivals):
                delay = when - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
                server.submit(built.root_logits, feeds[idx],
                              **slo_kwargs(rid, idx))
        server.drain()
    # read results after close(): wall-clock backends stamp the session
    # clock (stats.virtual_time) in end_serving
    return ServingResult.from_server(server, mode=admission,
                                     concurrency=max_in_flight,
                                     batching=batching)


def compare_admission(model, trees: Sequence, *,
                      stream: Optional[RequestStream] = None,
                      **kwargs) -> tuple[ServingResult, ServingResult]:
    """Serve one identical request stream wave-synchronized then
    continuously; returns ``(wave, continuous)``.

    Equal concurrency (same ``max_in_flight``), equal stream — the
    throughput ratio isolates the wave-tail starvation that continuous
    admission removes, and the per-request logits of the two runs must
    agree bit-for-bit.
    """
    kwargs.pop("admission", None)
    pool = list(trees)
    if stream is None:
        stream = poisson_request_stream(
            kwargs.pop("num_requests", 32),
            kwargs.pop("arrival_rate", None) or 1e9,
            len(pool), kwargs.get("seed", 0))
    wave = serve_stream(model, pool, stream=stream, admission="wave",
                        **kwargs)
    continuous = serve_stream(model, pool, stream=stream,
                              admission="continuous", **kwargs)
    return wave, continuous


# -- legacy wave drivers (compat wrappers over the server) ---------------------


def _sample_wave_indices(pool_size: int, concurrency: int, waves: int,
                         seed: int) -> list:
    """The legacy wave sampler: ``concurrency`` seeded draws per wave."""
    rng = np.random.default_rng(seed)
    replace = pool_size < concurrency
    indices: list[int] = []
    for _ in range(waves):
        indices.extend(int(i) for i in
                       rng.choice(pool_size, size=concurrency,
                                  replace=replace))
    return indices


def serve_concurrent(model, trees: Sequence, concurrency: int, *,
                     batching: bool = False,
                     batch_policy: Optional[BatchPolicy] = None,
                     num_workers: int = 36,
                     cost_model: Optional[CostModel] = None,
                     engine: str = "event", scheduler: str = "fifo",
                     waves: int = 1, seed: int = 0,
                     admission: str = "wave") -> ServingResult:
    """Serve ``waves`` waves of ``concurrency`` trees each (compat API).

    Thin wrapper over :func:`serve_stream`: the whole request backlog
    arrives at t=0 and is admitted wave-synchronized (``concurrency``
    requests at a time, next wave only when the engine is empty) — the
    legacy behaviour, now measured with per-request latency accounting.
    Pass ``admission="continuous"`` to serve the identical backlog with
    in-flight admission instead.
    """
    pool = list(trees)
    indices = _sample_wave_indices(len(pool), concurrency, waves, seed)
    stream = RequestStream(arrivals=tuple((0.0, i) for i in indices),
                           seed=seed, rate=None)
    result = serve_stream(model, pool, stream=stream,
                          max_in_flight=concurrency, admission=admission,
                          batching=batching, batch_policy=batch_policy,
                          num_workers=num_workers, cost_model=cost_model,
                          engine=engine, scheduler=scheduler, seed=seed)
    result.waves = waves
    return result


def compare_batching(model, trees: Sequence, concurrency: int,
                     **kwargs) -> tuple[ServingResult, ServingResult]:
    """Serve identical waves unbatched then batched (compat API).

    Returns ``(unbatched, batched)``; the two results carry identical
    request streams, so their per-request logits must agree bit-for-bit
    and the throughput ratio is the micro-batching speedup.
    """
    kwargs.pop("batching", None)
    unbatched = serve_concurrent(model, trees, concurrency,
                                 batching=False, **kwargs)
    batched = serve_concurrent(model, trees, concurrency,
                               batching=True, **kwargs)
    return unbatched, batched


# -- sustained soak ------------------------------------------------------------


def _rss_kb() -> Optional[int]:
    """Current resident set size in KiB (Linux; None elsewhere)."""
    try:
        with open("/proc/self/statm") as f:
            resident_pages = int(f.read().split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return resident_pages * os.sysconf("SC_PAGESIZE") // 1024


@dataclass
class SoakResult:
    """One sustained-soak serving run: SLO counters + memory profile.

    ``rss_samples_kb`` holds one post-GC resident-set sample per
    submission chunk; a healthy long-lived server plateaus (later
    samples stop growing) because with ``keep_tickets=False`` completed
    requests — tickets, feeds, values — are dropped as they finish and
    the stats reservoir is bounded.
    """

    requests: int
    completed: int
    rejected: int
    timed_out: int
    cancelled: int
    deadline_misses: int
    goodput: int
    virtual_seconds: float
    wall_seconds: float
    chunk: int
    latency: dict
    rss_samples_kb: list = field(default_factory=list)

    @property
    def rss_growth(self) -> Optional[float]:
        """Late-half RSS growth ratio: max(last half) / max(first half).

        ~1.0 means the plateau held; use a small tolerance when
        asserting (the allocator may still be warming early on).
        """
        samples = [s for s in self.rss_samples_kb if s]
        if len(samples) < 4:
            return None
        half = len(samples) // 2
        return max(samples[half:]) / max(samples[:half])

    def summary(self) -> str:
        lines = [f"soak: {self.requests} requests "
                 f"({self.completed} completed, {self.rejected} shed, "
                 f"{self.timed_out} timed out, {self.cancelled} cancelled) "
                 f"in {self.virtual_seconds:.2f} engine s / "
                 f"{self.wall_seconds:.1f} wall s; goodput {self.goodput}"]
        if self.rss_samples_kb:
            lines.append(f"  rss first={self.rss_samples_kb[0]} KiB "
                         f"last={self.rss_samples_kb[-1]} KiB "
                         f"growth={self.rss_growth and round(self.rss_growth, 3)}")
        total = self.latency.get("total", {})
        if total:
            lines.append("  latency p50={p50:.6f}s p99={p99:.6f}s "
                         "p99.9={p999:.6f}s".format(
                             p50=total.get("p50", 0.0),
                             p99=total.get("p99", 0.0),
                             p999=total.get("p99.9", 0.0)))
        return "\n".join(lines)


def run_soak(model, trees: Sequence, *, num_requests: int,
             chunk: int = 2000, arrival_rate: float = 4000.0,
             max_in_flight: int = 16, shedding: str = "cost",
             queue_cost_cap: Optional[float] = None,
             deadline_slack: Union[None, float, Callable] = None,
             cancel_every: int = 0, batching: bool = True,
             num_workers: int = 36, seed: int = 0) -> SoakResult:
    """Sustained-soak a long-lived server: O(10^5) requests in chunks.

    One server session (event engine, ``keep_tickets=False``) serves
    ``num_requests`` requests submitted in chunks of ``chunk``; the
    server drains between chunks (server reuse across drains) so at most
    one chunk's tickets are ever alive, and a post-GC RSS sample is taken
    per chunk — the bounded-memory evidence.  Tree sizes follow the
    treebank's heavy-tailed length distribution.  ``cancel_every`` > 0
    schedules a client cancellation for every n-th request shortly after
    its arrival, exercising the mid-flight unwind path at scale.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    pool = list(trees)
    rng = np.random.default_rng(seed)
    built = model.build_recursive(1)
    session = Session(built.graph, model.runtime, num_workers=num_workers,
                      record=False, engine="event", batching=batching,
                      batch_policy=QueueAwareBatchPolicy() if batching
                      else None)
    feeds = {idx: built.feed_dict(batch_trees([tree]))
             for idx, tree in enumerate(pool)}
    engine = session._engine
    submitted = 0
    rss_samples = []
    wall_start = time.perf_counter()
    with session.serve(max_in_flight=max_in_flight, shedding=shedding,
                       queue_cost_cap=queue_cost_cap,
                       keep_tickets=False) as server:
        while submitted < num_requests:
            n = min(chunk, num_requests - submitted)
            base = engine.now
            offsets = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n))
            indices = rng.integers(0, len(pool), size=n)
            for k in range(n):
                idx = int(indices[k])
                at = base + float(offsets[k])
                slack = (deadline_slack(pool[idx])
                         if callable(deadline_slack) else deadline_slack)
                ticket = server.submit(built.root_logits, feeds[idx],
                                       at=at, timeout=slack,
                                       size_hint=pool[idx].num_nodes)
                if cancel_every and (submitted + k) % cancel_every == 0:
                    engine.schedule(at + 1e-5, ticket.cancel)
            server.drain()
            submitted += n
            gc.collect()
            rss_samples.append(_rss_kb())
        stats = server.stats
        latency = stats.latency_summary()
        result = SoakResult(requests=submitted,
                            completed=server.completed,
                            rejected=server.rejected,
                            timed_out=server.timed_out,
                            cancelled=server.cancelled,
                            deadline_misses=stats.deadline_misses,
                            goodput=stats.goodput_requests,
                            virtual_seconds=stats.virtual_time,
                            wall_seconds=time.perf_counter() - wall_start,
                            chunk=chunk, latency=latency,
                            rss_samples_kb=rss_samples)
    return result
