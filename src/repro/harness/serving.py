"""Concurrent-inference serving driver (the "millions of users" scenario).

The recursive programming model gives the serving story for free: a batch
of independent requests is just many root ``InvokeOp`` instances executing
concurrently, their inner operations interleaving in one ready queue.
This driver feeds N trees as concurrent root instances so the
cross-instance micro-batching scheduler (``batching=True``) has same-shape
work from *different requests* to fuse — embedding lookups and cell
matmuls of unrelated trees coalesce whenever they are ready together.

:func:`serve_concurrent` measures one configuration;
:func:`compare_batching` runs the unbatched/batched pair on identical
request waves and reports the speedup, which is what
``benchmarks/bench_fig8_inference_throughput.py`` records as the
perf baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.data.batching import batch_trees
from repro.runtime.batching import BatchPolicy
from repro.runtime.cost_model import CostModel
from repro.runtime.session import Session
from repro.runtime.stats import RunStats

__all__ = ["ServingResult", "serve_concurrent", "compare_batching"]


@dataclass
class ServingResult:
    """Aggregate statistics of one simulated serving run."""

    concurrency: int          # concurrent root instances per wave
    waves: int                # request waves served
    instances: int            # total trees served
    virtual_seconds: float    # simulated testbed time
    batching: bool
    stats: RunStats = field(default_factory=RunStats)
    logits: Optional[np.ndarray] = None   # last wave's root logits

    @property
    def throughput(self) -> float:
        """Instances per simulated second."""
        return self.instances / self.virtual_seconds

    def summary(self) -> str:
        mode = "batched" if self.batching else "unbatched"
        lines = [f"serving[{mode}] concurrency={self.concurrency} "
                 f"waves={self.waves}: {self.throughput:.1f} instances/s"]
        if self.stats.batches:
            lines.append(f"  fused kernels={self.stats.batches}  "
                         f"mean batch={self.stats.batch_efficiency:.1f}  "
                         f"max batch={self.stats.max_batch}")
        return "\n".join(lines)


def _sample_waves(trees: Sequence, concurrency: int, waves: int,
                  seed: int) -> list:
    rng = np.random.default_rng(seed)
    pool = list(trees)
    replace = len(pool) < concurrency
    return [batch_trees([pool[i] for i in
                         rng.choice(len(pool), size=concurrency,
                                    replace=replace)])
            for _ in range(waves)]


def serve_concurrent(model, trees: Sequence, concurrency: int, *,
                     batching: bool = False,
                     batch_policy: Optional[BatchPolicy] = None,
                     num_workers: int = 36,
                     cost_model: Optional[CostModel] = None,
                     engine: str = "event", scheduler: str = "fifo",
                     waves: int = 1, seed: int = 0) -> ServingResult:
    """Serve ``waves`` request waves of ``concurrency`` trees each.

    Each wave runs ``concurrency`` concurrent root instances of the
    model's recursive graph through one session; virtual time accumulates
    across waves.  Returns the aggregate :class:`ServingResult`.
    """
    built = model.build_recursive(concurrency)
    session = Session(built.graph, model.runtime, num_workers=num_workers,
                      cost_model=cost_model, record=False,
                      scheduler=scheduler, engine=engine, batching=batching,
                      batch_policy=batch_policy)
    result = ServingResult(concurrency=concurrency, waves=waves,
                           instances=0, virtual_seconds=0.0,
                           batching=batching)
    for wave in _sample_waves(trees, concurrency, waves, seed):
        logits = session.run(built.root_logits, built.feed_dict(wave),
                             record=False)
        result.instances += wave.size
        result.virtual_seconds += session.last_stats.virtual_time
        result.stats.merge(session.last_stats)
        result.logits = logits
    return result


def compare_batching(model, trees: Sequence, concurrency: int,
                     **kwargs) -> tuple[ServingResult, ServingResult]:
    """Serve identical waves unbatched then batched.

    Returns ``(unbatched, batched)``; the two results carry identical
    request streams, so their logits must agree bit-for-bit and the
    throughput ratio is the micro-batching speedup.
    """
    kwargs.pop("batching", None)
    unbatched = serve_concurrent(model, trees, concurrency,
                                 batching=False, **kwargs)
    batched = serve_concurrent(model, trees, concurrency,
                               batching=True, **kwargs)
    return unbatched, batched
