"""Throughput measurement (instances/second in simulated testbed time)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.batching import TreeBatch, batch_trees

__all__ = ["ThroughputResult", "measure_throughput", "measure_latency_curve"]


@dataclass
class ThroughputResult:
    kind: str
    mode: str                 # "train" | "infer"
    batch_size: int
    instances: int
    virtual_seconds: float

    @property
    def throughput(self) -> float:
        return self.instances / self.virtual_seconds


def _make_batches(trees: Sequence, batch_size: int, steps: int,
                  seed: int = 0) -> list[TreeBatch]:
    rng = np.random.default_rng(seed)
    pool = list(trees)
    batches = []
    for _ in range(steps):
        idx = rng.choice(len(pool), size=batch_size, replace=False)
        batches.append(batch_trees([pool[i] for i in idx]))
    return batches


def measure_throughput(runner, trees: Sequence, batch_size: int,
                       mode: str = "train", steps: int = 3,
                       warmup: int = 1, seed: int = 0) -> ThroughputResult:
    """Run warmup + measured steps over sampled batches."""
    step_fn = runner.train_step if mode == "train" else runner.infer_step
    batches = _make_batches(trees, batch_size, warmup + steps, seed)
    for batch in batches[:warmup]:
        step_fn(batch)
    total_time = 0.0
    total_instances = 0
    for batch in batches[warmup:]:
        _, vtime = step_fn(batch)
        total_time += vtime
        total_instances += batch.size
    return ThroughputResult(kind=runner.kind, mode=mode,
                            batch_size=batch_size,
                            instances=total_instances,
                            virtual_seconds=total_time)


def measure_latency_curve(runner, trees_by_length: dict[int, list],
                          mode: str = "train") -> dict[int, float]:
    """Per-instance processing time (seconds) keyed by sentence length
    (Figure 11; batch size 1)."""
    step_fn = runner.train_step if mode == "train" else runner.infer_step
    curve = {}
    for length, trees in sorted(trees_by_length.items()):
        times = []
        for tree in trees:
            _, vtime = step_fn(batch_trees([tree]))
            times.append(vtime)
        curve[length] = float(np.mean(times))
    return curve
