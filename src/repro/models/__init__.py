"""The paper's evaluation applications."""

from .base import SentimentModelBase
from .common import BuiltModel, ModelConfig, accuracy_from_logits
from .rntn import RNTNSentiment
from .td_tree_lstm import BuiltGenerator, TDTreeLSTM
from .tree_lstm import TreeLSTMSentiment, tree_lstm_config
from .tree_rnn import TreeRNNSentiment

__all__ = ["SentimentModelBase", "BuiltModel", "ModelConfig",
           "accuracy_from_logits", "RNTNSentiment", "BuiltGenerator",
           "TDTreeLSTM", "TreeLSTMSentiment", "tree_lstm_config",
           "TreeRNNSentiment"]
