"""The three sentiment-model implementations the paper compares.

One base class builds a model three ways over the *same* parameters:

* :meth:`build_recursive` — the paper's contribution: a recursive
  ``SubGraph`` whose body handles one tree node, with a conditional
  separating the leaf base case from the internal recursive case (the
  Figure 2 program, generalized over cells).  Independent subtrees execute
  in parallel.
* :meth:`build_iterative` — the embedded-control-flow baseline (Figure 1):
  a ``while_loop`` over topologically-indexed nodes with TensorArray
  state; strictly sequential within an instance, parallel only across the
  batch.
* :meth:`build_unrolled` — the non-embedded-control-flow baseline
  (PyTorch-style): a fresh static graph constructed per batch, one set of
  ops per tree node, rebuilt every step.

Because all three read the same variables and compute the same math, their
losses and gradients agree to float tolerance — the equivalence tests rely
on this, and it mirrors the paper's observation that the implementations
are numerically identical (Section 6.2, convergence).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import ops
from repro.core.subgraph import SubGraph
from repro.data.batching import TreeBatch
from repro.graph import dtypes
from repro.graph.graph import Graph
from repro.nn.layers import Dense, Embedding
from repro.nn.losses import node_cross_entropy
from repro.ops.control_flow import cond, while_loop
from repro.ops.tensor_array import ta_create, ta_read, ta_write
from repro.runtime.session import Runtime, default_runtime

from .common import BuiltModel, ModelConfig, make_batch_placeholders

__all__ = ["SentimentModelBase"]


class SentimentModelBase:
    """A tree-structured sentiment model over a composition cell."""

    name = "sentiment"

    def __init__(self, config: ModelConfig, runtime: Optional[Runtime] = None):
        self.config = config
        self.runtime = runtime or default_runtime()
        self.rng = np.random.default_rng(config.seed)
        self.embedding = Embedding(f"{self.name}/embed", config.vocab_size,
                                   self._embedding_dim(), self.rng,
                                   runtime=self.runtime)
        self.cell = self._make_cell()
        self.classifier = Dense(f"{self.name}/cls", config.hidden,
                                config.classes, self.rng,
                                runtime=self.runtime)

    # subclasses configure these ------------------------------------------------

    def _make_cell(self):
        raise NotImplementedError

    def _embedding_dim(self) -> int:
        return self.config.hidden

    # ---------------------------------------------------------------------------

    @property
    def state_arity(self) -> int:
        return self.cell.state_arity

    @property
    def variables(self):
        return (self.embedding.variables + self.cell.variables
                + self.classifier.variables)

    def _leaf_state(self, word):
        """Embedding lookup + cell leaf transform; ``word`` is a scalar."""
        x = ops.reshape(self.embedding.lookup(word),
                        (1, self._embedding_dim()))
        return self.cell.leaf(x)

    def _node_output(self, state, label):
        logits = self.classifier(state[0])
        return node_cross_entropy(logits, label)

    # -- recursive implementation (the paper's approach) -------------------------

    def build_recursive(self, batch_size: int) -> BuiltModel:
        """Figure 2: one recursive SubGraph, invoked once per batch root."""
        H = self.config.hidden
        arity = self.state_arity
        graph = Graph(f"{self.name}_recursive_b{batch_size}")
        with graph.as_default():
            ph = make_batch_placeholders(batch_size)
            state_specs = ([(dtypes.float32, (1, H))] * arity
                           + [(dtypes.float32, ())])

            with SubGraph(f"{self.name}_node") as node:
                b = node.input(dtypes.int32, (), name="b")
                idx = node.input(dtypes.int32, (), name="idx")
                node.declare_outputs(state_specs)
                words_b = ops.gather(ph["words"], b)
                children_b = ops.gather(ph["children"], b)
                labels_b = ops.gather(ph["labels"], b)
                leaf_flag = ops.gather(ops.gather(ph["is_leaf"], b), idx)
                label = ops.gather(labels_b, idx)

                def leaf_case():
                    state = self._leaf_state(ops.gather(words_b, idx))
                    return (*state, self._node_output(state, label))

                def internal_case():
                    pair = ops.gather(children_b, idx)
                    left = node(b, ops.gather(pair, 0))
                    right = node(b, ops.gather(pair, 1))
                    state = self.cell.internal(left[:arity], right[:arity])
                    loss = ops.add(self._node_output(state, label),
                                   ops.add(left[arity], right[arity]))
                    return (*state, loss)

                node.output(*cond(leaf_flag, leaf_case, internal_case,
                                  name="leaf_or_internal"))

            root_h = []
            instance_losses = []
            for b in range(batch_size):
                result = node(ops.constant(b), ops.gather(ph["root"], b))
                result = (result,) if arity + 1 == 1 else result
                subtree_loss = result[arity]
                n_b = ops.cast(ops.gather(ph["n_nodes"], b), dtypes.float32)
                instance_losses.append(ops.divide(subtree_loss, n_b))
                root_h.append(result[0])
            loss = ops.reduce_mean(ops.stack(instance_losses))
            root_logits = self.classifier(ops.concat(root_h, axis=0))
        return BuiltModel(graph=graph, batch_size=batch_size,
                          placeholders=ph, loss=loss,
                          root_logits=root_logits,
                          build_op_count=graph.num_operations)

    # -- iterative implementation (Figure 1 baseline) -----------------------------

    def build_iterative(self, batch_size: int) -> BuiltModel:
        """A single while_loop over topologically-indexed nodes.

        Like real embedded-control-flow implementations, the batch is
        processed *together*: iteration ``i`` computes node ``i`` of every
        instance as one batched cell application, evaluating both the leaf
        and the internal formula and merging them with an elementwise
        ``select``.  Execution is strictly sequential across node indices —
        no intra-tree parallelism — which is precisely the limitation the
        paper's recursive implementation removes.
        """
        H = self.config.hidden
        arity = self.state_arity
        graph = Graph(f"{self.name}_iterative_b{batch_size}")
        with graph.as_default():
            ph = make_batch_placeholders(batch_size)
            words_t = ops.transpose(ph["words"])          # [N, B]
            is_leaf_t = ops.transpose(ph["is_leaf"])      # [N, B]
            labels_t = ops.transpose(ph["labels"])        # [N, B]
            children_t = ops.transpose(ph["children"],
                                       perm=(1, 0, 2))    # [N, B, 2]
            n_nodes = ph["n_nodes"]
            n_max = ops.reduce_max(n_nodes)
            arrays = [ta_create(n_max, (batch_size, H), name=f"states_{k}")
                      for k in range(arity)]

            def loop_cond(i, *rest):
                return ops.less(i, n_max)

            def loop_body(i, *rest):
                tas, loss_vec = rest[:arity], rest[arity]
                words_i = ops.gather(words_t, i)          # [B]
                leaf_mask = ops.gather(is_leaf_t, i)      # [B] bool
                labels_i = ops.gather(labels_t, i)        # [B]
                pair = ops.gather(children_t, i)          # [B, 2]
                left_idx = ops.squeeze(ops.slice_(pair, (0, 0),
                                                  (-1, 1)), axis=1)
                right_idx = ops.squeeze(ops.slice_(pair, (0, 1),
                                                   (-1, 1)), axis=1)

                x = self.embedding.lookup(words_i)        # [B, D]
                leaf_state = self.cell.leaf(x)
                left = tuple(ops.ta_gather_rows(t, left_idx, dtypes.float32,
                                                (batch_size, H))
                             for t in tas)
                right = tuple(ops.ta_gather_rows(t, right_idx,
                                                 dtypes.float32,
                                                 (batch_size, H))
                              for t in tas)
                internal_state = self.cell.internal(left, right)
                mask = ops.expand_dims(leaf_mask, 1)      # [B, 1]
                state = tuple(ops.select(mask, ls, ns)
                              for ls, ns in zip(leaf_state, internal_state))
                logits = self.classifier(state[0])        # [B, C]
                ce = ops.softmax_cross_entropy_with_logits(logits, labels_i)
                valid = ops.cast(ops.less(i, n_nodes), dtypes.float32)
                written = tuple(ta_write(t, i, s)
                                for t, s in zip(tas, state))
                return (ops.add(i, 1), *written,
                        ops.add(loss_vec, ops.multiply(ce, valid)))

            final = while_loop(loop_cond, loop_body,
                               [ops.constant(0), *arrays,
                                ops.fill((batch_size,), 0.0)],
                               name="tree_loop")
            final_tas = final[1:1 + arity]
            loss_vec = final[1 + arity]
            n_f = ops.cast(n_nodes, dtypes.float32)
            loss = ops.reduce_mean(ops.divide(loss_vec, n_f))
            root_h = ops.ta_gather_rows(final_tas[0], ph["root"],
                                        dtypes.float32, (batch_size, H))
            root_logits = self.classifier(root_h)
        return BuiltModel(graph=graph, batch_size=batch_size,
                          placeholders=ph, loss=loss,
                          root_logits=root_logits,
                          build_op_count=graph.num_operations)

    # -- unrolled implementation (PyTorch-style baseline) --------------------------

    def build_unrolled(self, batch: TreeBatch) -> BuiltModel:
        """A fresh static graph for this specific batch of trees."""
        arity = self.state_arity
        graph = Graph(f"{self.name}_unrolled_b{batch.size}")
        with graph.as_default():
            root_h = []
            instance_losses = []
            for tree in batch.trees:
                def expand(tnode):
                    label = ops.constant(np.int32(tnode.label))
                    if tnode.is_leaf:
                        word = ops.constant(np.int32(tnode.word))
                        state = self._leaf_state(word)
                        return state, self._node_output(state, label)
                    left_state, left_loss = expand(tnode.left)
                    right_state, right_loss = expand(tnode.right)
                    state = self.cell.internal(left_state, right_state)
                    loss = ops.add(self._node_output(state, label),
                                   ops.add(left_loss, right_loss))
                    return state, loss

                state, subtree_loss = expand(tree.root)
                root_h.append(state[0])
                instance_losses.append(
                    ops.divide(subtree_loss, float(tree.num_nodes)))
            loss = ops.reduce_mean(ops.stack(instance_losses))
            root_logits = self.classifier(ops.concat(root_h, axis=0))
        return BuiltModel(graph=graph, batch_size=batch.size,
                          placeholders={}, loss=loss,
                          root_logits=root_logits,
                          build_op_count=graph.num_operations)
