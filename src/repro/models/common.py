"""Shared model plumbing: configs, placeholders, built-model handles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro import ops
from repro.data.batching import TreeBatch
from repro.graph import dtypes
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor

__all__ = ["ModelConfig", "BuiltModel", "make_batch_placeholders",
           "accuracy_from_logits"]


@dataclass
class ModelConfig:
    """Hyperparameters shared by the sentiment models.

    The paper uses each original paper's hyperparameters (e.g. TreeLSTM
    hidden 150); we scale dimensions down so the simulated testbed sweeps
    run in seconds while preserving the *relative* compute intensities
    (RNTN per-node compute >> TreeRNN; TreeLSTM larger state).
    """

    vocab_size: int = 200
    hidden: int = 32
    embed_dim: int = 32
    classes: int = 2
    seed: int = 3
    learning_rate: float = 0.05


@dataclass
class BuiltModel:
    """Handles to a constructed model graph."""

    graph: Graph
    batch_size: int
    placeholders: dict[str, Tensor]
    loss: Tensor
    root_logits: Tensor          # [B, classes]
    build_op_count: int = 0

    def feed_dict(self, batch: TreeBatch) -> dict:
        if batch.size != self.batch_size:
            raise ValueError(
                f"graph was built for batch size {self.batch_size}, got "
                f"{batch.size}")
        if not self.placeholders:
            return {}
        return {self.placeholders["words"]: batch.words,
                self.placeholders["children"]: batch.children,
                self.placeholders["is_leaf"]: batch.is_leaf,
                self.placeholders["labels"]: batch.labels,
                self.placeholders["n_nodes"]: batch.n_nodes,
                self.placeholders["root"]: batch.root}

    def shape_profiles(self, batch: TreeBatch) -> tuple:
        """Per-root tree shape signatures for the level-plan fast path.

        The recursive builders create one root ``Invoke`` per batch
        member in op-id order, so ``batch.profiles`` (one cached
        :func:`repro.data.trees.shape_profile_of` signature per tree,
        batch order) lines up with the call sites exactly — pass the
        result as ``Session.run(..., shape_profile=...)``.
        """
        if batch.size != self.batch_size:
            raise ValueError(
                f"graph was built for batch size {self.batch_size}, got "
                f"{batch.size}")
        return batch.profiles


def make_batch_placeholders(batch_size: int) -> dict[str, Tensor]:
    """Placeholders for a padded :class:`TreeBatch` (node dim is dynamic)."""
    return {
        "words": ops.placeholder(dtypes.int32, (batch_size, None), "words"),
        "children": ops.placeholder(dtypes.int32, (batch_size, None, 2),
                                    "children"),
        "is_leaf": ops.placeholder(dtypes.bool_, (batch_size, None),
                                   "is_leaf"),
        "labels": ops.placeholder(dtypes.int32, (batch_size, None),
                                  "labels"),
        "n_nodes": ops.placeholder(dtypes.int32, (batch_size,), "n_nodes"),
        "root": ops.placeholder(dtypes.int32, (batch_size,), "root"),
    }


def accuracy_from_logits(root_logits: np.ndarray,
                         batch: TreeBatch) -> float:
    """Root-label binary accuracy for a batch."""
    predictions = np.argmax(root_logits, axis=-1)
    return float((predictions == batch.root_labels()).mean())
