"""RNTN sentiment model (Socher et al., EMNLP 2013 [26]).

The Recursive Neural Tensor Network composes children through a bilinear
tensor product — by far the heaviest per-node computation of the three
models (O(4H^3) vs the TreeRNN's O(2H^2)), which is why its
recursive/iterative gap narrows at large batch sizes in the paper
(Figure 7b: compute dominates scheduling overheads).
"""

from __future__ import annotations

from repro.nn.cells import RNTNCell

from .base import SentimentModelBase
from .common import ModelConfig

__all__ = ["RNTNSentiment"]


class RNTNSentiment(SentimentModelBase):
    name = "rntn"

    def _make_cell(self):
        return RNTNCell(f"{self.name}/cell", self.config.hidden, self.rng,
                        runtime=self.runtime)

    def _embedding_dim(self) -> int:
        return self.config.hidden
