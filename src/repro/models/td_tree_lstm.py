"""Top-down TreeLSTM (Zhang et al., NAACL 2016 [33]) — a *dynamically
structured* model.

Unlike the bottom-up sentiment models, the tree here is **generated** at
run time: from a root state the model emits a token, computes left/right
growth gates from the state value, and recursively expands children until
the gates close (or a depth cap is reached).  The complete structure is
unknown before execution, so folding-style dynamic batching is
fundamentally inapplicable (paper Section 6.4.2, Table 3) — but recursion
expresses it directly, and independent subtrees still execute in parallel.

Two implementations:

* :meth:`build_recursive` — a recursive SubGraph whose conditional
  predicate depends on *computed* values (the growth gates);
* :meth:`build_iterative` — the embedded-control-flow baseline: a frontier
  queue in TensorArrays processed one node per ``while_loop`` iteration.

Both are inference workloads (sentence completion / generation), as in the
paper's Table 3 evaluation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import ops
from repro.core.subgraph import SubGraph
from repro.graph import dtypes
from repro.graph.graph import Graph
from repro.nn import initializers
from repro.nn.layers import Embedding
from repro.runtime.session import Runtime, default_runtime
from repro.runtime.variables import Variable

from .common import ModelConfig

__all__ = ["TDTreeLSTM", "BuiltGenerator"]


class BuiltGenerator:
    """Handles to a constructed generator graph."""

    def __init__(self, graph: Graph, batch_size: int, seeds, node_counts):
        self.graph = graph
        self.batch_size = batch_size
        self.seeds = seeds            # int32 [B] placeholder
        self.node_counts = node_counts  # int32 [B] tensor

    def feed_dict(self, seed_words: np.ndarray) -> dict:
        return {self.seeds: np.asarray(seed_words, dtype=np.int32)}


class TDTreeLSTM:
    """Top-down generative tree model."""

    name = "td_treelstm"

    def __init__(self, config: ModelConfig, runtime: Optional[Runtime] = None,
                 max_depth: int = 7):
        self.config = config
        self.runtime = runtime or default_runtime()
        self.max_depth = max_depth
        rng = np.random.default_rng(config.seed)
        H = config.hidden
        self.embedding = Embedding(f"{self.name}/embed", config.vocab_size,
                                   H, rng, runtime=self.runtime)
        self.Wl = Variable(f"{self.name}/Wl",
                           0.85 * initializers.glorot_uniform(rng, (H, H)),
                           runtime=self.runtime)
        self.Wr = Variable(f"{self.name}/Wr",
                           0.85 * initializers.glorot_uniform(rng, (H, H)),
                           runtime=self.runtime)
        self.Wv = Variable(f"{self.name}/Wv",
                           initializers.glorot_uniform(rng,
                                                       (H,
                                                        config.vocab_size)),
                           runtime=self.runtime)
        # Growth gates: biased open so generation starts eagerly and closes
        # as the contracting child transforms shrink the state.
        self.wg = Variable(f"{self.name}/wg",
                           initializers.normal(rng, (H, 2), stddev=3.0),
                           runtime=self.runtime)
        self.bg = Variable(f"{self.name}/bg",
                           np.full((2,), 0.25, dtype=np.float32),
                           runtime=self.runtime)

    @property
    def variables(self):
        return (self.embedding.variables
                + [self.Wl, self.Wr, self.Wv, self.wg, self.bg])

    # -- shared node computation ---------------------------------------------------

    def _node_compute(self, h):
        """Emission + growth gates for one state ``h`` [1, H]."""
        _ = ops.matmul(h, self.Wv.read())                    # emission logits
        gates = ops.sigmoid(ops.add(ops.matmul(h, self.wg.read()),
                                    self.bg.read()))         # [1, 2]
        grow_left = ops.greater(ops.reduce_sum(
            ops.slice_(gates, (0, 0), (-1, 1))), 0.5)
        grow_right = ops.greater(ops.reduce_sum(
            ops.slice_(gates, (0, 1), (-1, 1))), 0.5)
        return grow_left, grow_right

    def _child_states(self, h):
        left = ops.tanh(ops.matmul(h, self.Wl.read()))
        right = ops.tanh(ops.matmul(h, self.Wr.read()))
        return left, right

    def _root_state(self, seed_word):
        H = self.config.hidden
        return ops.tanh(ops.reshape(self.embedding.lookup(seed_word),
                                    (1, H)))

    # -- recursive implementation ----------------------------------------------------

    def build_recursive(self, batch_size: int) -> BuiltGenerator:
        H = self.config.hidden
        graph = Graph(f"{self.name}_recursive_b{batch_size}")
        with graph.as_default():
            seeds = ops.placeholder(dtypes.int32, (batch_size,), "seeds")

            with SubGraph(f"{self.name}_gen") as gen:
                h = gen.input(dtypes.float32, (1, H), name="state")
                depth = gen.input(dtypes.int32, (), name="depth")
                gen.declare_outputs([(dtypes.int32, ())])
                grow_left, grow_right = self._node_compute(h)
                left_h, right_h = self._child_states(h)
                at_cap = ops.less(depth, self.max_depth)

                def expand(child_h, grow_flag):
                    flag = ops.logical_and(grow_flag, at_cap)
                    return ops.cond(
                        flag,
                        lambda: gen(child_h, ops.add(depth, 1)),
                        lambda: ops.constant(0))

                count = ops.add(ops.constant(1),
                                ops.add(expand(left_h, grow_left),
                                        expand(right_h, grow_right)))
                gen.output(count)

            counts = []
            for b in range(batch_size):
                root = self._root_state(ops.gather(seeds, b))
                counts.append(gen(root, ops.constant(0)))
            node_counts = ops.stack(counts)
        return BuiltGenerator(graph, batch_size, seeds, node_counts)

    # -- iterative implementation ------------------------------------------------------

    def build_iterative(self, batch_size: int) -> BuiltGenerator:
        """Frontier-queue baseline: ONE shared queue for the whole batch.

        The iterative program is a single while_loop whose queue holds
        (state, depth, owner-instance) entries for every pending node of
        every instance; one node is expanded per iteration.  Execution is
        therefore strictly sequential — the structure of each tree is only
        discovered as the loop runs, so there is nothing to parallelize or
        pre-batch (this is exactly the regime of the paper's Table 3).
        """
        H = self.config.hidden
        capacity = batch_size * 2 ** (self.max_depth + 2)
        graph = Graph(f"{self.name}_iterative_b{batch_size}")
        with graph.as_default():
            seeds = ops.placeholder(dtypes.int32, (batch_size,), "seeds")
            queue = ops.ta_create(capacity, (1, H), name="queue")
            depth_q = ops.ta_create(capacity, (), dtypes.float32,
                                    name="depths")
            owner_q = ops.ta_create(capacity, (), dtypes.float32,
                                    name="owners")
            counts0 = ops.ta_create(batch_size, (), dtypes.float32,
                                    name="counts")
            for b in range(batch_size):
                root = self._root_state(ops.gather(seeds, b))
                queue = ops.ta_write(queue, b, root)
                depth_q = ops.ta_write(depth_q, b, ops.constant(0.0))
                owner_q = ops.ta_write(owner_q, b, ops.constant(float(b)))
                counts0 = ops.ta_write(counts0, b, ops.constant(0.0))

            def loop_cond(head, tail, queue, depths, owners, counts):
                return ops.less(head, tail)

            def loop_body(head, tail, queue, depths, owners, counts):
                h = ops.ta_read(queue, head, dtypes.float32, (1, H))
                d = ops.ta_read(depths, head, dtypes.float32, ())
                owner = ops.ta_read(owners, head, dtypes.float32, ())
                owner_idx = ops.cast(owner, dtypes.int32)
                counts = ops.ta_add(counts, owner_idx, ops.constant(1.0))
                grow_left, grow_right = self._node_compute(h)
                left_h, right_h = self._child_states(h)
                at_cap = ops.less(d, float(self.max_depth))

                def push(child_h, grow_flag, tail_now, q_now, d_now, o_now):
                    flag = ops.logical_and(grow_flag, at_cap)

                    def do_push():
                        return (ops.add(tail_now, 1),
                                ops.ta_write(q_now, tail_now, child_h),
                                ops.ta_write(d_now, tail_now,
                                             ops.add(d, 1.0)),
                                ops.ta_write(o_now, tail_now, owner))

                    def skip():
                        return (ops.identity(tail_now),
                                ops.identity(q_now),
                                ops.identity(d_now),
                                ops.identity(o_now))

                    return ops.cond(flag, do_push, skip)

                tail1, queue1, depths1, owners1 = push(
                    left_h, grow_left, tail, queue, depths, owners)
                tail2, queue2, depths2, owners2 = push(
                    right_h, grow_right, tail1, queue1, depths1, owners1)
                return (ops.add(head, 1), tail2, queue2, depths2, owners2,
                        counts)

            final = ops.while_loop(
                loop_cond, loop_body,
                [ops.constant(0), ops.constant(batch_size), queue, depth_q,
                 owner_q, counts0],
                name="frontier", max_iters=capacity)
            final_counts = final[5]
            per_instance = [
                ops.cast(ops.ta_read(final_counts, b, dtypes.float32, ()),
                         dtypes.int32)
                for b in range(batch_size)]
            node_counts = ops.stack(per_instance)
        return BuiltGenerator(graph, batch_size, seeds, node_counts)
