"""TreeLSTM sentiment model (Tai et al., ACL 2015 [27]).

Binary constituency TreeLSTM: gated composition with two per-child forget
gates and a memory cell, i.e. a two-component state (h, c).  Its larger
per-frame state makes the backprop value cache traffic significant during
training — the mechanism behind the paper's batch-25 training crossover
where the iterative implementation overtakes the recursive one
(Figure 7c / Table 2).
"""

from __future__ import annotations

from repro.nn.cells import TreeLSTMCell

from .base import SentimentModelBase
from .common import ModelConfig

__all__ = ["TreeLSTMSentiment", "tree_lstm_config"]


def tree_lstm_config(**overrides) -> ModelConfig:
    """Default TreeLSTM config: a larger hidden state than TreeRNN/RNTN
    (the original paper uses 150; we scale to 64)."""
    defaults = dict(hidden=64, embed_dim=32)
    defaults.update(overrides)
    return ModelConfig(**defaults)


class TreeLSTMSentiment(SentimentModelBase):
    name = "treelstm"

    def _make_cell(self):
        return TreeLSTMCell(f"{self.name}/cell", self.config.hidden,
                            self.config.embed_dim, self.rng,
                            runtime=self.runtime)

    def _embedding_dim(self) -> int:
        return self.config.embed_dim
