"""TreeRNN sentiment model (Socher et al., ICML 2011 [25]).

The lightest of the three recursive models: composition is a single
``tanh(W [hl; hr] + b)``.  As the paper notes, the small function body
leaves the most headroom for parallelization, so the recursive/iterative
throughput gap is widest here (Figures 7a/8a).
"""

from __future__ import annotations

from repro.nn.cells import TreeRNNCell

from .base import SentimentModelBase
from .common import ModelConfig

__all__ = ["TreeRNNSentiment"]


class TreeRNNSentiment(SentimentModelBase):
    name = "treernn"

    def _make_cell(self):
        return TreeRNNCell(f"{self.name}/cell", self.config.hidden, self.rng,
                           runtime=self.runtime)

    def _embedding_dim(self) -> int:
        # Leaves use the (tanh-squashed) embedding directly as their state.
        return self.config.hidden
