"""Neural-network library: layers, tree cells, losses, optimizers, trainer."""

from .cells import RNTNCell, TreeLSTMCell, TreeRNNCell
from .initializers import glorot_uniform, normal, uniform, zeros
from .layers import Dense, Embedding
from .losses import (node_cross_entropy, np_cross_entropy,
                     np_cross_entropy_backward, np_softmax)
from .optimizers import Adagrad, Adam, SGD
from .trainer import Trainer

__all__ = ["RNTNCell", "TreeLSTMCell", "TreeRNNCell", "glorot_uniform",
           "normal", "uniform", "zeros", "Dense", "Embedding",
           "node_cross_entropy", "np_cross_entropy",
           "np_cross_entropy_backward", "np_softmax", "Adagrad", "Adam",
           "SGD", "Trainer"]
