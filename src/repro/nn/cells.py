"""Tree-composition cells: TreeRNN [25], RNTN [26], binary TreeLSTM [27].

Each cell provides two faces over the *same* parameters:

* **graph builders** — ``leaf(x)`` / ``internal(left, right)`` compose
  dataflow operations (used by the recursive, iterative and unrolled
  implementations); states are tuples of ``[1, H]`` tensors;
* **numpy twins** — ``np_leaf`` / ``np_internal`` compute batched forward
  passes (``[B, ·]``) with caches, and ``np_leaf_backward`` /
  ``np_internal_backward`` the matching gradients.  The folding baseline
  (TensorFlow-Fold-style depth-wise dynamic batching) runs entirely on the
  numpy twins; tests assert the two faces agree to float tolerance.

Relative compute intensities match the paper's discussion: the TreeRNN
body is the cheapest (one ``[1,2H]×[2H,H]`` matmul), the RNTN adds a
bilinear tensor product (``O(4H^2·H)`` — "much more computation in its
recursive function body"), and the TreeLSTM sits in between with gated
updates over a larger hidden state.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import ops
from repro.graph.tensor import Tensor
from repro.runtime.variables import Variable

from . import initializers

__all__ = ["TreeRNNCell", "RNTNCell", "TreeLSTMCell"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class TreeRNNCell:
    """Socher-style recursive cell: ``h = tanh(W [hl; hr] + b)``.

    Leaves use the word embedding directly as the hidden state, so the
    embedding dimension must equal the hidden dimension.
    """

    state_arity = 1

    def __init__(self, name: str, hidden: int, rng: np.random.Generator,
                 runtime=None):
        self.name = name
        self.hidden = hidden
        self.input_dim = hidden
        self.W = Variable(f"{name}/W",
                          initializers.glorot_uniform(rng,
                                                      (2 * hidden, hidden)),
                          runtime=runtime)
        self.b = Variable(f"{name}/b", initializers.zeros((hidden,)),
                          runtime=runtime)

    @property
    def variables(self) -> list[Variable]:
        return [self.W, self.b]

    # -- cost metadata (folding baseline's GPU kernel accounting) -----------------

    leaf_kernels = 2       # embedding gather + tanh
    internal_kernels = 4   # concat + matmul + add + tanh

    def leaf_flops(self, n: int) -> float:
        return float(n * self.hidden)

    def internal_flops(self, n: int) -> float:
        return float(2 * n * 2 * self.hidden * self.hidden)

    def state_bytes(self, n: int) -> float:
        return float(self.state_arity * n * self.hidden * 4)

    # -- graph face ------------------------------------------------------------

    def leaf(self, x: Tensor) -> tuple[Tensor]:
        return (ops.tanh(x),)

    def internal(self, left: tuple, right: tuple) -> tuple[Tensor]:
        joined = ops.concat([left[0], right[0]], axis=1)
        h = ops.tanh(ops.add(ops.matmul(joined, self.W.read()),
                             self.b.read()))
        return (h,)

    # -- numpy face ---------------------------------------------------------------

    def np_leaf(self, params: dict, x: np.ndarray):
        h = np.tanh(x)
        return (h,), {"h": h}

    def np_leaf_backward(self, params: dict, cache: dict, d_state):
        dx = d_state[0] * (1.0 - cache["h"] ** 2)
        return dx, {}

    def np_internal(self, params: dict, left, right):
        joined = np.concatenate([left[0], right[0]], axis=1)
        pre = joined @ params[f"{self.name}/W"] + params[f"{self.name}/b"]
        h = np.tanh(pre)
        return (h,), {"joined": joined, "h": h}

    def np_internal_backward(self, params: dict, cache: dict, d_state):
        W = params[f"{self.name}/W"]
        da = d_state[0] * (1.0 - cache["h"] ** 2)
        d_joined = da @ W.T
        grads = {f"{self.name}/W": cache["joined"].T @ da,
                 f"{self.name}/b": da.sum(axis=0)}
        H = self.hidden
        return (d_joined[:, :H],), (d_joined[:, H:],), grads


class RNTNCell:
    """Recursive Neural Tensor Network cell [26].

    ``h_k = tanh( sum_ij c_i V[i,j,k] c_j + (c W)_k + b_k )`` with
    ``c = [hl; hr]``; the tensor ``V`` has shape ``[2H, 2H, H]`` (stored
    flattened as ``[2H, 2H*H]`` for the graph face's rank-2 matmuls).
    """

    state_arity = 1

    def __init__(self, name: str, hidden: int, rng: np.random.Generator,
                 runtime=None):
        self.name = name
        self.hidden = hidden
        self.input_dim = hidden
        two_h = 2 * hidden
        self.V = Variable(f"{name}/V",
                          initializers.uniform(rng, (two_h, two_h * hidden),
                                               scale=1.0 / two_h),
                          runtime=runtime)
        self.W = Variable(f"{name}/W",
                          initializers.glorot_uniform(rng, (two_h, hidden)),
                          runtime=runtime)
        self.b = Variable(f"{name}/b", initializers.zeros((hidden,)),
                          runtime=runtime)

    @property
    def variables(self) -> list[Variable]:
        return [self.V, self.W, self.b]

    # -- cost metadata --------------------------------------------------------

    leaf_kernels = 2
    internal_kernels = 7   # concat + tensor contraction (2 matmuls) + reshape
                           # + linear matmul + add + tanh

    def leaf_flops(self, n: int) -> float:
        return float(n * self.hidden)

    def internal_flops(self, n: int) -> float:
        two_h = 2 * self.hidden
        bilinear = 2 * n * two_h * two_h * self.hidden + 2 * n * two_h * self.hidden
        linear = 2 * n * two_h * self.hidden
        return float(bilinear + linear)

    def state_bytes(self, n: int) -> float:
        return float(self.state_arity * n * self.hidden * 4)

    # -- graph face -----------------------------------------------------------

    def leaf(self, x: Tensor) -> tuple[Tensor]:
        return (ops.tanh(x),)

    def internal(self, left: tuple, right: tuple) -> tuple[Tensor]:
        c = ops.concat([left[0], right[0]], axis=1)          # [B, 2H]
        two_h, H = 2 * self.hidden, self.hidden
        tmp = ops.matmul(c, self.V.read())                   # [B, 2H*H]
        tmp3 = ops.reshape(tmp, (-1, two_h, H))              # [B, 2H, H]
        c3 = ops.expand_dims(c, 2)                           # [B, 2H, 1]
        bilinear = ops.reduce_sum(ops.multiply(c3, tmp3), axis=1)  # [B, H]
        linear = ops.matmul(c, self.W.read())
        h = ops.tanh(ops.add(ops.add(bilinear, linear), self.b.read()))
        return (h,)

    # -- numpy face -----------------------------------------------------------

    def _v3(self, params: dict) -> np.ndarray:
        two_h, H = 2 * self.hidden, self.hidden
        return params[f"{self.name}/V"].reshape(two_h, two_h, H)

    def np_leaf(self, params: dict, x: np.ndarray):
        h = np.tanh(x)
        return (h,), {"h": h}

    def np_leaf_backward(self, params: dict, cache: dict, d_state):
        dx = d_state[0] * (1.0 - cache["h"] ** 2)
        return dx, {}

    def np_internal(self, params: dict, left, right):
        c = np.concatenate([left[0], right[0]], axis=1)
        V = self._v3(params)
        bilinear = np.einsum("bi,ijk,bj->bk", c, V, c)
        pre = bilinear + c @ params[f"{self.name}/W"] + params[f"{self.name}/b"]
        h = np.tanh(pre)
        return (h,), {"c": c, "h": h}

    def np_internal_backward(self, params: dict, cache: dict, d_state):
        c, h = cache["c"], cache["h"]
        V = self._v3(params)
        W = params[f"{self.name}/W"]
        da = d_state[0] * (1.0 - h ** 2)
        dV = np.einsum("bk,bi,bj->ijk", da, c, c)
        dc = (np.einsum("bk,ijk,bj->bi", da, V, c)
              + np.einsum("bk,ijk,bi->bj", da, V, c)
              + da @ W.T)
        two_h, H = 2 * self.hidden, self.hidden
        grads = {f"{self.name}/V": dV.reshape(two_h, two_h * H),
                 f"{self.name}/W": c.T @ da,
                 f"{self.name}/b": da.sum(axis=0)}
        return (dc[:, :H],), (dc[:, H:],), grads


class TreeLSTMCell:
    """Binary (N-ary, N=2) TreeLSTM cell [27].

    Leaf (input ``x``, no children):
        ``z = x Wx + bx``;  i, o = sigmoid, u = tanh over three H-slices;
        ``c = i*u``, ``h = o*tanh(c)``.
    Internal (children ``(hl, cl)``, ``(hr, cr)``, no input):
        ``z = hl Ul + hr Ur + bu`` over five H-slices (i, o, u, fl, fr);
        forget gates get a +1 bias;  ``c = i*u + fl*cl + fr*cr``,
        ``h = o*tanh(c)``.
    """

    state_arity = 2

    def __init__(self, name: str, hidden: int, input_dim: int,
                 rng: np.random.Generator, runtime=None):
        self.name = name
        self.hidden = hidden
        self.input_dim = input_dim
        self.Wx = Variable(f"{name}/Wx",
                           initializers.glorot_uniform(rng,
                                                       (input_dim,
                                                        3 * hidden)),
                           runtime=runtime)
        self.bx = Variable(f"{name}/bx", initializers.zeros((3 * hidden,)),
                           runtime=runtime)
        self.Ul = Variable(f"{name}/Ul",
                           initializers.glorot_uniform(rng,
                                                       (hidden, 5 * hidden)),
                           runtime=runtime)
        self.Ur = Variable(f"{name}/Ur",
                           initializers.glorot_uniform(rng,
                                                       (hidden, 5 * hidden)),
                           runtime=runtime)
        self.bu = Variable(f"{name}/bu", initializers.zeros((5 * hidden,)),
                           runtime=runtime)

    @property
    def variables(self) -> list[Variable]:
        return [self.Wx, self.bx, self.Ul, self.Ur, self.bu]

    # -- cost metadata ------------------------------------------------------------

    leaf_kernels = 8        # embed gather, matmul, add, 3 gate ops, 2 products
    internal_kernels = 12   # 2 matmuls, adds, 5 gates, cell update chain

    def leaf_flops(self, n: int) -> float:
        return float(2 * n * self.input_dim * 3 * self.hidden
                     + 8 * n * self.hidden)

    def internal_flops(self, n: int) -> float:
        return float(2 * 2 * n * self.hidden * 5 * self.hidden
                     + 12 * n * self.hidden)

    def state_bytes(self, n: int) -> float:
        return float(self.state_arity * n * self.hidden * 4)

    # -- graph face -------------------------------------------------------------

    def leaf(self, x: Tensor) -> tuple[Tensor, Tensor]:
        H = self.hidden
        z = ops.add(ops.matmul(x, self.Wx.read()), self.bx.read())
        i = ops.sigmoid(ops.slice_(z, (0, 0), (-1, H)))
        o = ops.sigmoid(ops.slice_(z, (0, H), (-1, H)))
        u = ops.tanh(ops.slice_(z, (0, 2 * H), (-1, H)))
        c = ops.multiply(i, u)
        h = ops.multiply(o, ops.tanh(c))
        return (h, c)

    def internal(self, left: tuple, right: tuple) -> tuple[Tensor, Tensor]:
        H = self.hidden
        hl, cl = left
        hr, cr = right
        z = ops.add(ops.add(ops.matmul(hl, self.Ul.read()),
                            ops.matmul(hr, self.Ur.read())),
                    self.bu.read())
        i = ops.sigmoid(ops.slice_(z, (0, 0), (-1, H)))
        o = ops.sigmoid(ops.slice_(z, (0, H), (-1, H)))
        u = ops.tanh(ops.slice_(z, (0, 2 * H), (-1, H)))
        fl = ops.sigmoid(ops.add(ops.slice_(z, (0, 3 * H), (-1, H)), 1.0))
        fr = ops.sigmoid(ops.add(ops.slice_(z, (0, 4 * H), (-1, H)), 1.0))
        c = ops.add(ops.multiply(i, u),
                    ops.add(ops.multiply(fl, cl), ops.multiply(fr, cr)))
        h = ops.multiply(o, ops.tanh(c))
        return (h, c)

    # -- numpy face -------------------------------------------------------------

    def np_leaf(self, params: dict, x: np.ndarray):
        H = self.hidden
        z = x @ params[f"{self.name}/Wx"] + params[f"{self.name}/bx"]
        i = _sigmoid(z[:, :H])
        o = _sigmoid(z[:, H:2 * H])
        u = np.tanh(z[:, 2 * H:])
        c = i * u
        tc = np.tanh(c)
        h = o * tc
        return (h, c), {"x": x, "i": i, "o": o, "u": u, "c": c, "tc": tc}

    def np_leaf_backward(self, params: dict, cache: dict, d_state):
        dh, dc_in = d_state
        i, o, u, tc = cache["i"], cache["o"], cache["u"], cache["tc"]
        do = dh * tc
        dc = dh * o * (1.0 - tc ** 2) + (dc_in if dc_in is not None else 0.0)
        di = dc * u
        du = dc * i
        dz = np.concatenate([di * i * (1 - i), do * o * (1 - o),
                             du * (1 - u ** 2)], axis=1)
        grads = {f"{self.name}/Wx": cache["x"].T @ dz,
                 f"{self.name}/bx": dz.sum(axis=0)}
        dx = dz @ params[f"{self.name}/Wx"].T
        return dx, grads

    def np_internal(self, params: dict, left, right):
        H = self.hidden
        hl, cl = left
        hr, cr = right
        z = (hl @ params[f"{self.name}/Ul"] + hr @ params[f"{self.name}/Ur"]
             + params[f"{self.name}/bu"])
        i = _sigmoid(z[:, :H])
        o = _sigmoid(z[:, H:2 * H])
        u = np.tanh(z[:, 2 * H:3 * H])
        fl = _sigmoid(z[:, 3 * H:4 * H] + 1.0)
        fr = _sigmoid(z[:, 4 * H:] + 1.0)
        c = i * u + fl * cl + fr * cr
        tc = np.tanh(c)
        h = o * tc
        cache = {"hl": hl, "cl": cl, "hr": hr, "cr": cr, "i": i, "o": o,
                 "u": u, "fl": fl, "fr": fr, "c": c, "tc": tc}
        return (h, c), cache

    def np_internal_backward(self, params: dict, cache: dict, d_state):
        dh, dc_in = d_state
        i, o, u = cache["i"], cache["o"], cache["u"]
        fl, fr, tc = cache["fl"], cache["fr"], cache["tc"]
        do = dh * tc
        dc = dh * o * (1.0 - tc ** 2) + (dc_in if dc_in is not None else 0.0)
        di = dc * u
        du = dc * i
        dfl = dc * cache["cl"]
        dfr = dc * cache["cr"]
        dcl = dc * fl
        dcr = dc * fr
        dz = np.concatenate([di * i * (1 - i), do * o * (1 - o),
                             du * (1 - u ** 2), dfl * fl * (1 - fl),
                             dfr * fr * (1 - fr)], axis=1)
        Ul = params[f"{self.name}/Ul"]
        Ur = params[f"{self.name}/Ur"]
        grads = {f"{self.name}/Ul": cache["hl"].T @ dz,
                 f"{self.name}/Ur": cache["hr"].T @ dz,
                 f"{self.name}/bu": dz.sum(axis=0)}
        dhl = dz @ Ul.T
        dhr = dz @ Ur.T
        return (dhl, dcl), (dhr, dcr), grads
