"""Parameter initializers (seeded, deterministic)."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "uniform", "zeros", "normal"]


def glorot_uniform(rng: np.random.Generator, shape) -> np.ndarray:
    """Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6/(fan_in+fan_out))."""
    shape = tuple(shape)
    if len(shape) >= 2:
        fan_in, fan_out = shape[0], shape[-1]
    else:
        fan_in = fan_out = shape[0] if shape else 1
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def uniform(rng: np.random.Generator, shape, scale: float = 0.05) -> np.ndarray:
    return rng.uniform(-scale, scale, size=shape).astype(np.float32)


def normal(rng: np.random.Generator, shape, stddev: float = 0.1) -> np.ndarray:
    return (rng.standard_normal(size=shape) * stddev).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)
