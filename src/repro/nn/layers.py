"""Reusable layers: Dense and Embedding.

Layers create their parameters as runtime :class:`~repro.runtime.variables.
Variable` objects at construction time and build graph operations when
called, so the same layer instance can be used inside a SubGraph body, an
iterative loop body, and an unrolled graph — all reading the same weights.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro import ops
from repro.graph.tensor import Tensor
from repro.runtime.variables import Variable

from . import initializers

__all__ = ["Dense", "Embedding"]


class Dense:
    """Affine transform ``x @ W + b`` with optional activation."""

    def __init__(self, name: str, in_dim: int, out_dim: int,
                 rng: np.random.Generator,
                 activation: Optional[Callable[[Tensor], Tensor]] = None,
                 runtime=None):
        self.name = name
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.activation = activation
        self.weight = Variable(f"{name}/W",
                               initializers.glorot_uniform(rng,
                                                           (in_dim, out_dim)),
                               runtime=runtime)
        self.bias = Variable(f"{name}/b", initializers.zeros((out_dim,)),
                             runtime=runtime)

    @property
    def variables(self) -> list[Variable]:
        return [self.weight, self.bias]

    def __call__(self, x: Tensor) -> Tensor:
        out = ops.add(ops.matmul(x, self.weight.read()), self.bias.read())
        if self.activation is not None:
            out = self.activation(out)
        return out

    def np_forward(self, params: dict, x: np.ndarray) -> np.ndarray:
        out = x @ params[f"{self.name}/W"] + params[f"{self.name}/b"]
        if self.activation is not None:
            raise NotImplementedError("numpy twin only supports linear Dense")
        return out


class Embedding:
    """A trainable embedding table with ``lookup(ids)``."""

    def __init__(self, name: str, vocab_size: int, dim: int,
                 rng: np.random.Generator, runtime=None):
        self.name = name
        self.vocab_size = vocab_size
        self.dim = dim
        self.table = Variable(f"{name}/table",
                              initializers.uniform(rng, (vocab_size, dim),
                                                   scale=0.1),
                              runtime=runtime)

    @property
    def variables(self) -> list[Variable]:
        return [self.table]

    def lookup(self, ids: Tensor) -> Tensor:
        """Gather rows for integer ``ids`` (any shape)."""
        return ops.gather(self.table.read(), ids)

    def np_lookup(self, params: dict, ids: np.ndarray) -> np.ndarray:
        return params[f"{self.name}/table"][ids]
