"""Loss helpers (graph face and numpy twins)."""

from __future__ import annotations

import numpy as np

from repro import ops
from repro.graph.tensor import Tensor

__all__ = ["node_cross_entropy", "np_softmax", "np_cross_entropy",
           "np_cross_entropy_backward"]


def node_cross_entropy(logits: Tensor, label: Tensor) -> Tensor:
    """Scalar cross-entropy for one node: logits ``[1, C]``, label ``()``."""
    labels = ops.reshape(label, (1,))
    loss = ops.softmax_cross_entropy_with_logits(logits, labels)
    return ops.reduce_sum(loss)


def np_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def np_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-example CE: logits ``[B, C]``, int labels ``[B]`` -> ``[B]``."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    return -np.take_along_axis(log_probs,
                               labels[:, None].astype(np.int64),
                               axis=-1)[:, 0]


def np_cross_entropy_backward(logits: np.ndarray, labels: np.ndarray,
                              d_loss: np.ndarray) -> np.ndarray:
    """Gradient of per-example CE w.r.t. logits."""
    probs = np_softmax(logits)
    onehot = np.zeros_like(probs)
    np.put_along_axis(onehot, labels[:, None].astype(np.int64), 1.0, axis=-1)
    return (probs - onehot) * d_loss[:, None]
