"""Optimizers: SGD, Adagrad, Adam.

Each optimizer has two faces sharing the same update math:

* :meth:`build_apply` — build the *apply* graph that reads the runtime's
  gradient accumulators (filled during the backward phase) and updates the
  variables; the returned tensors are the fetches of the training step's
  second phase.
* :meth:`apply_numpy` — the same update applied host-side from a grads
  dict; used by the folding baseline, which computes gradients in numpy.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import ops
from repro.graph.graph import Graph
from repro.graph.sparse import IndexedSlices
from repro.graph.tensor import Tensor
from repro.runtime.variables import Variable

__all__ = ["SGD", "Adagrad", "Adam"]


class _OptimizerBase:
    #: subclasses whose update touches only the gradient's rows can apply
    #: an IndexedSlices directly (fused sparse apply op); Adam cannot —
    #: its momentum decay touches every row, so it reads densified.
    _sparse_capable = False

    def __init__(self, learning_rate: float, sparse: bool = False):
        self.learning_rate = float(learning_rate)
        #: when on (and the subclass supports it) the apply graph reads
        #: the accumulator with ``dense=False`` and applies IndexedSlices
        #: gradients to touched rows only — bit-identical to the dense
        #: update, O(touched rows) instead of O(vocab)
        self.sparse = bool(sparse) and self._sparse_capable

    def build_apply(self, graph: Graph, variables: Sequence[Variable],
                    runtime) -> list[Tensor]:
        """Build update ops for ``variables`` in ``graph``; returns fetches."""
        fetches = []
        with graph.as_default():
            for var in variables:
                grad = ops.read_accum(var.name, var.dtype, var.shape,
                                      dense=not self.sparse)
                fetches.append(self._build_update(var, grad, runtime))
        return fetches

    def apply_numpy(self, runtime, grads: dict[str, np.ndarray]) -> None:
        for name, grad in grads.items():
            if isinstance(grad, IndexedSlices):
                grad = grad.to_dense()
            value = runtime.variables.read(name)
            runtime.variables.write(name,
                                    self._numpy_update(name, value, grad))

    # subclass hooks ---------------------------------------------------------

    def _build_update(self, var: Variable, grad: Tensor, runtime) -> Tensor:
        raise NotImplementedError

    def _numpy_update(self, name: str, value: np.ndarray,
                      grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class SGD(_OptimizerBase):
    """Plain stochastic gradient descent: ``var -= lr * grad``."""

    _sparse_capable = True

    def _build_update(self, var, grad, runtime):
        if self.sparse:
            return ops.apply_sgd(var.name, grad, self.learning_rate)
        step = ops.multiply(grad, self.learning_rate)
        return ops.assign_sub(var.name, step)

    def _numpy_update(self, name, value, grad):
        return value - self.learning_rate * grad


class Adagrad(_OptimizerBase):
    """Adagrad [Duchi et al.]: per-parameter adaptive learning rates.

    The original TreeRNN/RNTN/TreeLSTM papers train with Adagrad, which is
    why it is the default in the model configs.
    """

    _sparse_capable = True

    def __init__(self, learning_rate: float = 0.05, epsilon: float = 1e-8,
                 sparse: bool = False):
        super().__init__(learning_rate, sparse=sparse)
        self.epsilon = epsilon
        self._slots: dict[str, Variable] = {}
        self._np_slots: dict[str, np.ndarray] = {}

    def _slot(self, var: Variable, runtime) -> Variable:
        if var.name not in self._slots:
            self._slots[var.name] = Variable(
                f"{var.name}/adagrad", np.zeros(var.shape, dtype=np.float32),
                runtime=runtime, trainable=False)
        return self._slots[var.name]

    def _build_update(self, var, grad, runtime):
        slot = self._slot(var, runtime)
        if self.sparse:
            return ops.apply_adagrad(var.name, slot.name, grad,
                                     self.learning_rate, self.epsilon)
        new_accum = ops.assign_add(slot.name, ops.square(grad))
        denom = ops.add(ops.sqrt(new_accum), self.epsilon)
        step = ops.divide(ops.multiply(grad, self.learning_rate), denom)
        return ops.assign_sub(var.name, step)

    def _numpy_update(self, name, value, grad):
        accum = self._np_slots.get(name)
        accum = grad * grad if accum is None else accum + grad * grad
        self._np_slots[name] = accum
        return value - self.learning_rate * grad / (np.sqrt(accum)
                                                    + self.epsilon)


class Adam(_OptimizerBase):
    """Adam [Kingma & Ba] with bias correction."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        super().__init__(learning_rate)
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: dict[str, Variable] = {}
        self._v: dict[str, Variable] = {}
        self._t: Optional[Variable] = None
        self._np_state: dict[str, tuple] = {}
        self._np_t = 0
        self._t_tensor_memo: dict[int, Tensor] = {}

    def _step_counter(self, runtime) -> Tensor:
        """One shared ``t += 1`` per apply graph (not per variable)."""
        from repro.graph.graph import get_default_graph
        graph = get_default_graph()
        if graph.graph_id not in self._t_tensor_memo:
            if self._t is None:
                self._t = Variable("adam/t", np.float32(0.0),
                                   runtime=runtime, trainable=False)
            self._t_tensor_memo[graph.graph_id] = ops.assign_add(
                self._t.name, ops.constant(np.float32(1.0)))
        return self._t_tensor_memo[graph.graph_id]

    def _build_update(self, var, grad, runtime):
        if var.name not in self._m:
            zeros = np.zeros(var.shape, dtype=np.float32)
            self._m[var.name] = Variable(f"{var.name}/adam_m", zeros,
                                         runtime=runtime, trainable=False)
            self._v[var.name] = Variable(f"{var.name}/adam_v", zeros,
                                         runtime=runtime, trainable=False)
        t = self._step_counter(runtime)
        m = ops.assign(self._m[var.name].name,
                       ops.add(ops.multiply(self._m[var.name].read(),
                                            self.beta1),
                               ops.multiply(grad, 1.0 - self.beta1)))
        v = ops.assign(self._v[var.name].name,
                       ops.add(ops.multiply(self._v[var.name].read(),
                                            self.beta2),
                               ops.multiply(ops.square(grad),
                                            1.0 - self.beta2)))
        # bias correction: m / (1 - beta1^t), v / (1 - beta2^t)
        b1t = ops.exp(ops.multiply(t, np.log(self.beta1)))
        b2t = ops.exp(ops.multiply(t, np.log(self.beta2)))
        m_hat = ops.divide(m, ops.subtract(1.0, b1t))
        v_hat = ops.divide(v, ops.subtract(1.0, b2t))
        step = ops.divide(ops.multiply(m_hat, self.learning_rate),
                          ops.add(ops.sqrt(v_hat), self.epsilon))
        return ops.assign_sub(var.name, step)

    def _numpy_update(self, name, value, grad):
        m, v = self._np_state.get(name, (np.zeros_like(grad),
                                         np.zeros_like(grad)))
        self._np_t += 1
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._np_state[name] = (m, v)
        m_hat = m / (1 - self.beta1 ** self._np_t)
        v_hat = v / (1 - self.beta2 ** self._np_t)
        return value - self.learning_rate * m_hat / (np.sqrt(v_hat)
                                                     + self.epsilon)
