"""Two-phase training driver.

A training step on this framework runs in two session calls, mirroring how
gradient accumulation across an unbounded number of recursive frames must
complete before parameters move:

1. **forward + backward** (``record=True``): executes the loss and every
   backward side-effect op returned by :func:`repro.gradients`; variable
   gradients land in the runtime's accumulators; forward activations of
   recursive frames are recorded in (and consumed from) the backprop cache.
2. **apply** (``record=False``): the optimizer's apply graph reads the
   accumulators and updates the variables.

Training-path micro-batching: pass ``batching=True`` (fixed flush policy)
or ``batching="adaptive"`` (per-signature
:class:`~repro.runtime.batching.AdaptiveBatchPolicy`) and the engines
coalesce the *whole* step across concurrent frames — forward kernels,
backward-body gradient kernels, ``InvokeGrad`` frame spawns and the
``CacheLookup`` traffic of the backprop value cache (resolved through one
bulk cache read per bucket).  Losses and gradients are bit-identical to
unbatched execution: forward/backward values are value-preserving by the
batched-kernel contract, and gradient contributions are summed in
canonical frame-key order by the runtime's
:class:`~repro.runtime.variables.GradientAccumulator`.  With
``"adaptive"``, the tuned per-signature state persists across steps, so
flush behaviour converges over the first few steps of a run.

The trainer accumulates virtual-time statistics so throughput harnesses
can report instances/second under the simulated testbed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.autodiff import gradients
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor
from repro.runtime.batching import BatchPolicy
from repro.runtime.session import Runtime, Session
from repro.runtime.stats import RunStats

__all__ = ["Trainer"]


class Trainer:
    """Drives two-phase training steps for a built model graph.

    Args:
        graph, loss, optimizer, runtime: the built model step.
        variables: trainables to update (defaults to the runtime's).
        session_kwargs: extra :class:`~repro.runtime.session.Session`
            keyword arguments (worker count, cost model, engine, ...).
        batching: training-path micro-batching mode — ``False`` (scalar
            dispatch), ``True`` (fixed policy) or ``"adaptive"``
            (per-signature adaptive flush policy).  Overrides any
            ``batching`` entry in ``session_kwargs``.
        batch_policy: explicit flush policy (implies ``batching`` unless
            set); see :mod:`repro.runtime.batching`.
    """

    def __init__(self, graph: Graph, loss: Tensor, optimizer, runtime: Runtime,
                 variables: Optional[Sequence] = None,
                 session_kwargs: Optional[dict] = None,
                 batching=None, batch_policy: Optional[BatchPolicy] = None):
        self.graph = graph
        self.loss = loss
        self.optimizer = optimizer
        self.runtime = runtime
        self.variables = (list(variables) if variables is not None
                          else runtime.trainable_variables())
        kwargs = dict(session_kwargs or {})
        kwargs.setdefault("record", True)
        if batching is not None:
            kwargs["batching"] = batching
        if batch_policy is not None:
            kwargs["batch_policy"] = batch_policy
            kwargs.setdefault("batching", True)
        self.session = Session(graph, runtime, **kwargs)

        _, update_ops = gradients(loss, [])
        self._grad_fetches = [loss] + [op.outputs[-1] for op in update_ops]
        self._apply_fetches = optimizer.build_apply(graph, self.variables,
                                                    runtime)
        self.last_step_stats: Optional[RunStats] = None

    def compute_gradients(self, feed_dict: Optional[dict] = None) -> float:
        """Phase 1 only: returns the loss, leaving grads in accumulators."""
        self.runtime.accumulators.zero()
        values = self.session.run(self._grad_fetches, feed_dict, record=True)
        return float(values[0])

    def step(self, feed_dict: Optional[dict] = None) -> float:
        """One full training step; returns the loss value."""
        loss_value = self.compute_gradients(feed_dict)
        stats = RunStats()
        stats.merge(self.session.last_stats)
        self.session.run(self._apply_fetches, record=False)
        stats.merge(self.session.last_stats)
        self.last_step_stats = stats
        return loss_value

    def gradient_snapshot(self) -> dict[str, np.ndarray]:
        """Copy of the currently accumulated gradients (for tests)."""
        return {name: np.array(self.runtime.accumulators.read(name))
                for name in self.runtime.accumulators.names()}
