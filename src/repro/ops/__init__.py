"""Functional operation API.

Importing this package registers every op type (kernels, gradients,
inference) and exposes the graph-construction helpers.
"""

from .common import constant, convert
from .math_ops import (abs_, add, cast, divide, equal, exp, greater,
                       greater_equal, identity, less, less_equal, log,
                       logical_and, logical_not, logical_or, matmul, maximum,
                       minimum, multiply, negative, not_equal, placeholder,
                       relu, select, sigmoid, sign, sqrt, square, subtract,
                       tanh)
from .array_ops import (argmax, concat, expand_dims, fill, gather, one_hot,
                        ones_like, reshape, shape_of, size_of, slice_,
                        squeeze, stack, transpose, unstack, zeros_like)
from .reduction_ops import reduce_max, reduce_mean, reduce_sum
from .nn_ops import log_softmax, softmax, softmax_cross_entropy_with_logits
from .var_ops import (accum_grad, apply_adagrad, apply_sgd, assign,
                      assign_add, assign_sub, read_accum, read_variable)
from .tensor_array import (TensorArrayValue, ta_add, ta_combine, ta_create,
                           ta_empty_like, ta_gather_rows, ta_read, ta_size,
                           ta_write)
from .control_flow import cond, while_loop

__all__ = [
    "constant", "convert", "placeholder", "identity",
    "add", "subtract", "multiply", "divide", "negative", "matmul",
    "tanh", "sigmoid", "relu", "exp", "log", "square", "sqrt", "abs_",
    "sign", "maximum", "minimum",
    "equal", "not_equal", "less", "less_equal", "greater", "greater_equal",
    "logical_and", "logical_or", "logical_not", "select", "cast",
    "argmax", "concat", "expand_dims", "fill", "gather", "one_hot",
    "ones_like", "reshape", "shape_of", "size_of", "slice_", "squeeze",
    "stack", "transpose", "unstack", "zeros_like",
    "reduce_max", "reduce_mean", "reduce_sum",
    "log_softmax", "softmax", "softmax_cross_entropy_with_logits",
    "accum_grad", "apply_adagrad", "apply_sgd", "assign", "assign_add",
    "assign_sub", "read_accum", "read_variable",
    "TensorArrayValue", "ta_add", "ta_combine", "ta_create", "ta_empty_like",
    "ta_gather_rows", "ta_read", "ta_size", "ta_write",
    "cond", "while_loop",
]
