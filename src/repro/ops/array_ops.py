"""Array manipulation operations: reshape, concat, gather, stacking, etc."""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.sparse import IndexedSlices, sparse_gather_grads_enabled
from repro.graph.tensor import Tensor

from .common import build, out1

__all__ = [
    "reshape", "transpose", "concat", "gather", "stack", "unstack",
    "expand_dims", "squeeze", "zeros_like", "ones_like", "fill", "one_hot",
    "argmax", "slice_", "python_index", "shape_of", "size_of",
]


# -- reshape / transpose -----------------------------------------------------

def _reshape_infer(op):
    target = tuple(op.attrs["shape"])
    x = op.inputs[0]
    if x.shape is not None and all(d is not None and d >= 0 for d in target):
        return [(x.dtype, target)]
    if -1 in target or any(d is None for d in target):
        return [(x.dtype, tuple(None if d in (-1, None) else d
                                for d in target))]
    return [(x.dtype, target)]


register_op(
    "Reshape",
    infer=_reshape_infer,
    kernel=lambda op, inputs, ctx: [np.reshape(inputs[0],
                                               op.attrs["shape"])],
    grad=lambda gb, op, g: [out1("ReshapeLike", [g[0],
                                                 gb.val(op.inputs[0])])],
    cost="trivial",
)

register_op(
    "ReshapeLike",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[1].shape)],
    kernel=lambda op, inputs, ctx: [np.reshape(inputs[0],
                                               np.shape(inputs[1]))],
    grad=lambda gb, op, g: [out1("ReshapeLike", [g[0],
                                                 gb.val(op.inputs[0])]),
                            None],
    cost="trivial",
)


def reshape(x, shape, name="reshape") -> Tensor:
    """Reshape to a static target ``shape`` (one entry may be -1)."""
    return out1("Reshape", [x], {"shape": tuple(shape)}, name=name)


def _transpose_infer(op):
    x = op.inputs[0]
    perm = op.attrs.get("perm")
    if x.shape is None:
        return [(x.dtype, None)]
    if perm is None:
        return [(x.dtype, tuple(reversed(x.shape)))]
    return [(x.dtype, tuple(x.shape[p] for p in perm))]


def _transpose_grad(gb, op, g):
    perm = op.attrs.get("perm")
    inv = None if perm is None else tuple(np.argsort(perm))
    return [transpose(g[0], perm=inv)]


register_op(
    "Transpose",
    infer=_transpose_infer,
    kernel=lambda op, inputs, ctx: [np.transpose(inputs[0],
                                                 op.attrs.get("perm"))],
    grad=_transpose_grad,
    cost="elementwise",
)


def transpose(x, perm=None, name="transpose") -> Tensor:
    return out1("Transpose", [x], {"perm": perm}, name=name)


# -- concat ------------------------------------------------------------------

def _concat_infer(op):
    axis = op.attrs["axis"]
    first = op.inputs[0]
    if any(t.shape is None for t in op.inputs):
        return [(first.dtype, None)]
    shape = list(first.shape)
    total = 0
    for t in op.inputs:
        dim = t.shape[axis]
        if dim is None or total is None:
            total = None
        else:
            total += dim
    shape[axis] = total
    for i in range(len(shape)):
        if i == axis:
            continue
        dims = {t.shape[i] for t in op.inputs if t.shape[i] is not None}
        if len(dims) > 1:
            raise ValueError(f"Concat inputs disagree on dim {i}: {dims}")
        shape[i] = dims.pop() if dims else None
    return [(first.dtype, tuple(shape))]


def _concat_grad(gb, op, g):
    refs = [gb.val(t) for t in op.inputs]
    grads = build("ConcatGrad", [g[0]] + refs,
                  {"axis": op.attrs["axis"], "n": len(op.inputs)})
    return list(grads)


register_op(
    "Concat",
    infer=_concat_infer,
    kernel=lambda op, inputs, ctx: [np.concatenate(inputs,
                                                   axis=op.attrs["axis"])],
    grad=_concat_grad,
    cost="elementwise",
)


def _concat_grad_infer(op):
    n = op.attrs["n"]
    return [(ref.dtype, ref.shape) for ref in op.inputs[1:1 + n]]


def _concat_grad_kernel(op, inputs, ctx):
    g, refs = inputs[0], inputs[1:]
    axis = op.attrs["axis"]
    sizes = [r.shape[axis] for r in refs]
    offsets = np.cumsum([0] + sizes)
    return [np.take(g, range(offsets[i], offsets[i + 1]), axis=axis)
            for i in range(len(refs))]


register_op("ConcatGrad", infer=_concat_grad_infer,
            kernel=_concat_grad_kernel, grad=None, cost="elementwise")


def concat(values, axis, name="concat") -> Tensor:
    """Concatenate tensors along ``axis``."""
    values = list(values)
    if len(values) == 1:
        from .math_ops import identity
        return identity(values[0])
    return out1("Concat", values, {"axis": axis}, name=name)


# -- gather / scatter --------------------------------------------------------

def _gather_infer(op):
    params, indices = op.inputs
    if params.shape is None:
        return [(params.dtype, None)]
    idx_shape = indices.shape if indices.shape is not None else None
    if idx_shape is None:
        return [(params.dtype, None)]
    return [(params.dtype, tuple(idx_shape) + tuple(params.shape[1:]))]


def _gather_grad(gb, op, g):
    params, indices = op.inputs
    grad = out1("GatherGrad", [g[0], gb.val(indices), gb.val(params)])
    return [grad, None]


register_op(
    "Gather",
    infer=_gather_infer,
    kernel=lambda op, inputs, ctx: [np.take(inputs[0], inputs[1], axis=0)],
    grad=_gather_grad,
    cost="elementwise",
)


def _gather_grad_kernel(op, inputs, ctx):
    g, indices, params = inputs
    if sparse_gather_grads_enabled() and isinstance(params, np.ndarray):
        return [IndexedSlices.from_scatter(indices, g, params.shape,
                                           dtype=params.dtype)]
    out = np.zeros_like(params)
    np.add.at(out, np.asarray(indices), g)
    return [out]


register_op(
    "GatherGrad",
    infer=lambda op: [(op.inputs[2].dtype, op.inputs[2].shape)],
    kernel=_gather_grad_kernel,
    grad=None,
    cost="elementwise",
)


def gather(params, indices, name="gather") -> Tensor:
    """``params[indices]`` along axis 0 (indices may be any rank)."""
    return out1("Gather", [params, indices], name=name)


# -- stack / unstack ---------------------------------------------------------

def _stack_infer(op):
    first = op.inputs[0]
    if first.shape is None:
        return [(first.dtype, None)]
    return [(first.dtype, (len(op.inputs),) + tuple(first.shape))]


def _stack_grad(gb, op, g):
    grads = build("UnstackGrad", [g[0]], {"n": len(op.inputs)})
    return list(grads)


register_op(
    "Stack",
    infer=_stack_infer,
    kernel=lambda op, inputs, ctx: [np.stack(inputs, axis=0)],
    grad=_stack_grad,
    cost="elementwise",
)


def _unstack_grad_infer(op):
    x = op.inputs[0]
    n = op.attrs["n"]
    inner = None if x.shape is None else tuple(x.shape[1:])
    return [(x.dtype, inner)] * n


def _unstack_grad_grad(gb, op, grads):
    parts = []
    for i, g in enumerate(grads):
        if g is None:
            g = out1("ZerosLike", [gb.val(op.outputs[i])])
        parts.append(g)
    return [out1("Stack", parts)]


register_op(
    "UnstackGrad",
    infer=_unstack_grad_infer,
    kernel=lambda op, inputs, ctx: [np.asarray(inputs[0][i])
                                    for i in range(op.attrs["n"])],
    grad=_unstack_grad_grad,
    cost="elementwise",
)


def stack(values, name="stack") -> Tensor:
    """Stack same-shaped tensors along a new leading axis."""
    return out1("Stack", list(values), name=name)


def unstack(value, num, name="unstack") -> list[Tensor]:
    """Split a tensor into ``num`` slices along axis 0."""
    return build("UnstackGrad", [value], {"n": num}, name=name)


# -- expand/squeeze ----------------------------------------------------------

def _expand_infer(op):
    x = op.inputs[0]
    axis = op.attrs["axis"]
    if x.shape is None:
        return [(x.dtype, None)]
    shape = list(x.shape)
    shape.insert(axis if axis >= 0 else len(shape) + axis + 1, 1)
    return [(x.dtype, tuple(shape))]


register_op(
    "ExpandDims",
    infer=_expand_infer,
    kernel=lambda op, inputs, ctx: [np.expand_dims(inputs[0],
                                                   op.attrs["axis"])],
    grad=lambda gb, op, g: [out1("ReshapeLike", [g[0],
                                                 gb.val(op.inputs[0])])],
    cost="trivial",
)


def expand_dims(x, axis, name="expand_dims") -> Tensor:
    return out1("ExpandDims", [x], {"axis": axis}, name=name)


def _squeeze_infer(op):
    x = op.inputs[0]
    axis = op.attrs["axis"]
    if x.shape is None:
        return [(x.dtype, None)]
    shape = list(x.shape)
    real_axis = axis if axis >= 0 else len(shape) + axis
    if shape[real_axis] not in (1, None):
        raise ValueError(f"cannot squeeze axis {axis} of shape {x.shape}")
    del shape[real_axis]
    return [(x.dtype, tuple(shape))]


register_op(
    "Squeeze",
    infer=_squeeze_infer,
    kernel=lambda op, inputs, ctx: [np.squeeze(inputs[0],
                                               axis=op.attrs["axis"])],
    grad=lambda gb, op, g: [out1("ReshapeLike", [g[0],
                                                 gb.val(op.inputs[0])])],
    cost="trivial",
)


def squeeze(x, axis, name="squeeze") -> Tensor:
    return out1("Squeeze", [x], {"axis": axis}, name=name)


# -- fills -------------------------------------------------------------------

register_op(
    "ZerosLike",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
    kernel=lambda op, inputs, ctx: [np.zeros_like(inputs[0])],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)

register_op(
    "OnesLike",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
    kernel=lambda op, inputs, ctx: [np.ones_like(inputs[0])],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)


def zeros_like(x, name="zeros_like") -> Tensor:
    return out1("ZerosLike", [x], name=name)


def ones_like(x, name="ones_like") -> Tensor:
    return out1("OnesLike", [x], name=name)


def _fill_infer(op):
    return [(op.attrs["dtype"], tuple(op.attrs["shape"]))]


register_op(
    "Fill",
    infer=_fill_infer,
    kernel=lambda op, inputs, ctx: [np.full(op.attrs["shape"],
                                            op.attrs["value"],
                                            op.attrs["dtype"].np_dtype)],
    grad=lambda gb, op, g: [],
    cost="trivial",
)


def fill(shape, value, dtype=dtypes.float32, name="fill") -> Tensor:
    return out1("Fill", [], {"shape": tuple(shape), "value": value,
                             "dtype": dtypes.as_dtype(dtype)}, name=name)


# -- one-hot / argmax ---------------------------------------------------------

def _one_hot_infer(op):
    idx = op.inputs[0]
    depth = op.attrs["depth"]
    if idx.shape is None:
        return [(dtypes.float32, None)]
    return [(dtypes.float32, tuple(idx.shape) + (depth,))]


def _one_hot_kernel(op, inputs, ctx):
    idx = np.asarray(inputs[0])
    depth = op.attrs["depth"]
    out = np.zeros(idx.shape + (depth,), dtype=np.float32)
    np.put_along_axis(out, idx[..., None].astype(np.int64), 1.0, axis=-1)
    return [out]


register_op("OneHot", infer=_one_hot_infer, kernel=_one_hot_kernel,
            grad=lambda gb, op, g: [None], cost="elementwise")


def one_hot(indices, depth, name="one_hot") -> Tensor:
    return out1("OneHot", [indices], {"depth": depth}, name=name)


def _argmax_infer(op):
    x = op.inputs[0]
    axis = op.attrs["axis"]
    if x.shape is None:
        return [(dtypes.int64, None)]
    shape = list(x.shape)
    del shape[axis if axis >= 0 else len(shape) + axis]
    return [(dtypes.int64, tuple(shape))]


register_op(
    "ArgMax",
    infer=_argmax_infer,
    kernel=lambda op, inputs, ctx: [np.argmax(inputs[0],
                                              axis=op.attrs["axis"])],
    grad=lambda gb, op, g: [None],
    cost="elementwise",
)


def argmax(x, axis=-1, name="argmax") -> Tensor:
    return out1("ArgMax", [x], {"axis": axis}, name=name)


# -- static slicing ------------------------------------------------------------

def _slice_infer(op):
    x = op.inputs[0]
    begin, size = op.attrs["begin"], op.attrs["size"]
    if x.shape is None:
        return [(x.dtype, None)]
    shape = []
    for b, s, dim in zip(begin, size, x.shape):
        shape.append(s if s != -1 else (None if dim is None else dim - b))
    return [(x.dtype, tuple(shape))]


def _slice_kernel(op, inputs, ctx):
    x = inputs[0]
    begin, size = op.attrs["begin"], op.attrs["size"]
    idx = tuple(slice(b, None if s == -1 else b + s)
                for b, s in zip(begin, size))
    return [x[idx]]


def _slice_grad(gb, op, g):
    return [out1("SliceGrad", [g[0], gb.val(op.inputs[0])],
                 {"begin": op.attrs["begin"], "size": op.attrs["size"]})]


def _slice_grad_kernel(op, inputs, ctx):
    g, ref = inputs
    out = np.zeros_like(ref)
    begin, size = op.attrs["begin"], op.attrs["size"]
    idx = tuple(slice(b, None if s == -1 else b + s)
                for b, s in zip(begin, size))
    out[idx] = g
    return [out]


register_op("Slice", infer=_slice_infer, kernel=_slice_kernel,
            grad=_slice_grad, cost="elementwise")
register_op("SliceGrad",
            infer=lambda op: [(op.inputs[1].dtype, op.inputs[1].shape)],
            kernel=_slice_grad_kernel, grad=None, cost="elementwise")


def slice_(x, begin, size, name="slice") -> Tensor:
    """Static slice: ``x[begin[0]:begin[0]+size[0], ...]`` (-1 = to end)."""
    return out1("Slice", [x], {"begin": tuple(begin), "size": tuple(size)},
                name=name)


def python_index(x: Tensor, key):
    """Support ``t[i]`` / ``t[a:b]`` style indexing on symbolic tensors."""
    if isinstance(key, Tensor) or isinstance(key, (int, np.integer)):
        return gather(x, key)
    if isinstance(key, slice):
        if key.step not in (None, 1):
            raise NotImplementedError("strided slicing is not supported")
        begin = key.start or 0
        size = -1 if key.stop is None else key.stop - begin
        rank = len(x.shape) if x.shape is not None else 1
        begins = (begin,) + (0,) * (rank - 1)
        sizes = (size,) + (-1,) * (rank - 1)
        return slice_(x, begins, sizes)
    raise TypeError(f"unsupported index {key!r}")


# -- shape introspection -------------------------------------------------------

register_op(
    "Shape",
    infer=lambda op: [(dtypes.int64,
                       (len(op.inputs[0].shape),)
                       if op.inputs[0].shape is not None else None)],
    kernel=lambda op, inputs, ctx: [np.asarray(np.shape(inputs[0]),
                                               dtype=np.int64)],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)


def shape_of(x, name="shape") -> Tensor:
    return out1("Shape", [x], name=name)


register_op(
    "Size",
    infer=lambda op: [(dtypes.int64, ())],
    kernel=lambda op, inputs, ctx: [np.asarray(np.size(inputs[0]),
                                               dtype=np.int64)],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)


def size_of(x, name="size") -> Tensor:
    return out1("Size", [x], name=name)


# -- batched kernels (cross-instance dynamic micro-batching) -----------------

def _batched_gather(ops, inputs_list, ctxs):
    """Fuse many lookups into one ``np.take`` when they read the same table.

    The common case is the embedding lookup of many concurrent tree leaves:
    every member gathers from the *same* variable value, so stacking the
    index operands gives one vectorized row-gather.  Distinct tables fall
    back to the member loop.
    """
    params = inputs_list[0][0]
    if (isinstance(params, np.ndarray)
            and all(inputs[0] is params for inputs in inputs_list)):
        idx = np.stack([np.asarray(inputs[1]) for inputs in inputs_list])
        out = np.take(params, idx, axis=0)
        return [[out[i]] for i in range(len(inputs_list))]
    return [[np.take(inputs[0], inputs[1], axis=0)]
            for inputs in inputs_list]


def _batched_gather_grad(ops, inputs_list, ctxs):
    """Fused embedding-scatter: N dense table gradients in one scatter-add.

    The backward-pass hot path of every leaf frame is ``GatherGrad`` — a
    dense ``zeros_like(table)`` with ``np.add.at`` scatter per member.
    Stacking members along a new axis 0 and prefixing the index operand
    with the member index turns the bucket into *one* ``np.add.at`` call.
    Iteration order of the combined call is member-major and preserves
    each member's own index order, so every member's slice accumulates in
    exactly the order its scalar kernel would — bit-identical.
    """
    first = inputs_list[0]
    if not all(isinstance(v, np.ndarray) for v in first):
        return [[_gather_grad_kernel(op, inputs, ctx)[0]]
                for op, inputs, ctx in zip(ops, inputs_list, ctxs)]
    if sparse_gather_grads_enabled():
        # O(touched rows) per member: no [n, vocab, embed] scratch at all.
        return [[IndexedSlices.from_scatter(inputs[1], inputs[0],
                                            inputs[2].shape,
                                            dtype=inputs[2].dtype)]
                for inputs in inputs_list]
    # Dense path: fuse per distinct table so a bucket mixing embedding
    # tables still vectorizes instead of degrading to the scalar loop.
    results: list = [None] * len(inputs_list)
    groups: dict = {}
    for i, inputs in enumerate(inputs_list):
        groups.setdefault(id(inputs[2]), []).append(i)
    for members in groups.values():
        params = inputs_list[members[0]][2]
        n = len(members)
        g = np.stack([inputs_list[i][0] for i in members])
        idx = np.stack([np.asarray(inputs_list[i][1]) for i in members])
        out = np.zeros((n,) + params.shape, dtype=params.dtype)
        member = np.arange(n).reshape((n,) + (1,) * (idx.ndim - 1))
        np.add.at(out, (np.broadcast_to(member, idx.shape), idx), g)
        for j, i in enumerate(members):
            results[i] = [out[j]]
    return results


def _batched_transpose(ops, inputs_list, ctxs):
    """Stacked transpose (the matmul-grad companion): member permutations
    shift by one past the new leading batch axis."""
    x0 = inputs_list[0][0]
    if not isinstance(x0, np.ndarray):
        return [[np.transpose(inputs[0], ops[0].attrs.get("perm"))]
                for inputs in inputs_list]
    perm = ops[0].attrs.get("perm")
    if perm is None:
        perm = tuple(reversed(range(x0.ndim)))
    x = np.stack([inputs[0] for inputs in inputs_list])
    out = np.transpose(x, (0,) + tuple(p + 1 for p in perm))
    return [[out[i]] for i in range(len(inputs_list))]


def _batched_reshape(ops, inputs_list, ctxs):
    target = tuple(ops[0].attrs["shape"])
    x0 = inputs_list[0][0]
    if not isinstance(x0, np.ndarray) or any(d < 0 for d in target):
        return [[np.reshape(inputs[0], ops[0].attrs["shape"])]
                for inputs in inputs_list]
    x = np.stack([inputs[0] for inputs in inputs_list])
    out = np.reshape(x, (len(inputs_list),) + target)
    return [[out[i]] for i in range(len(inputs_list))]


def _batched_concat(ops, inputs_list, ctxs):
    axis = ops[0].attrs["axis"]
    first = inputs_list[0]
    if axis < 0 or not all(isinstance(v, np.ndarray) for v in first):
        return [[np.concatenate(inputs, axis=ops[0].attrs["axis"])]
                for inputs in inputs_list]
    cols = [np.stack([inputs[j] for inputs in inputs_list])
            for j in range(len(first))]
    out = np.concatenate(cols, axis=axis + 1)
    return [[out[i]] for i in range(len(inputs_list))]


def _stacked_axis_op(np_fn):
    """ExpandDims/Squeeze over stacked members: non-negative member axes
    shift by one past the new batch axis; negative axes are unchanged."""
    def batched(ops, inputs_list, ctxs):
        axis = ops[0].attrs["axis"]
        if not isinstance(inputs_list[0][0], np.ndarray):
            return [[np_fn(inputs[0], axis)] for inputs in inputs_list]
        x = np.stack([inputs[0] for inputs in inputs_list])
        out = np_fn(x, axis + 1 if axis >= 0 else axis)
        return [[out[i]] for i in range(len(inputs_list))]
    return batched


def _register_batched_array():
    from repro.graph.registry import register_batched_kernel

    register_batched_kernel("Gather", _batched_gather)
    register_batched_kernel("Reshape", _batched_reshape,
                            batch_attrs=("shape",))
    register_batched_kernel("Concat", _batched_concat, batch_attrs=("axis",))
    register_batched_kernel("ExpandDims", _stacked_axis_op(np.expand_dims),
                            batch_attrs=("axis",))
    register_batched_kernel("Squeeze", _stacked_axis_op(np.squeeze),
                            batch_attrs=("axis",))
    # Backward-pass hot kernels: fused scatter-add for embedding gradients
    # and stacked permutation for the matmul-grad transposes.
    register_batched_kernel("GatherGrad", _batched_gather_grad)
    register_batched_kernel("Transpose", _batched_transpose,
                            batch_attrs=("perm",))
    # Member-loop only: their entire cost is the per-op engine overhead.
    register_batched_kernel("ZerosLike")
    register_batched_kernel("OnesLike")


_register_batched_array()
