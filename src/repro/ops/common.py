"""Shared helpers for building graph operations.

All functional op constructors (``ops.add``, ``ops.matmul``, ...) go through
:func:`build`, which

* wraps raw Python/numpy values as ``Const`` operations,
* reroutes tensors from *enclosing* graphs through SubGraph captures (the
  paper's "outer reference" mechanism, Section 5), and
* adds the operation to the current default graph.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.graph import dtypes
from repro.graph.graph import Graph, get_default_graph
from repro.graph.tensor import Tensor

__all__ = ["build", "out1", "convert", "constant", "to_graph",
           "static_broadcast_shape", "elementwise_infer", "like_infer",
           "scalar_infer"]


def constant(value, dtype: Optional[dtypes.DType] = None,
             name: str = "const") -> Tensor:
    """Create a constant tensor in the default graph."""
    arr = dtypes.as_value(value, dtype)
    graph = get_default_graph()
    op = graph.add_op("Const", [], {"value": arr}, name=name)
    return op.outputs[0]


def convert(value, dtype: Optional[dtypes.DType] = None) -> Tensor:
    """Coerce ``value`` to a Tensor (wrapping constants as needed)."""
    if isinstance(value, Tensor):
        return value
    return constant(value, dtype)


def to_graph(tensor: Tensor, graph: Graph) -> Tensor:
    """Make ``tensor`` usable inside ``graph``.

    If the tensor already lives in ``graph`` it is returned unchanged.
    Otherwise ``graph`` must be a SubGraph body whose lexical parent chain
    reaches the tensor's graph; the tensor is then routed through capture
    placeholders level by level (innermost last).
    """
    if tensor.graph is graph:
        return tensor
    if not graph.is_subgraph_body or graph.owning_subgraph is None:
        raise ValueError(
            f"tensor {tensor.name} from graph {tensor.graph.name} cannot be "
            f"used in unrelated graph {graph.name}")
    subgraph = graph.owning_subgraph
    outer = to_graph(tensor, subgraph.parent_graph)
    return subgraph.capture(outer)


def build(op_type: str, inputs: Sequence[Any] = (),
          attrs: Optional[dict] = None, name: Optional[str] = None,
          graph: Optional[Graph] = None) -> list[Tensor]:
    """Add an operation to the default (or given) graph, returning outputs."""
    graph = graph or get_default_graph()
    converted = []
    for value in inputs:
        if not isinstance(value, Tensor):
            with graph.as_default():
                value = convert(value)
        converted.append(to_graph(value, graph))
    op = graph.add_op(op_type, converted, attrs or {}, name=name)
    return list(op.outputs)


def out1(op_type: str, inputs: Sequence[Any] = (),
         attrs: Optional[dict] = None, name: Optional[str] = None,
         graph: Optional[Graph] = None) -> Tensor:
    """Like :func:`build` but for single-output ops."""
    outputs = build(op_type, inputs, attrs, name, graph)
    assert len(outputs) == 1, f"{op_type} produced {len(outputs)} outputs"
    return outputs[0]


# -- static shape helpers --------------------------------------------------

def static_broadcast_shape(a, b):
    """Best-effort numpy broadcast of two static shapes (None = unknown)."""
    if a is None or b is None:
        return None
    out = []
    la, lb = len(a), len(b)
    for i in range(max(la, lb)):
        da = a[la - 1 - i] if i < la else 1
        db = b[lb - 1 - i] if i < lb else 1
        if da is None or db is None:
            out.append(None)
        elif da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        else:
            raise ValueError(f"incompatible static shapes {a} and {b}")
    return tuple(reversed(out))


def elementwise_infer(op):
    """Output spec for a broadcasting binary elementwise op."""
    a, b = op.inputs[0], op.inputs[1]
    return [(a.dtype, static_broadcast_shape(a.shape, b.shape))]


def like_infer(op):
    """Output spec equal to the first input's spec."""
    t = op.inputs[0]
    return [(t.dtype, t.shape)]


def scalar_infer(dtype):
    def infer(op):
        return [(dtype, ())]
    return infer
