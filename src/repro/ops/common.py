"""Shared helpers for building graph operations.

All functional op constructors (``ops.add``, ``ops.matmul``, ...) go through
:func:`build`, which

* wraps raw Python/numpy values as ``Const`` operations,
* reroutes tensors from *enclosing* graphs through SubGraph captures (the
  paper's "outer reference" mechanism, Section 5), and
* adds the operation to the current default graph.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.graph import dtypes
from repro.graph.graph import Graph, get_default_graph
from repro.graph.tensor import Tensor

__all__ = ["build", "out1", "convert", "constant", "to_graph",
           "role_captures", "static_broadcast_shape", "elementwise_infer",
           "like_infer", "scalar_infer", "batched_elementwise",
           "batched_rowwise"]


def role_captures(op, role: str) -> tuple:
    """``(placeholder_op_id, input_position)`` pairs of ``op``'s captures
    for one role, grouped once and memoized on the op.

    Call sites are patched with captures only until their target
    SubGraphs finalize (episode close), which necessarily precedes any
    execution — so grouping at first execution sees the final
    ``capture_map`` and every later frame spawn skips the per-spawn scan.
    """
    memo = op.attrs.get("_role_captures")
    if memo is None:
        grouped: dict = {}
        for r, placeholder_id, position in op.attrs.get("capture_map", ()):
            grouped.setdefault(r, []).append((placeholder_id, position))
        memo = {r: tuple(pairs) for r, pairs in grouped.items()}
        op.attrs["_role_captures"] = memo
    return memo.get(role, ())


def constant(value, dtype: Optional[dtypes.DType] = None,
             name: str = "const") -> Tensor:
    """Create a constant tensor in the default graph."""
    arr = dtypes.as_value(value, dtype)
    graph = get_default_graph()
    op = graph.add_op("Const", [], {"value": arr}, name=name)
    return op.outputs[0]


def convert(value, dtype: Optional[dtypes.DType] = None) -> Tensor:
    """Coerce ``value`` to a Tensor (wrapping constants as needed)."""
    if isinstance(value, Tensor):
        return value
    return constant(value, dtype)


def to_graph(tensor: Tensor, graph: Graph) -> Tensor:
    """Make ``tensor`` usable inside ``graph``.

    If the tensor already lives in ``graph`` it is returned unchanged.
    Otherwise ``graph`` must be a SubGraph body whose lexical parent chain
    reaches the tensor's graph; the tensor is then routed through capture
    placeholders level by level (innermost last).
    """
    if tensor.graph is graph:
        return tensor
    if not graph.is_subgraph_body or graph.owning_subgraph is None:
        raise ValueError(
            f"tensor {tensor.name} from graph {tensor.graph.name} cannot be "
            f"used in unrelated graph {graph.name}")
    subgraph = graph.owning_subgraph
    outer = to_graph(tensor, subgraph.parent_graph)
    return subgraph.capture(outer)


def build(op_type: str, inputs: Sequence[Any] = (),
          attrs: Optional[dict] = None, name: Optional[str] = None,
          graph: Optional[Graph] = None) -> list[Tensor]:
    """Add an operation to the default (or given) graph, returning outputs."""
    graph = graph or get_default_graph()
    converted = []
    for value in inputs:
        if not isinstance(value, Tensor):
            with graph.as_default():
                value = convert(value)
        converted.append(to_graph(value, graph))
    op = graph.add_op(op_type, converted, attrs or {}, name=name)
    return list(op.outputs)


def out1(op_type: str, inputs: Sequence[Any] = (),
         attrs: Optional[dict] = None, name: Optional[str] = None,
         graph: Optional[Graph] = None) -> Tensor:
    """Like :func:`build` but for single-output ops."""
    outputs = build(op_type, inputs, attrs, name, graph)
    assert len(outputs) == 1, f"{op_type} produced {len(outputs)} outputs"
    return outputs[0]


# -- static shape helpers --------------------------------------------------

def static_broadcast_shape(a, b):
    """Best-effort numpy broadcast of two static shapes (None = unknown)."""
    if a is None or b is None:
        return None
    out = []
    la, lb = len(a), len(b)
    for i in range(max(la, lb)):
        da = a[la - 1 - i] if i < la else 1
        db = b[lb - 1 - i] if i < lb else 1
        if da is None or db is None:
            out.append(None)
        elif da == 1:
            out.append(db)
        elif db == 1 or da == db:
            out.append(da)
        else:
            raise ValueError(f"incompatible static shapes {a} and {b}")
    return tuple(reversed(out))


def elementwise_infer(op):
    """Output spec for a broadcasting binary elementwise op."""
    a, b = op.inputs[0], op.inputs[1]
    return [(a.dtype, static_broadcast_shape(a.shape, b.shape))]


def like_infer(op):
    """Output spec equal to the first input's spec."""
    t = op.inputs[0]
    return [(t.dtype, t.shape)]


def scalar_infer(dtype):
    def infer(op):
        return [(dtype, ())]
    return infer


# -- batched-kernel builders -------------------------------------------------
#
# Factories for the registry's ``batched_kernel`` slot (cross-instance
# dynamic micro-batching, :mod:`repro.runtime.batching`).  Each returned
# kernel receives parallel lists ``(ops, inputs_list, ctxs)`` for the
# instances of one bucket — all sharing a batch signature, so input kinds,
# dtypes and shapes are identical across members — and must produce outputs
# bit-identical to the scalar kernel.  When a vectorized formulation cannot
# guarantee that (non-ndarray inputs), the builders fall back to looping the
# scalar kernel, which still amortizes per-op engine overhead.

def _loop_members(kernel, ops, inputs_list, ctxs):
    return [kernel(op, inputs, ctx)
            for op, inputs, ctx in zip(ops, inputs_list, ctxs)]


def _all_ndarray(inputs):
    return all(isinstance(v, np.ndarray) for v in inputs)


def batched_elementwise(fn, kernel):
    """Vectorize an n-ary elementwise op by stacking along a new axis 0.

    Members may use numpy broadcasting internally (e.g. ``[1,H] + [H]``);
    each input is broadcast to the member result shape *before* stacking so
    the stacked application is exactly the per-member one.
    """
    def batched(ops, inputs_list, ctxs):
        first = inputs_list[0]
        if not _all_ndarray(first):
            return _loop_members(kernel, ops, inputs_list, ctxs)
        shape = np.broadcast_shapes(*(v.shape for v in first))
        cols = [np.stack([np.broadcast_to(member[j], shape)
                          for member in inputs_list])
                for j in range(len(first))]
        out = fn(*cols)
        return [[out[i]] for i in range(len(inputs_list))]
    return batched


def batched_rowwise(kernel):
    """Vectorize a kernel whose math is independent along leading axes.

    Valid for kernels built purely from elementwise ufuncs and reductions
    over ``axis=-1`` (softmax, cross-entropy, ...): stacking members along
    a new axis 0 leaves every per-member row computation untouched, so one
    kernel call over the stacked inputs is bit-identical to member calls.
    """
    def batched(ops, inputs_list, ctxs):
        first = inputs_list[0]
        if not _all_ndarray(first):
            return _loop_members(kernel, ops, inputs_list, ctxs)
        stacked = [np.stack([member[j] for member in inputs_list])
                   for j in range(len(first))]
        outs = kernel(ops[0], stacked, ctxs[0])
        return [[out[i] for out in outs] for i in range(len(inputs_list))]
    return batched
