"""Embedded control flow: conditionals and iterative loops.

These are the control-flow constructs of embedded-control-flow frameworks
(paper Section 2.1): a ``Cond`` operation lazily executes exactly one of
two branch SubGraphs based on a runtime predicate, and a ``Loop``
operation repeatedly executes a body SubGraph while a condition SubGraph
returns true.  Both reuse the frame machinery that powers InvokeOp, so all
control flow in this framework is expressed as "an operation abstracting
the execution of a SubGraph" — recursion (InvokeOp) is the general case,
as the paper argues.

The gradient operations (``CondGrad``, ``LoopGrad``) re-derive the forward
frame keys structurally and read forward activations from the backprop
value cache.  A backward loop runs its gradient-body frames in reverse
iteration order.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.cache import child_key
from repro.core.subgraph import SubGraph, SubGraphError
from repro.graph import dtypes
from repro.graph.graph import get_default_graph
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import build, convert, role_captures

__all__ = ["cond", "while_loop"]


def _as_tuple(value) -> tuple:
    if isinstance(value, (tuple, list)):
        return tuple(value)
    return (value,)


def _branch_bindings(op, inputs, role: str) -> dict:
    return {placeholder_id: inputs[position]
            for placeholder_id, position in role_captures(op, role)}


# -- cond ----------------------------------------------------------------------


def _cond_infer(op):
    return list(op.attrs["true_subgraph"].output_specs)


def _cond_starter(scheduler, inst, inputs):
    op = inst.op
    # per-branch spawn constants, resolved once per op at first execution
    spec = op.attrs.get("_spawn_spec")
    if spec is None:
        spec = {role: (op.attrs[f"{role}_subgraph"],
                       role_captures(op, role),
                       op.attrs[f"{role}_subgraph"].output_locs)
                for role in ("true", "false")}
        op.attrs["_spawn_spec"] = spec
    pred = bool(np.asarray(inputs[0]))
    subgraph, captures, output_locs = spec["true" if pred else "false"]
    bindings = {placeholder_id: inputs[position]
                for placeholder_id, position in captures}
    key = child_key(inst.frame.key, op.id)

    def on_complete(frame):
        scheduler.finish_async(inst, frame.values_at(output_locs))

    frame = scheduler.spawn_frame(subgraph, bindings, key,
                                  inst.frame.depth + 1, on_complete, inst)
    # partial compilation: a spine frame whose recursion hides behind a
    # lone Cond stashed its children profiles under this op id — thread
    # them into the chosen branch frame's call sites
    rec = inst.frame.rec_profiles
    if rec is not None:
        entry = rec.get(op.id)
        if entry is not None and entry[0] == "cond":
            scheduler._attach_child_profiles(frame, entry[1], entry[2])


register_op("Cond", infer=_cond_infer, is_async=True, starter=_cond_starter,
            cost="cond")


def cond(pred, true_fn: Callable, false_fn: Callable,
         name: str = "cond"):
    """Execute ``true_fn()``'s graph if ``pred`` else ``false_fn()``'s.

    Unlike :func:`repro.ops.select`, only the chosen branch is executed.
    Both branch functions take no arguments and communicate with the
    enclosing graph through outer references (automatic captures).  They
    must produce the same number of outputs with matching dtypes.
    """
    true_sg = SubGraph(f"{name}_true")
    with true_sg:
        true_sg.output(*_as_tuple(true_fn()))
    false_sg = SubGraph(f"{name}_false")
    with false_sg:
        false_sg.output(*_as_tuple(false_fn()))
    t_specs, f_specs = true_sg.output_specs, false_sg.output_specs
    if len(t_specs) != len(f_specs):
        raise SubGraphError(
            f"cond branches disagree on output count: {len(t_specs)} vs "
            f"{len(f_specs)}")
    for i, ((td, _), (fd, _)) in enumerate(zip(t_specs, f_specs)):
        if td != fd:
            raise SubGraphError(
                f"cond branches disagree on output {i} dtype: "
                f"{td.name} vs {fd.name}")
    attrs = {"true_subgraph": true_sg, "false_subgraph": false_sg,
             "capture_map": []}
    outputs = build("Cond", [pred], attrs, name=name)
    op = outputs[0].op
    if not op.inputs[0].dtype.is_bool:
        raise SubGraphError("cond predicate must be a bool tensor")
    true_sg.register_site(op, "true")
    false_sg.register_site(op, "false")
    if len(outputs) == 1:
        return outputs[0]
    return tuple(outputs)


# -- while loop ------------------------------------------------------------------


def _loop_infer(op):
    return list(op.attrs["body_subgraph"].output_specs)


def _loop_starter(scheduler, inst, inputs):
    op = inst.op
    n_vars = op.attrs["n_vars"]
    cond_sg: SubGraph = op.attrs["cond_subgraph"]
    body_sg: SubGraph = op.attrs["body_subgraph"]
    max_iters = op.attrs.get("max_iters", 1_000_000)
    cond_captures = _branch_bindings(op, inputs, "cond")
    body_captures = _branch_bindings(op, inputs, "body")
    state = {"i": 0, "vars": list(inputs[:n_vars])}
    parent_key = inst.frame.key
    depth = inst.frame.depth + 1
    step_overhead = scheduler.cost_model.loop_step_overhead(n_vars)

    def run_cond():
        bindings = dict(cond_captures)
        bindings.update(zip(cond_sg.input_op_ids, state["vars"]))
        key = child_key(parent_key, (op.id, state["i"], "cond"))
        scheduler.spawn_frame(cond_sg, bindings, key, depth, cond_done, inst)

    def cond_done(frame):
        keep_going = bool(np.asarray(
            frame.value_of(cond_sg.output_tensors[0])))
        if keep_going:
            if state["i"] >= max_iters:
                raise RuntimeError(
                    f"while_loop {op.name} exceeded max_iters={max_iters}")
            scheduler.post_continuation(step_overhead, run_body)
        else:
            if scheduler.record:
                scheduler.runtime.cache.store_meta((parent_key, op.id),
                                                state["i"])
            scheduler.finish_async(inst, list(state["vars"]))

    def run_body():
        bindings = dict(body_captures)
        bindings.update(zip(body_sg.input_op_ids, state["vars"]))
        key = child_key(parent_key, (op.id, state["i"]))
        scheduler.spawn_frame(body_sg, bindings, key, depth, body_done, inst)

    def body_done(frame):
        state["vars"] = [frame.value_of(t) for t in body_sg.output_tensors]
        state["i"] += 1
        run_cond()

    run_cond()


register_op("Loop", infer=_loop_infer, is_async=True, starter=_loop_starter,
            cost="loop")


def while_loop(cond_fn: Callable, body_fn: Callable, loop_vars: Sequence,
               name: str = "while", max_iters: int = 1_000_000):
    """Iteratively run ``body_fn`` while ``cond_fn`` holds.

    ``cond_fn(*vars) -> bool tensor`` and ``body_fn(*vars) -> new vars``
    receive one placeholder per loop variable.  Returns the final loop
    variables (a tuple, or a single tensor for one variable).
    """
    graph = get_default_graph()
    with graph.as_default():
        init_vars = [convert(v) for v in loop_vars]
    specs = [(v.dtype, v.shape) for v in init_vars]

    cond_sg = SubGraph(f"{name}_cond")
    with cond_sg:
        placeholders = [cond_sg.input(d, s, name=f"var{i}")
                        for i, (d, s) in enumerate(specs)]
        cond_sg.output(cond_fn(*placeholders))
    if not cond_sg.output_tensors[0].dtype.is_bool:
        raise SubGraphError("while_loop condition must produce a bool")

    body_sg = SubGraph(f"{name}_body")
    with body_sg:
        placeholders = [body_sg.input(d, s, name=f"var{i}")
                        for i, (d, s) in enumerate(specs)]
        body_sg.output(*_as_tuple(body_fn(*placeholders)))
    if len(body_sg.output_tensors) != len(init_vars):
        raise SubGraphError(
            f"while_loop body returned {len(body_sg.output_tensors)} values "
            f"for {len(init_vars)} loop variables")
    for i, (t, (d, _)) in enumerate(zip(body_sg.output_tensors, specs)):
        if t.dtype != d:
            raise SubGraphError(
                f"loop variable {i} changed dtype: {d.name} -> "
                f"{t.dtype.name}")

    attrs = {"cond_subgraph": cond_sg, "body_subgraph": body_sg,
             "n_vars": len(init_vars), "capture_map": [],
             "max_iters": max_iters}
    outputs = build("Loop", init_vars, attrs, name=name)
    op = outputs[0].op
    cond_sg.register_site(op, "cond")
    body_sg.register_site(op, "body")
    if len(outputs) == 1:
        return outputs[0]
    return tuple(outputs)
