"""Arithmetic, transcendental, comparison and selection operations.

Each operation registers a numpy kernel, static output inference and a
gradient function.  Binary elementwise ops broadcast per numpy rules; their
gradients are wrapped in ``ReduceToLike`` so that broadcast dimensions are
summed back out at run time.
"""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import (batched_elementwise, build, constant, convert,
                     elementwise_infer, like_infer, out1)

__all__ = [
    "constant", "placeholder", "identity", "add", "subtract", "multiply",
    "divide", "negative", "matmul", "tanh", "sigmoid", "relu", "exp", "log",
    "square", "sqrt", "maximum", "minimum", "abs_", "sign",
    "equal", "not_equal", "less", "less_equal", "greater", "greater_equal",
    "logical_and", "logical_or", "logical_not", "select", "cast",
    "reduce_to_like",
]


# -- sources ---------------------------------------------------------------

def _const_infer(op):
    value = op.attrs["value"]
    if isinstance(value, np.ndarray):
        return [(dtypes.from_numpy(value), value.shape)]
    return [(dtypes.variant, None)]


register_op(
    "Const",
    infer=_const_infer,
    kernel=lambda op, inputs, ctx: [op.attrs["value"]],
    grad=lambda gb, op, grads: [],
    cost="trivial",
)


def _placeholder_infer(op):
    return [(op.attrs["dtype"], op.attrs.get("shape"))]


def _placeholder_kernel(op, inputs, ctx):
    raise RuntimeError(
        f"placeholder {op.name} was not fed; pass it in feed_dict or bind it "
        "as a SubGraph input")


register_op(
    "Placeholder",
    infer=_placeholder_infer,
    kernel=_placeholder_kernel,
    grad=lambda gb, op, grads: [],
    cost="trivial",
)


def placeholder(dtype, shape=None, name="placeholder") -> Tensor:
    """A value supplied at run time via ``feed_dict`` (or SubGraph binding)."""
    return out1("Placeholder", [],
                {"dtype": dtypes.as_dtype(dtype), "shape": shape}, name=name)


register_op(
    "Identity",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [inputs[0]],
    grad=lambda gb, op, grads: [grads[0]],
    cost="trivial",
)


def identity(x, name="identity") -> Tensor:
    return out1("Identity", [x], name=name)


# -- broadcast gradient helper ---------------------------------------------

def _reduce_to_shape(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == tuple(shape):
        return grad
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, (gdim, sdim) in enumerate(zip(grad.shape, shape)):
        if sdim == 1 and gdim != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


register_op(
    "ReduceToLike",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[1].shape)],
    kernel=lambda op, inputs, ctx: [_reduce_to_shape(inputs[0],
                                                     inputs[1].shape)],
    grad=None,  # only appears in backward graphs
    cost="elementwise",
)


def reduce_to_like(grad, ref) -> Tensor:
    """Sum ``grad`` over broadcast dimensions so it matches ``ref``'s shape."""
    return out1("ReduceToLike", [grad, ref])


def _bcast_grads(gb, op, pairs):
    """Wrap raw per-input gradients with ReduceToLike against each input."""
    out = []
    for raw, inp in zip(pairs, op.inputs):
        if raw is None or not inp.dtype.is_floating:
            out.append(None)
        else:
            out.append(reduce_to_like(raw, gb.val(inp)))
    return out


# -- binary arithmetic -------------------------------------------------------

register_op(
    "Add",
    infer=elementwise_infer,
    kernel=lambda op, inputs, ctx: [inputs[0] + inputs[1]],
    grad=lambda gb, op, g: _bcast_grads(gb, op, [g[0], g[0]]),
    cost="elementwise",
)

register_op(
    "Sub",
    infer=elementwise_infer,
    kernel=lambda op, inputs, ctx: [inputs[0] - inputs[1]],
    grad=lambda gb, op, g: _bcast_grads(gb, op, [g[0], negative(g[0])]),
    cost="elementwise",
)

register_op(
    "Mul",
    infer=elementwise_infer,
    kernel=lambda op, inputs, ctx: [inputs[0] * inputs[1]],
    grad=lambda gb, op, g: _bcast_grads(
        gb, op,
        [multiply(g[0], gb.val(op.inputs[1])),
         multiply(g[0], gb.val(op.inputs[0]))]),
    cost="elementwise",
)


def _div_kernel(op, inputs, ctx):
    return [inputs[0] / inputs[1]]


def _div_grad(gb, op, g):
    x, y = gb.val(op.inputs[0]), gb.val(op.inputs[1])
    gx = divide(g[0], y)
    gy = negative(divide(multiply(g[0], x), multiply(y, y)))
    return _bcast_grads(gb, op, [gx, gy])


register_op("Div", infer=elementwise_infer, kernel=_div_kernel,
            grad=_div_grad, cost="elementwise")


def add(x, y, name="add") -> Tensor:
    return out1("Add", [x, y], name=name)


def subtract(x, y, name="sub") -> Tensor:
    return out1("Sub", [x, y], name=name)


def multiply(x, y, name="mul") -> Tensor:
    return out1("Mul", [x, y], name=name)


def divide(x, y, name="div") -> Tensor:
    return out1("Div", [x, y], name=name)


# -- unary math --------------------------------------------------------------

register_op(
    "Neg",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [-inputs[0]],
    grad=lambda gb, op, g: [negative(g[0])],
    cost="elementwise",
)


def negative(x, name="neg") -> Tensor:
    return out1("Neg", [x], name=name)


register_op(
    "Tanh",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.tanh(inputs[0])],
    grad=lambda gb, op, g: [multiply(
        g[0], subtract(1.0, square(gb.val(op.outputs[0]))))],
    cost="elementwise",
)


def tanh(x, name="tanh") -> Tensor:
    return out1("Tanh", [x], name=name)


def _sigmoid(x):
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


register_op(
    "Sigmoid",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [_sigmoid(np.asarray(inputs[0]))],
    grad=lambda gb, op, g: [multiply(g[0], multiply(
        gb.val(op.outputs[0]),
        subtract(1.0, gb.val(op.outputs[0]))))],
    cost="elementwise",
)


def sigmoid(x, name="sigmoid") -> Tensor:
    return out1("Sigmoid", [x], name=name)


register_op(
    "Relu",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.maximum(inputs[0], 0)],
    grad=lambda gb, op, g: [multiply(
        g[0], cast(greater(gb.val(op.inputs[0]), 0.0),
                   op.inputs[0].dtype))],
    cost="elementwise",
)


def relu(x, name="relu") -> Tensor:
    return out1("Relu", [x], name=name)


register_op(
    "Exp",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.exp(inputs[0])],
    grad=lambda gb, op, g: [multiply(g[0], gb.val(op.outputs[0]))],
    cost="elementwise",
)


def exp(x, name="exp") -> Tensor:
    return out1("Exp", [x], name=name)


register_op(
    "Log",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.log(inputs[0])],
    grad=lambda gb, op, g: [divide(g[0], gb.val(op.inputs[0]))],
    cost="elementwise",
)


def log(x, name="log") -> Tensor:
    return out1("Log", [x], name=name)


register_op(
    "Square",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.square(inputs[0])],
    grad=lambda gb, op, g: [multiply(g[0],
                                     multiply(2.0, gb.val(op.inputs[0])))],
    cost="elementwise",
)


def square(x, name="square") -> Tensor:
    return out1("Square", [x], name=name)


register_op(
    "Sqrt",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.sqrt(inputs[0])],
    grad=lambda gb, op, g: [divide(g[0],
                                   multiply(2.0, gb.val(op.outputs[0])))],
    cost="elementwise",
)


def sqrt(x, name="sqrt") -> Tensor:
    return out1("Sqrt", [x], name=name)


register_op(
    "Abs",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.abs(inputs[0])],
    grad=lambda gb, op, g: [multiply(g[0], sign(gb.val(op.inputs[0])))],
    cost="elementwise",
)


def abs_(x, name="abs") -> Tensor:
    return out1("Abs", [x], name=name)


register_op(
    "Sign",
    infer=like_infer,
    kernel=lambda op, inputs, ctx: [np.sign(inputs[0])],
    grad=lambda gb, op, g: [None],
    cost="elementwise",
)


def sign(x, name="sign") -> Tensor:
    return out1("Sign", [x], name=name)


def _maximum_grad(gb, op, g):
    x, y = gb.val(op.inputs[0]), gb.val(op.inputs[1])
    mask = cast(greater_equal(x, y), op.inputs[0].dtype)
    return _bcast_grads(gb, op, [multiply(g[0], mask),
                                 multiply(g[0], subtract(1.0, mask))])


register_op(
    "Maximum",
    infer=elementwise_infer,
    kernel=lambda op, inputs, ctx: [np.maximum(inputs[0], inputs[1])],
    grad=_maximum_grad,
    cost="elementwise",
)


def maximum(x, y, name="maximum") -> Tensor:
    return out1("Maximum", [x, y], name=name)


def _minimum_grad(gb, op, g):
    x, y = gb.val(op.inputs[0]), gb.val(op.inputs[1])
    mask = cast(less_equal(x, y), op.inputs[0].dtype)
    return _bcast_grads(gb, op, [multiply(g[0], mask),
                                 multiply(g[0], subtract(1.0, mask))])


register_op(
    "Minimum",
    infer=elementwise_infer,
    kernel=lambda op, inputs, ctx: [np.minimum(inputs[0], inputs[1])],
    grad=_minimum_grad,
    cost="elementwise",
)


def minimum(x, y, name="minimum") -> Tensor:
    return out1("Minimum", [x, y], name=name)


# -- matmul ------------------------------------------------------------------

def _matmul_infer(op):
    a, b = op.inputs
    if not (a.dtype.is_floating and b.dtype.is_floating):
        raise TypeError("MatMul requires floating inputs")
    shape = None
    if a.shape is not None and b.shape is not None:
        if len(a.shape) != 2 or len(b.shape) != 2:
            raise ValueError(f"MatMul expects rank-2 inputs, got "
                             f"{a.shape} @ {b.shape}")
        if (a.shape[1] is not None and b.shape[0] is not None
                and a.shape[1] != b.shape[0]):
            raise ValueError(f"MatMul inner dims differ: {a.shape} @ {b.shape}")
        shape = (a.shape[0], b.shape[1])
    return [(a.dtype, shape)]


def _matmul_grad(gb, op, g):
    a, b = gb.val(op.inputs[0]), gb.val(op.inputs[1])
    from .array_ops import transpose
    return [matmul(g[0], transpose(b)), matmul(transpose(a), g[0])]


register_op(
    "MatMul",
    infer=_matmul_infer,
    kernel=lambda op, inputs, ctx: [inputs[0] @ inputs[1]],
    grad=_matmul_grad,
    cost="matmul",
)


def matmul(a, b, name="matmul") -> Tensor:
    """Rank-2 matrix product."""
    return out1("MatMul", [a, b], name=name)


# -- comparisons and logic ---------------------------------------------------

def _cmp_infer(op):
    from .common import static_broadcast_shape
    return [(dtypes.bool_,
             static_broadcast_shape(op.inputs[0].shape, op.inputs[1].shape))]


def _register_cmp(name, fn):
    register_op(name, infer=_cmp_infer,
                kernel=lambda op, inputs, ctx, _fn=fn: [_fn(inputs[0],
                                                            inputs[1])],
                grad=lambda gb, op, g: [None, None],
                cost="elementwise")


_register_cmp("Equal", lambda a, b: np.equal(a, b))
_register_cmp("NotEqual", lambda a, b: np.not_equal(a, b))
_register_cmp("Less", lambda a, b: np.less(a, b))
_register_cmp("LessEqual", lambda a, b: np.less_equal(a, b))
_register_cmp("Greater", lambda a, b: np.greater(a, b))
_register_cmp("GreaterEqual", lambda a, b: np.greater_equal(a, b))
_register_cmp("LogicalAnd", lambda a, b: np.logical_and(a, b))
_register_cmp("LogicalOr", lambda a, b: np.logical_or(a, b))


def equal(x, y, name="equal") -> Tensor:
    return out1("Equal", [x, y], name=name)


def not_equal(x, y, name="not_equal") -> Tensor:
    return out1("NotEqual", [x, y], name=name)


def less(x, y, name="less") -> Tensor:
    return out1("Less", [x, y], name=name)


def less_equal(x, y, name="less_equal") -> Tensor:
    return out1("LessEqual", [x, y], name=name)


def greater(x, y, name="greater") -> Tensor:
    return out1("Greater", [x, y], name=name)


def greater_equal(x, y, name="greater_equal") -> Tensor:
    return out1("GreaterEqual", [x, y], name=name)


def logical_and(x, y, name="logical_and") -> Tensor:
    return out1("LogicalAnd", [x, y], name=name)


def logical_or(x, y, name="logical_or") -> Tensor:
    return out1("LogicalOr", [x, y], name=name)


register_op(
    "LogicalNot",
    infer=lambda op: [(dtypes.bool_, op.inputs[0].shape)],
    kernel=lambda op, inputs, ctx: [np.logical_not(inputs[0])],
    grad=lambda gb, op, g: [None],
    cost="elementwise",
)


def logical_not(x, name="logical_not") -> Tensor:
    return out1("LogicalNot", [x], name=name)


def _select_infer(op):
    t = op.inputs[1]
    return [(t.dtype, t.shape)]


def _select_grad(gb, op, g):
    cond = gb.val(op.inputs[0])
    zeros = multiply(g[0], 0.0)
    return [None, select(cond, g[0], zeros), select(cond, zeros, g[0])]


register_op(
    "Select",
    infer=_select_infer,
    kernel=lambda op, inputs, ctx: [np.where(inputs[0], inputs[1],
                                             inputs[2])],
    grad=_select_grad,
    cost="elementwise",
)


def select(condition, x, y, name="select") -> Tensor:
    """Elementwise ``condition ? x : y`` (both branches are computed —
    use :func:`repro.cond` to *avoid* computing one side)."""
    return out1("Select", [condition, x, y], name=name)


# -- cast --------------------------------------------------------------------

def _cast_infer(op):
    return [(op.attrs["dtype"], op.inputs[0].shape)]


def _cast_grad(gb, op, g):
    src = op.inputs[0].dtype
    if src.is_floating and op.attrs["dtype"].is_floating:
        return [cast(g[0], src)]
    return [None]


register_op(
    "Cast",
    infer=_cast_infer,
    kernel=lambda op, inputs, ctx: [
        np.asarray(inputs[0]).astype(op.attrs["dtype"].np_dtype)],
    grad=_cast_grad,
    cost="elementwise",
)


def cast(x, dtype, name="cast") -> Tensor:
    return out1("Cast", [x], {"dtype": dtypes.as_dtype(dtype)}, name=name)


# -- batched kernels (cross-instance dynamic micro-batching) -----------------
#
# Vectorized many-instance kernels for the hot math ops, used when an
# engine runs with ``batching=True`` (see repro.runtime.batching).  All of
# them are value-preserving: elementwise ufuncs applied to stacked member
# inputs and per-slice gufunc matmuls produce bit-identical results to the
# scalar kernels, which the equivalence tests assert.

def _batched_matmul(ops, inputs_list, ctxs):
    first = inputs_list[0]
    if not (isinstance(first[0], np.ndarray)
            and isinstance(first[1], np.ndarray)
            and first[0].ndim == 2 and first[1].ndim == 2):
        return [[inputs[0] @ inputs[1]] for inputs in inputs_list]
    a = np.stack([inputs[0] for inputs in inputs_list])
    b = np.stack([inputs[1] for inputs in inputs_list])
    out = np.matmul(a, b)  # gufunc: one BLAS call per member slice
    return [[out[i]] for i in range(len(inputs_list))]


def _batched_reduce_to_like(ops, inputs_list, ctxs):
    """Vectorized broadcast-gradient reduction (elementwise-grad hot path).

    ``ReduceToLike`` sums a gradient down to a reference shape; members of
    one bucket share both shapes (the batch signature includes them), so
    the member loop of axis-wise ``sum`` calls becomes axis-shifted sums
    over the stacked array.  ``np.sum`` over one axis of a stacked array
    performs the same reduction per member slice as the per-member call —
    bit-identical.
    """
    first = inputs_list[0]
    if not (isinstance(first[0], np.ndarray)
            and isinstance(first[1], np.ndarray)):
        return [[_reduce_to_shape(inputs[0], np.asarray(inputs[1]).shape)]
                for inputs in inputs_list]
    shape = first[1].shape
    grad = np.stack([inputs[0] for inputs in inputs_list])
    while grad.ndim - 1 > len(shape):
        grad = grad.sum(axis=1)
    for axis, (gdim, sdim) in enumerate(zip(grad.shape[1:], shape)):
        if sdim == 1 and gdim != 1:
            grad = grad.sum(axis=axis + 1, keepdims=True)
    return [[grad[i]] for i in range(len(inputs_list))]


def _batched_cast(ops, inputs_list, ctxs):
    target = ops[0].attrs["dtype"].np_dtype
    x = np.stack([np.asarray(inputs[0]) for inputs in inputs_list])
    out = x.astype(target)
    return [[out[i]] for i in range(len(inputs_list))]


def _register_batched_math():
    from repro.graph.registry import op_def, register_batched_kernel

    register_batched_kernel("MatMul", _batched_matmul)
    register_batched_kernel("Cast", _batched_cast, batch_attrs=("dtype",))

    binary = {"Add": np.add, "Sub": np.subtract, "Mul": np.multiply,
              "Div": np.divide, "Maximum": np.maximum,
              "Minimum": np.minimum, "Equal": np.equal,
              "NotEqual": np.not_equal, "Less": np.less,
              "LessEqual": np.less_equal, "Greater": np.greater,
              "GreaterEqual": np.greater_equal,
              "LogicalAnd": np.logical_and, "LogicalOr": np.logical_or}
    unary = {"Neg": np.negative, "Tanh": np.tanh, "Sigmoid": _sigmoid,
             "Relu": lambda x: np.maximum(x, 0), "Exp": np.exp,
             "Log": np.log, "Square": np.square, "Sqrt": np.sqrt,
             "Abs": np.abs, "Sign": np.sign, "LogicalNot": np.logical_not}
    ternary = {"Select": np.where}
    for name, fn in {**binary, **unary, **ternary}.items():
        register_batched_kernel(
            name, batched_elementwise(fn, op_def(name).kernel))
    # Pure pass-through: the member loop already removes the per-op
    # engine overhead, which is its entire cost.
    register_batched_kernel("Identity")
    # Broadcast-gradient reduction is on every binary elementwise op's
    # backward path; it vectorizes because bucket members share shapes.
    register_batched_kernel("ReduceToLike", _batched_reduce_to_like)


_register_batched_math()
