"""Neural-network specific operations: softmax and fused cross-entropy."""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import out1
from .math_ops import multiply, subtract
from .reduction_ops import reduce_sum

__all__ = ["softmax", "log_softmax", "softmax_cross_entropy_with_logits"]


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x, axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _softmax_grad(gb, op, g):
    y = gb.val(op.outputs[0])
    inner = reduce_sum(multiply(g[0], y), axis=-1, keepdims=True)
    return [multiply(y, subtract(g[0], inner))]


register_op(
    "Softmax",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
    kernel=lambda op, inputs, ctx: [_softmax(np.asarray(inputs[0]))],
    grad=_softmax_grad,
    cost="elementwise",
)


def softmax(logits, name="softmax") -> Tensor:
    """Numerically stable softmax along the last axis."""
    return out1("Softmax", [logits], name=name)


def _log_softmax_kernel(op, inputs, ctx):
    x = np.asarray(inputs[0])
    shifted = x - np.max(x, axis=-1, keepdims=True)
    return [shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))]


def _log_softmax_grad(gb, op, g):
    y = gb.val(op.outputs[0])
    from .math_ops import exp
    total = reduce_sum(g[0], axis=-1, keepdims=True)
    return [subtract(g[0], multiply(exp(y), total))]


register_op(
    "LogSoftmax",
    infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
    kernel=_log_softmax_kernel,
    grad=_log_softmax_grad,
    cost="elementwise",
)


def log_softmax(logits, name="log_softmax") -> Tensor:
    return out1("LogSoftmax", [logits], name=name)


# -- fused cross entropy -----------------------------------------------------

def _ce_infer(op):
    logits = op.inputs[0]
    if logits.shape is None:
        return [(logits.dtype, None)]
    return [(logits.dtype, tuple(logits.shape[:-1]))]


def _ce_kernel(op, inputs, ctx):
    logits = np.asarray(inputs[0])
    labels = np.asarray(inputs[1])
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = np.take_along_axis(log_probs, labels[..., None].astype(np.int64),
                                axis=-1)[..., 0]
    return [(-picked).astype(logits.dtype)]


def _ce_grad(gb, op, g):
    dlogits = out1("SoftmaxCEGrad",
                   [g[0], gb.val(op.inputs[0]), gb.val(op.inputs[1])])
    return [dlogits, None]


def _ce_grad_kernel(op, inputs, ctx):
    g, logits, labels = (np.asarray(v) for v in inputs)
    probs = _softmax(logits)
    onehot = np.zeros_like(probs)
    np.put_along_axis(onehot, labels[..., None].astype(np.int64), 1.0,
                      axis=-1)
    return [((probs - onehot) * g[..., None]).astype(logits.dtype)]


register_op("SoftmaxCrossEntropy", infer=_ce_infer, kernel=_ce_kernel,
            grad=_ce_grad, cost="elementwise")
register_op("SoftmaxCEGrad",
            infer=lambda op: [(op.inputs[1].dtype, op.inputs[1].shape)],
            kernel=_ce_grad_kernel, grad=None, cost="elementwise")


def softmax_cross_entropy_with_logits(logits, labels,
                                      name="softmax_ce") -> Tensor:
    """Per-example cross entropy between ``logits`` and int ``labels``.

    ``logits``: float ``[..., num_classes]``; ``labels``: int ``[...]``.
    Returns the elementwise loss with shape ``[...]``.
    """
    return out1("SoftmaxCrossEntropy", [logits, labels], name=name)


# -- batched kernels (cross-instance dynamic micro-batching) -----------------
#
# Softmax-family kernels compute independently along the last axis, so the
# stacked-members application is bit-identical to per-member calls.

def _register_batched_nn():
    from repro.graph.registry import op_def, register_batched_kernel

    from .common import batched_rowwise

    for name in ("Softmax", "LogSoftmax", "SoftmaxCrossEntropy",
                 "SoftmaxCEGrad"):
        register_batched_kernel(name, batched_rowwise(op_def(name).kernel))


_register_batched_nn()
