"""Reduction operations (sum / mean / max) with axis support."""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import out1

__all__ = ["reduce_sum", "reduce_mean", "reduce_max"]


def _axes(op):
    axis = op.attrs["axis"]
    if axis is None:
        return None
    if isinstance(axis, int):
        return (axis,)
    return tuple(axis)


def _reduce_infer(op):
    x = op.inputs[0]
    axis = _axes(op)
    keepdims = op.attrs["keepdims"]
    if x.shape is None:
        return [(x.dtype, None)]
    rank = len(x.shape)
    if axis is None:
        axis = tuple(range(rank))
    axis = tuple(a if a >= 0 else rank + a for a in axis)
    shape = []
    for i, dim in enumerate(x.shape):
        if i in axis:
            if keepdims:
                shape.append(1)
        else:
            shape.append(dim)
    return [(x.dtype, tuple(shape))]


def _expand_grad_to(g: np.ndarray, ref: np.ndarray, axis, keepdims):
    """Broadcast a reduced gradient back to the reference shape."""
    if axis is None:
        return np.broadcast_to(g, ref.shape)
    if not keepdims:
        axes = tuple(a if a >= 0 else ref.ndim + a for a in axis)
        for a in sorted(axes):
            g = np.expand_dims(g, a)
    return np.broadcast_to(g, ref.shape)


def _sum_kernel(op, inputs, ctx):
    return [np.sum(inputs[0], axis=_axes(op), keepdims=op.attrs["keepdims"])]


def _sum_grad(gb, op, g):
    return [out1("ReduceSumGrad", [g[0], gb.val(op.inputs[0])],
                 {"axis": op.attrs["axis"], "keepdims": op.attrs["keepdims"]})]


def _sum_grad_kernel(op, inputs, ctx):
    g, ref = inputs
    expanded = _expand_grad_to(np.asarray(g), np.asarray(ref), _axes(op),
                               op.attrs["keepdims"])
    # copy: broadcast_to returns a read-only view (and note that
    # ascontiguousarray would promote 0-d arrays to 1-d)
    return [np.array(expanded)]


register_op("ReduceSum", infer=_reduce_infer, kernel=_sum_kernel,
            grad=_sum_grad, cost="elementwise")
register_op("ReduceSumGrad",
            infer=lambda op: [(op.inputs[1].dtype, op.inputs[1].shape)],
            kernel=_sum_grad_kernel, grad=None, cost="elementwise")


def reduce_sum(x, axis=None, keepdims=False, name="reduce_sum") -> Tensor:
    """Sum over ``axis`` (all axes when None)."""
    return out1("ReduceSum", [x], {"axis": axis, "keepdims": keepdims},
                name=name)


def _mean_kernel(op, inputs, ctx):
    return [np.mean(inputs[0], axis=_axes(op), keepdims=op.attrs["keepdims"])]


def _mean_grad(gb, op, g):
    return [out1("ReduceMeanGrad", [g[0], gb.val(op.inputs[0])],
                 {"axis": op.attrs["axis"], "keepdims": op.attrs["keepdims"]})]


def _mean_grad_kernel(op, inputs, ctx):
    g, ref = inputs
    ref = np.asarray(ref)
    axis = _axes(op)
    count = (ref.size if axis is None else
             int(np.prod([ref.shape[a] for a in axis])))
    expanded = _expand_grad_to(np.asarray(g), ref, axis,
                               op.attrs["keepdims"])
    return [np.array(expanded) / count]


register_op("ReduceMean", infer=_reduce_infer, kernel=_mean_kernel,
            grad=_mean_grad, cost="elementwise")
register_op("ReduceMeanGrad",
            infer=lambda op: [(op.inputs[1].dtype, op.inputs[1].shape)],
            kernel=_mean_grad_kernel, grad=None, cost="elementwise")


def reduce_mean(x, axis=None, keepdims=False, name="reduce_mean") -> Tensor:
    """Mean over ``axis`` (all axes when None)."""
    return out1("ReduceMean", [x], {"axis": axis, "keepdims": keepdims},
                name=name)


def _max_kernel(op, inputs, ctx):
    return [np.max(inputs[0], axis=_axes(op), keepdims=op.attrs["keepdims"])]


def _max_grad(gb, op, g):
    return [out1("ReduceMaxGrad",
                 [g[0], gb.val(op.inputs[0]), gb.val(op.outputs[0])],
                 {"axis": op.attrs["axis"], "keepdims": op.attrs["keepdims"]})]


def _max_grad_kernel(op, inputs, ctx):
    g, ref, result = inputs
    axis = _axes(op)
    keepdims = op.attrs["keepdims"]
    expanded_res = _expand_grad_to(np.asarray(result), ref, axis, keepdims)
    expanded_g = _expand_grad_to(np.asarray(g), ref, axis, keepdims)
    mask = (ref == expanded_res)
    # Split ties evenly, matching the subgradient convention.
    counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
    counts = np.broadcast_to(counts, ref.shape)
    return [np.where(mask, expanded_g / counts, 0.0).astype(ref.dtype)]


register_op("ReduceMax", infer=_reduce_infer, kernel=_max_kernel,
            grad=_max_grad, cost="elementwise")
register_op("ReduceMaxGrad",
            infer=lambda op: [(op.inputs[1].dtype, op.inputs[1].shape)],
            kernel=_max_grad_kernel, grad=None, cost="elementwise")


def reduce_max(x, axis=None, keepdims=False, name="reduce_max") -> Tensor:
    """Max over ``axis`` (all axes when None)."""
    return out1("ReduceMax", [x], {"axis": axis, "keepdims": keepdims},
                name=name)


# -- batched kernels (cross-instance dynamic micro-batching) -----------------
#
# Reductions mix axes with the stacked batch axis, so only the member-loop
# form is registered: one fused dispatch, scalar math per member.  The hot
# case (per-node scalar loss reductions) is pure per-op overhead anyway.

def _register_batched_reductions():
    from repro.graph.registry import register_batched_kernel

    for name in ("ReduceSum", "ReduceMean", "ReduceMax", "ReduceSumGrad",
                 "ReduceMeanGrad", "ReduceMaxGrad"):
        register_batched_kernel(name, batch_attrs=("axis", "keepdims"))


_register_batched_reductions()
