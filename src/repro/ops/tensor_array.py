"""TensorArray: a functional indexed array of tensors.

The iterative baseline (paper Figure 1) keeps a ``states`` array indexed by
topologically-sorted node ids.  In a dataflow graph such an array must be a
*value* flowing along edges, so writes are copy-on-write and produce a new
array value — like TensorFlow's TensorArray.

Gradient semantics:

* ``ta_read(ta, i)``'s gradient *adds* the incoming gradient into slot
  ``i`` of a gradient array (multiple reads accumulate);
* ``ta_write(ta, i, v)``'s gradient *reads* slot ``i`` of the gradient
  array for ``v``, and passes the array gradient through with slot ``i``
  cleared;
* two gradient arrays combine by elementwise addition (``ta_combine``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import out1

__all__ = ["TensorArrayValue", "ta_create", "ta_write", "ta_read", "ta_add",
           "ta_empty_like", "ta_combine", "ta_size", "zero_value_like"]


class TensorArrayValue:
    """Immutable runtime value of a TensorArray."""

    __slots__ = ("items", "elem_shape", "np_dtype")

    def __init__(self, items: tuple, elem_shape: tuple, np_dtype):
        self.items = items
        self.elem_shape = tuple(elem_shape)
        self.np_dtype = np_dtype

    @classmethod
    def empty(cls, size: int, elem_shape: tuple,
              np_dtype=np.float32) -> "TensorArrayValue":
        return cls((None,) * int(size), elem_shape, np_dtype)

    @classmethod
    def empty_like(cls, other: "TensorArrayValue") -> "TensorArrayValue":
        return cls((None,) * len(other.items), other.elem_shape,
                   other.np_dtype)

    def _check_index(self, index: int) -> int:
        index = int(np.asarray(index))
        if not 0 <= index < len(self.items):
            raise IndexError(
                f"TensorArray index {index} out of range [0, "
                f"{len(self.items)})")
        return index

    def write(self, index: int, value: np.ndarray) -> "TensorArrayValue":
        index = self._check_index(index)
        if self.items[index] is not None:
            raise ValueError(
                f"TensorArray slot {index} already written (write-once "
                "semantics)")
        items = list(self.items)
        items[index] = np.asarray(value)
        return TensorArrayValue(tuple(items), self.elem_shape, self.np_dtype)

    def add(self, index: int, value: np.ndarray) -> "TensorArrayValue":
        index = self._check_index(index)
        items = list(self.items)
        current = items[index]
        items[index] = (np.asarray(value) if current is None
                        else current + value)
        return TensorArrayValue(tuple(items), self.elem_shape, self.np_dtype)

    def clear(self, index: int) -> "TensorArrayValue":
        index = self._check_index(index)
        items = list(self.items)
        items[index] = None
        return TensorArrayValue(tuple(items), self.elem_shape, self.np_dtype)

    def read(self, index: int) -> np.ndarray:
        index = self._check_index(index)
        value = self.items[index]
        if value is None:
            return np.zeros(self.elem_shape, dtype=self.np_dtype)
        return value

    def combine(self, other: "TensorArrayValue") -> "TensorArrayValue":
        if len(self.items) != len(other.items):
            raise ValueError("cannot combine TensorArrays of different size")
        items = []
        for a, b in zip(self.items, other.items):
            if a is None:
                items.append(b)
            elif b is None:
                items.append(a)
            else:
                items.append(a + b)
        return TensorArrayValue(tuple(items), self.elem_shape, self.np_dtype)

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        written = sum(1 for v in self.items if v is not None)
        return (f"<TensorArrayValue size={len(self.items)} written={written} "
                f"elem_shape={self.elem_shape}>")


def zero_value_like(value):
    """A zero gradient matching ``value`` (ndarray or TensorArrayValue)."""
    if isinstance(value, TensorArrayValue):
        return TensorArrayValue.empty_like(value)
    return np.zeros_like(value)


# -- ops -----------------------------------------------------------------------

def _variant_infer(op):
    return [(dtypes.variant, None)]


def _create_kernel(op, inputs, ctx):
    return [TensorArrayValue.empty(int(np.asarray(inputs[0])),
                                   op.attrs["elem_shape"],
                                   op.attrs["dtype"].np_dtype)]


register_op("TACreate", infer=_variant_infer, kernel=_create_kernel,
            grad=lambda gb, op, g: [None], cost="trivial")


def ta_create(size, elem_shape, dtype=dtypes.float32,
              name="ta_create") -> Tensor:
    """Create an empty TensorArray of ``size`` slots of ``elem_shape``."""
    return out1("TACreate", [size],
                {"elem_shape": tuple(elem_shape),
                 "dtype": dtypes.as_dtype(dtype)}, name=name)


def _write_grad(gb, op, g):
    grad_ta = g[0]
    if grad_ta is None:
        return [None, None, None]
    index = gb.val(op.inputs[1])
    value_grad = ta_read_like(grad_ta, index, gb.val(op.inputs[2]))
    passthrough = out1("TAClear", [grad_ta, index])
    return [passthrough, None, value_grad]


register_op(
    "TAWrite",
    infer=_variant_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].write(inputs[1], inputs[2])],
    grad=_write_grad,
    cost="elementwise",
)


def ta_write(ta, index, value, name="ta_write") -> Tensor:
    """Write ``value`` into slot ``index`` (write-once)."""
    return out1("TAWrite", [ta, index, value], name=name)


register_op(
    "TAClear",
    infer=_variant_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].clear(inputs[1])],
    grad=None,
    cost="trivial",
)


def _read_infer(op):
    return [(op.attrs["dtype"], op.attrs.get("shape"))]


def _read_grad(gb, op, g):
    if g[0] is None:
        return [None, None]
    empty = ta_empty_like(gb.val(op.inputs[0]))
    contribution = ta_add(empty, gb.val(op.inputs[1]), g[0])
    return [contribution, None]


register_op(
    "TARead",
    infer=_read_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].read(inputs[1])],
    grad=_read_grad,
    cost="elementwise",
)


def ta_read(ta, index, dtype=dtypes.float32, shape=None,
            name="ta_read") -> Tensor:
    """Read slot ``index`` (zeros if unwritten)."""
    return out1("TARead", [ta, index],
                {"dtype": dtypes.as_dtype(dtype), "shape": shape}, name=name)


def _read_like_infer(op):
    ref = op.inputs[2]
    return [(ref.dtype, ref.shape)]


register_op(
    "TAReadLike",
    infer=_read_like_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].read(inputs[1])],
    grad=None,
    cost="elementwise",
)


def ta_read_like(ta, index, ref, name="ta_read_like") -> Tensor:
    """Read slot ``index`` with dtype/shape taken from ``ref`` (grads)."""
    return out1("TAReadLike", [ta, index, ref], name=name)


register_op(
    "TAAdd",
    infer=_variant_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].add(inputs[1], inputs[2])],
    grad=None,
    cost="elementwise",
)


def ta_add(ta, index, value, name="ta_add") -> Tensor:
    """``ta[index] += value`` (gradient accumulation writes)."""
    return out1("TAAdd", [ta, index, value], name=name)


register_op(
    "TAEmptyLike",
    infer=_variant_infer,
    kernel=lambda op, inputs, ctx: [TensorArrayValue.empty_like(inputs[0])],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)


def ta_empty_like(ta, name="ta_empty_like") -> Tensor:
    return out1("TAEmptyLike", [ta], name=name)


register_op(
    "TACombine",
    infer=_variant_infer,
    kernel=lambda op, inputs, ctx: [inputs[0].combine(inputs[1])],
    grad=lambda gb, op, g: [g[0], g[0]],
    cost="elementwise",
)


def ta_combine(a, b, name="ta_combine") -> Tensor:
    """Elementwise sum of two gradient TensorArrays."""
    return out1("TACombine", [a, b], name=name)


register_op(
    "TASize",
    infer=lambda op: [(dtypes.int32, ())],
    kernel=lambda op, inputs, ctx: [np.int32(len(inputs[0]))],
    grad=lambda gb, op, g: [None],
    cost="trivial",
)


def ta_size(ta, name="ta_size") -> Tensor:
    return out1("TASize", [ta], name=name)


# -- batched row access (the iterative baseline's batched state reads) ---------

def _gather_rows_kernel(op, inputs, ctx):
    ta, indices = inputs
    indices = np.asarray(indices)
    rows = [ta.read(int(slot))[b] for b, slot in enumerate(indices)]
    return [np.stack(rows, axis=0)]


def _gather_rows_infer(op):
    idx = op.inputs[1]
    batch = idx.shape[0] if idx.shape is not None else None
    elem = op.attrs.get("elem_shape")
    shape = ((batch,) + tuple(elem[1:])) if elem is not None else None
    return [(op.attrs["dtype"], shape)]


def _gather_rows_grad(gb, op, g):
    if g[0] is None:
        return [None, None]
    empty = ta_empty_like(gb.val(op.inputs[0]))
    contribution = out1("TAScatterRowsAdd",
                        [empty, gb.val(op.inputs[1]), g[0]])
    return [contribution, None]


register_op("TAGatherRows", infer=_gather_rows_infer,
            kernel=_gather_rows_kernel, grad=_gather_rows_grad,
            cost="elementwise")


def ta_gather_rows(ta, indices, dtype=dtypes.float32, elem_shape=None,
                   name="ta_gather_rows") -> Tensor:
    """Batched row read: ``out[b] = ta[indices[b]][b]``.

    The TensorArray's elements are ``[B, ...]`` tensors (one per node
    index); this selects a different node slot per batch row — the batched
    child-state read of the iterative implementation.
    """
    return out1("TAGatherRows", [ta, indices],
                {"dtype": dtypes.as_dtype(dtype), "elem_shape": elem_shape},
                name=name)


def _scatter_rows_kernel(op, inputs, ctx):
    ta, indices, values = inputs
    indices = np.asarray(indices)
    values = np.asarray(values)
    result = ta
    for b, slot in enumerate(indices):
        row = np.zeros(ta.elem_shape, dtype=ta.np_dtype)
        row[b] = values[b]
        result = result.add(int(slot), row)
    return [result]


register_op("TAScatterRowsAdd", infer=_variant_infer,
            kernel=_scatter_rows_kernel, grad=None, cost="elementwise")
