"""Variable access operations and gradient accumulation.

Variables live in the runtime's :class:`~repro.runtime.variables.VariableStore`
(not in any graph), so the *same* variable can be read from the main graph
and from any SubGraph body without capture plumbing — matching how
parameters behave in embedded-control-flow frameworks.

Gradients of ``ReadVariable`` are *side effects*: an ``AccumGrad`` op adds
the incoming gradient into the runtime's gradient accumulator.  Because a
recursive SubGraph body executes many times per step, per-variable gradients
must be summed across an unbounded number of frames; a thread-safe
accumulator is the natural dataflow-friendly mechanism (it plays the role
the concurrent hash table plays for activations in the paper's Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.tensor import Tensor

from .common import out1

__all__ = ["read_variable", "assign", "assign_add", "assign_sub",
           "accum_grad", "read_accum"]


def _read_infer(op):
    return [(op.attrs["dtype"], op.attrs.get("shape"))]


def _read_kernel(op, inputs, ctx):
    return [ctx.variables.read(op.attrs["var_name"])]


def _read_grad(gb, op, grads):
    if grads[0] is not None:
        update = accum_grad(op.attrs["var_name"], grads[0])
        gb.add_update(update.op)
    return []


register_op("ReadVariable", infer=_read_infer, kernel=_read_kernel,
            grad=_read_grad, stateful=True, cost="trivial")


def read_variable(var_name: str, dtype, shape=None,
                  name=None) -> Tensor:
    """Read the current value of a runtime variable."""
    return out1("ReadVariable", [],
                {"var_name": var_name, "dtype": dtypes.as_dtype(dtype),
                 "shape": shape},
                name=name or f"read_{var_name}")


def _assign_kernel(op, inputs, ctx):
    ctx.variables.write(op.attrs["var_name"], np.asarray(inputs[0]))
    return [inputs[0]]


register_op("Assign",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_kernel, grad=None, stateful=True, cost="trivial")


def assign(var_name: str, value, name=None) -> Tensor:
    """Overwrite a variable; returns the stored value."""
    return out1("Assign", [value], {"var_name": var_name},
                name=name or f"assign_{var_name}")


def _assign_add_kernel(op, inputs, ctx):
    new = ctx.variables.add(op.attrs["var_name"], np.asarray(inputs[0]))
    return [new]


register_op("AssignAdd",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_add_kernel, grad=None, stateful=True,
            cost="trivial")


def assign_add(var_name: str, delta, name=None) -> Tensor:
    """``var += delta``; returns the updated value."""
    return out1("AssignAdd", [delta], {"var_name": var_name},
                name=name or f"assign_add_{var_name}")


def _assign_sub_kernel(op, inputs, ctx):
    new = ctx.variables.add(op.attrs["var_name"], -np.asarray(inputs[0]))
    return [new]


register_op("AssignSub",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_sub_kernel, grad=None, stateful=True,
            cost="trivial")


def assign_sub(var_name: str, delta, name=None) -> Tensor:
    """``var -= delta``; returns the updated value."""
    return out1("AssignSub", [delta], {"var_name": var_name},
                name=name or f"assign_sub_{var_name}")


def _accum_kernel(op, inputs, ctx):
    # The (frame key, op id) order key makes the per-variable sum canonical
    # across engines and scheduling modes (see GradientAccumulator).
    ctx.accumulators.add(op.attrs["var_name"], np.asarray(inputs[0]),
                         order=(ctx.frame.key, op.id))
    return [inputs[0]]


register_op("AccumGrad",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_accum_kernel, grad=None, stateful=True, cost="trivial")


def accum_grad(var_name: str, grad, name=None) -> Tensor:
    """Add ``grad`` into the runtime gradient accumulator for ``var_name``."""
    return out1("AccumGrad", [grad], {"var_name": var_name},
                name=name or f"accum_{var_name}")


def _read_accum_kernel(op, inputs, ctx):
    return [ctx.accumulators.read(op.attrs["var_name"],
                                  op.attrs.get("shape"),
                                  op.attrs["dtype"].np_dtype)]


register_op("ReadAccum", infer=_read_infer, kernel=_read_accum_kernel,
            grad=None, stateful=True, cost="trivial")


def read_accum(var_name: str, dtype, shape=None, name=None) -> Tensor:
    """Read the accumulated gradient for ``var_name`` (zeros if none)."""
    return out1("ReadAccum", [],
                {"var_name": var_name, "dtype": dtypes.as_dtype(dtype),
                 "shape": shape},
                name=name or f"read_accum_{var_name}")
