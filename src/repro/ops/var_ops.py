"""Variable access operations and gradient accumulation.

Variables live in the runtime's :class:`~repro.runtime.variables.VariableStore`
(not in any graph), so the *same* variable can be read from the main graph
and from any SubGraph body without capture plumbing — matching how
parameters behave in embedded-control-flow frameworks.

Gradients of ``ReadVariable`` are *side effects*: an ``AccumGrad`` op adds
the incoming gradient into the runtime's gradient accumulator.  Because a
recursive SubGraph body executes many times per step, per-variable gradients
must be summed across an unbounded number of frames; a thread-safe
accumulator is the natural dataflow-friendly mechanism (it plays the role
the concurrent hash table plays for activations in the paper's Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.graph import dtypes
from repro.graph.registry import register_op
from repro.graph.sparse import IndexedSlices
from repro.graph.tensor import Tensor

from .common import out1

__all__ = ["read_variable", "assign", "assign_add", "assign_sub",
           "accum_grad", "read_accum", "apply_sgd", "apply_adagrad"]


def _read_infer(op):
    return [(op.attrs["dtype"], op.attrs.get("shape"))]


def _read_kernel(op, inputs, ctx):
    return [ctx.variables.read(op.attrs["var_name"])]


def _read_grad(gb, op, grads):
    if grads[0] is not None:
        update = accum_grad(op.attrs["var_name"], grads[0])
        gb.add_update(update.op)
    return []


register_op("ReadVariable", infer=_read_infer, kernel=_read_kernel,
            grad=_read_grad, stateful=True, cost="trivial")


def read_variable(var_name: str, dtype, shape=None,
                  name=None) -> Tensor:
    """Read the current value of a runtime variable."""
    return out1("ReadVariable", [],
                {"var_name": var_name, "dtype": dtypes.as_dtype(dtype),
                 "shape": shape},
                name=name or f"read_{var_name}")


def _assign_kernel(op, inputs, ctx):
    ctx.variables.write(op.attrs["var_name"], np.asarray(inputs[0]))
    return [inputs[0]]


register_op("Assign",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_kernel, grad=None, stateful=True, cost="trivial")


def assign(var_name: str, value, name=None) -> Tensor:
    """Overwrite a variable; returns the stored value."""
    return out1("Assign", [value], {"var_name": var_name},
                name=name or f"assign_{var_name}")


def _assign_add_kernel(op, inputs, ctx):
    new = ctx.variables.add(op.attrs["var_name"], np.asarray(inputs[0]))
    return [new]


register_op("AssignAdd",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_add_kernel, grad=None, stateful=True,
            cost="trivial")


def assign_add(var_name: str, delta, name=None) -> Tensor:
    """``var += delta``; returns the updated value."""
    return out1("AssignAdd", [delta], {"var_name": var_name},
                name=name or f"assign_add_{var_name}")


def _assign_sub_kernel(op, inputs, ctx):
    new = ctx.variables.add(op.attrs["var_name"], -np.asarray(inputs[0]))
    return [new]


register_op("AssignSub",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_assign_sub_kernel, grad=None, stateful=True,
            cost="trivial")


def assign_sub(var_name: str, delta, name=None) -> Tensor:
    """``var -= delta``; returns the updated value."""
    return out1("AssignSub", [delta], {"var_name": var_name},
                name=name or f"assign_sub_{var_name}")


def _accum_kernel(op, inputs, ctx):
    # The (frame key, op id) order key makes the per-variable sum canonical
    # across engines and scheduling modes (see GradientAccumulator).
    # Sparse embedding gradients are retained as-is — O(touched rows),
    # never densified here.
    grad = inputs[0]
    if not isinstance(grad, IndexedSlices):
        grad = np.asarray(grad)
    ctx.accumulators.add(op.attrs["var_name"], grad,
                         order=(ctx.frame.key, op.id))
    return [inputs[0]]


register_op("AccumGrad",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_accum_kernel, grad=None, stateful=True, cost="trivial")


def accum_grad(var_name: str, grad, name=None) -> Tensor:
    """Add ``grad`` into the runtime gradient accumulator for ``var_name``."""
    return out1("AccumGrad", [grad], {"var_name": var_name},
                name=name or f"accum_{var_name}")


def _read_accum_kernel(op, inputs, ctx):
    return [ctx.accumulators.read(op.attrs["var_name"],
                                  op.attrs.get("shape"),
                                  op.attrs["dtype"].np_dtype,
                                  dense=op.attrs.get("dense", True))]


register_op("ReadAccum", infer=_read_infer, kernel=_read_accum_kernel,
            grad=None, stateful=True, cost="trivial")


def _apply_sgd_kernel(op, inputs, ctx):
    """Fused SGD update, sparse-capable.

    Dense input replays exactly the graph-built ``assign_sub(var,
    multiply(grad, lr))`` float operations.  An ``IndexedSlices`` input
    touches only its rows: untouched rows of the dense path change by
    ``-(0.0 * lr)`` — an exact no-op — so the sparse update stays
    bit-identical while doing O(touched rows) work.
    """
    grad = inputs[0]
    name = op.attrs["var_name"]
    lr = np.float32(op.attrs["lr"])
    if isinstance(grad, IndexedSlices):
        var = ctx.variables.read(name)
        new = var.copy()
        rows = grad.indices
        new[rows] = var[rows] + (-(grad.values * lr))
        ctx.variables.write(name, new)
        return [new]
    return [ctx.variables.add(name, -(np.asarray(grad) * lr))]


register_op("ApplySGD",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_apply_sgd_kernel, grad=None, stateful=True,
            cost="elementwise")


def apply_sgd(var_name: str, grad, lr: float, name=None) -> Tensor:
    """Fused ``var -= lr * grad`` (sparse-capable); returns the new value."""
    return out1("ApplySGD", [grad], {"var_name": var_name, "lr": float(lr)},
                name=name or f"apply_sgd_{var_name}")


def _apply_adagrad_kernel(op, inputs, ctx):
    """Fused Adagrad update, sparse-capable (slot += g²; var -= lr·g/√slot+ε).

    Replays the exact float operations of the graph-built chain
    ``assign_add(slot, square(g)); assign_sub(var, g*lr / (sqrt(slot)+eps))``
    — on touched rows only when the gradient is an ``IndexedSlices``
    (untouched rows: slot += 0², var -= ±0/denom — exact no-ops).
    """
    grad = inputs[0]
    vname = op.attrs["var_name"]
    sname = op.attrs["slot_name"]
    lr = np.float32(op.attrs["lr"])
    eps = np.float32(op.attrs["eps"])
    if isinstance(grad, IndexedSlices):
        var = ctx.variables.read(vname)
        slot = ctx.variables.read(sname)
        rows, vals = grad.indices, grad.values
        new_slot = slot.copy()
        new_slot[rows] = slot[rows] + np.square(vals)
        denom = np.sqrt(new_slot[rows]) + eps
        step = (vals * lr) / denom
        new_var = var.copy()
        new_var[rows] = var[rows] + (-step)
        ctx.variables.write(sname, new_slot)
        ctx.variables.write(vname, new_var)
        return [new_var]
    grad = np.asarray(grad)
    new_slot = ctx.variables.add(sname, np.square(grad))
    denom = np.sqrt(new_slot) + eps
    step = (grad * lr) / denom
    return [ctx.variables.add(vname, -step)]


register_op("ApplyAdagrad",
            infer=lambda op: [(op.inputs[0].dtype, op.inputs[0].shape)],
            kernel=_apply_adagrad_kernel, grad=None, stateful=True,
            cost="elementwise")


def apply_adagrad(var_name: str, slot_name: str, grad, lr: float,
                  eps: float, name=None) -> Tensor:
    """Fused Adagrad step (sparse-capable); returns the new variable."""
    return out1("ApplyAdagrad", [grad],
                {"var_name": var_name, "slot_name": slot_name,
                 "lr": float(lr), "eps": float(eps)},
                name=name or f"apply_adagrad_{var_name}")


def read_accum(var_name: str, dtype, shape=None, name=None, *,
               dense: bool = True) -> Tensor:
    """Read the accumulated gradient for ``var_name`` (zeros if none).

    ``dense=True`` is the pipeline's explicit densification boundary;
    ``dense=False`` yields an ``IndexedSlices`` when every accumulated
    contribution was sparse (the sparse-optimizer fast path).
    """
    return out1("ReadAccum", [],
                {"var_name": var_name, "dtype": dtypes.as_dtype(dtype),
                 "shape": shape, "dense": dense},
                name=name or f"read_accum_{var_name}")
