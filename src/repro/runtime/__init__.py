"""Execution engines, sessions, cost models and runtime state.

Both engines (virtual-time :class:`EventEngine`, wall-clock
``ThreadedEngine``) support cross-instance dynamic micro-batching: with
``batching=True`` (or ``"adaptive"``) on a :class:`Session`,
same-signature ready operations from concurrent frames fuse into single
vectorized kernel calls (see :mod:`repro.runtime.batching`), preserving
values bit-for-bit.  The training path batches end to end: backward frame
spawns, gradient kernels and the backprop value cache's bulk traffic.

Scheduling overhead is amortized through compiled frame plans
(:mod:`repro.runtime.plan`): every ``(graph, op-set)`` body is analyzed
once — dependency wiring, registry/kernel resolution, batch-signature
prefixes, store masks, cost entries — and millions of frame spawns reuse
the cached :class:`~repro.runtime.plan.FramePlan`.
"""

from .batching import (AdaptiveBatchPolicy, BatchPolicy, Coalescer,
                       QueueAwareBatchPolicy, batch_signature)
from .cost_model import (CostModel, calibrate_batch_member_cost, client_eager,
                         gpu_profile, testbed_cpu, unit_cost)
from .engine import EngineError, EventEngine
from .plan import FramePlan, plan_for, plan_for_fetches
from .server import RecursiveServer, RequestTicket, ServerOverloaded
from .session import Runtime, Session, default_runtime, reset_default_runtime
from .stats import RunStats, percentile
from .variables import GradientAccumulator, Variable, VariableStore

__all__ = ["AdaptiveBatchPolicy", "BatchPolicy", "Coalescer",
           "QueueAwareBatchPolicy", "batch_signature", "CostModel",
           "calibrate_batch_member_cost",
           "client_eager", "gpu_profile", "testbed_cpu",
           "unit_cost", "EngineError", "EventEngine", "FramePlan",
           "plan_for", "plan_for_fetches", "RecursiveServer",
           "RequestTicket", "ServerOverloaded", "Runtime", "Session",
           "default_runtime", "reset_default_runtime", "RunStats",
           "percentile", "GradientAccumulator", "Variable", "VariableStore"]
