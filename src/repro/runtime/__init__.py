"""Execution engines, sessions, cost models and runtime state.

Both engines (virtual-time :class:`EventEngine`, wall-clock
``ThreadedEngine``) support cross-instance dynamic micro-batching: with
``batching=True`` on a :class:`Session`, same-signature ready operations
from concurrent frames fuse into single vectorized kernel calls (see
:mod:`repro.runtime.batching`), preserving values bit-for-bit.
"""

from .batching import BatchPolicy, Coalescer, batch_signature
from .cost_model import CostModel, client_eager, gpu_profile, testbed_cpu, unit_cost
from .engine import EngineError, EventEngine
from .session import Runtime, Session, default_runtime, reset_default_runtime
from .stats import RunStats
from .variables import GradientAccumulator, Variable, VariableStore

__all__ = ["BatchPolicy", "Coalescer", "batch_signature", "CostModel",
           "client_eager", "gpu_profile", "testbed_cpu",
           "unit_cost", "EngineError", "EventEngine", "Runtime", "Session",
           "default_runtime", "reset_default_runtime", "RunStats",
           "GradientAccumulator", "Variable", "VariableStore"]
