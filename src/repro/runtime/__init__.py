"""Execution engines, sessions, cost models and runtime state."""

from .cost_model import CostModel, client_eager, gpu_profile, testbed_cpu, unit_cost
from .engine import EngineError, EventEngine
from .session import Runtime, Session, default_runtime, reset_default_runtime
from .stats import RunStats
from .variables import GradientAccumulator, Variable, VariableStore

__all__ = ["CostModel", "client_eager", "gpu_profile", "testbed_cpu",
           "unit_cost", "EngineError", "EventEngine", "Runtime", "Session",
           "default_runtime", "reset_default_runtime", "RunStats",
           "GradientAccumulator", "Variable", "VariableStore"]
