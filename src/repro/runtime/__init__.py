"""Layered runtime: one scheduler core, pluggable executor backends.

The frame-lifecycle scheduler (:mod:`repro.runtime.scheduler`,
:class:`SchedulerCore`) owns the recursion-aware execution semantics —
frame spawn/seed/complete over compiled plans, serving admission,
selective caching, micro-batching decisions — and executor backends
supply only the mechanics: the virtual-time :class:`EventEngine`
(``engine="event"``), the wall-clock :class:`~repro.runtime.threaded
.ThreadedEngine` (``"threaded"``), the centralized-master
:class:`~repro.runtime.workerpool.WorkerPoolEngine` (``"workerpool"``)
with a concurrent kernel pool, and the multi-process
:class:`~repro.runtime.procpool.ProcPoolEngine` (``"procpool"``) that
ships fused buckets to worker processes over shared memory, escaping
the GIL.  Backends register by name
(:func:`register_executor`) and :class:`Session` resolves ``engine=``
through the registry.  See ARCHITECTURE.md for the layer diagram.

Every backend supports cross-instance dynamic micro-batching: with
``batching=True`` (or ``"adaptive"``) on a :class:`Session`,
same-signature ready operations from concurrent frames fuse into single
vectorized kernel calls (see :mod:`repro.runtime.batching`), preserving
values bit-for-bit.  The training path batches end to end: backward frame
spawns, gradient kernels and the backprop value cache's bulk traffic.

Scheduling overhead is amortized through compiled frame plans
(:mod:`repro.runtime.plan`): every ``(graph, op-set)`` body is analyzed
once — dependency wiring, registry/kernel resolution, batch-signature
prefixes, store masks, cost entries — and millions of frame spawns reuse
the cached :class:`~repro.runtime.plan.FramePlan`.
"""

from .batching import (AdaptiveBatchPolicy, BatchPolicy, Coalescer,
                       QueueAwareBatchPolicy, batch_signature)
from .cost_model import (CostModel, calibrate_batch_member_cost, client_eager,
                         gpu_profile, testbed_cpu, unit_cost)
from .engine import EngineError, EventEngine
from .plan import FramePlan, plan_for, plan_for_fetches
from .procpool import ProcPoolEngine
from .scheduler import (SchedulerCore, available_executors,
                        register_executor, resolve_executor)
from .server import (DeadlineExceeded, RecursiveServer, RequestCancelled,
                     RequestTicket, ServerOverloaded)
from .session import Runtime, Session, default_runtime, reset_default_runtime
from .stats import RunStats, percentile
from .threaded import ThreadedEngine
from .variables import GradientAccumulator, Variable, VariableStore
from .workerpool import WorkerPoolEngine

__all__ = ["AdaptiveBatchPolicy", "BatchPolicy", "Coalescer",
           "QueueAwareBatchPolicy", "batch_signature", "CostModel",
           "calibrate_batch_member_cost",
           "client_eager", "gpu_profile", "testbed_cpu",
           "unit_cost", "EngineError", "EventEngine", "ThreadedEngine",
           "WorkerPoolEngine", "ProcPoolEngine", "SchedulerCore",
           "available_executors",
           "register_executor", "resolve_executor", "FramePlan",
           "plan_for", "plan_for_fetches", "RecursiveServer",
           "RequestTicket", "ServerOverloaded", "RequestCancelled",
           "DeadlineExceeded", "Runtime", "Session",
           "default_runtime", "reset_default_runtime", "RunStats",
           "percentile", "GradientAccumulator", "Variable", "VariableStore"]
