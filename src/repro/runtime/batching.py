"""Cross-instance dynamic micro-batching for the execution engines.

The paper's recursive execution model makes inner operations from *many*
concurrent frames — sibling subtrees, concurrent root instances, whole
independent requests — interleave in one ready queue.  This module adds
the throughput lever that dynamic-batching systems (TensorFlow Fold,
Looks et al., reproduced in :mod:`repro.baselines.folding`) derive from
that situation: when several ready operations share the same *batch
signature* (op type, batching-relevant attrs, input dtypes/shapes), the
engine coalesces them into a single vectorized kernel call and scatters
the results back to the owning frames.

Unlike Fold, batching happens *inside* the engines at dispatch time, so
it composes with recursion (frames at different depths fuse freely), with
conditionals (only actually-taken branches produce work), and with
training (each member still records its forward values under its own
frame key, so backpropagation is unchanged).

Components:

* :func:`batch_signature` — the bucketing key of one ready instance;
* :class:`Bucket` — an ordered group of same-signature instances;
* :class:`Coalescer` — the signature-keyed pending-bucket table with the
  flush policy;
* :class:`BatchPolicy` — knobs: bucket capacity, minimum profitable size
  and (wall-clock engine only) the flush timeout bounding how long a
  partially-filled bucket may wait.

Both engines share the same discipline:

1. ready instances whose op type has a registered ``batched_kernel`` are
   *offered* to the coalescer instead of executing immediately;
2. a bucket that reaches ``max_batch`` flushes at once;
3. when the engine runs out of other ready work (the current wavefront is
   exhausted), all pending buckets flush ("flush on drain");
4. the wall-clock engine additionally expires buckets: whenever a
   worker's queue wait times out (every ``flush_timeout`` seconds of
   quiet), it flushes the oldest bucket that has aged past
   ``flush_timeout`` — so once no other ready work remains, a held
   bucket is released within roughly two idle polls, ruling out
   deadlock.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.graph.registry import OpDef, op_def

__all__ = ["BatchPolicy", "Bucket", "Coalescer", "batch_signature"]


@dataclass
class BatchPolicy:
    """Flush policy for the coalescing ready queue."""

    #: hard cap on bucket size; a full bucket flushes immediately
    max_batch: int = 64
    #: buckets smaller than this execute through the scalar path on flush
    #: (a batch of one op is pure overhead, hence the >= 2 floor)
    min_batch: int = 2
    #: wall-clock engines flush buckets older than this (seconds); also the
    #: idle-poll interval of workers waiting for new ready work
    flush_timeout: float = 0.002

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.min_batch < 2:
            raise ValueError(
                "min_batch must be >= 2 (a batch of one is just scalar "
                "execution)")
        if self.flush_timeout <= 0:
            raise ValueError("flush_timeout must be positive")


def _value_sig(value: Any):
    """Shape/dtype fingerprint of one runtime input value."""
    if isinstance(value, np.ndarray):
        return ("nd", value.dtype.str, value.shape)
    if isinstance(value, np.generic):
        return ("np", value.dtype.str)
    return ("py", type(value).__name__)


def batch_signature(op, inputs, definition: Optional[OpDef] = None):
    """The bucketing key of a ready instance, or ``None`` if unbatchable.

    Two instances may fuse iff they have the same op type, identical
    batching-relevant attrs (``batch_attrs`` in the op's registration) and
    input values of identical kind/dtype/shape.  Async ops, stateful ops
    and op types without a registered ``batched_kernel`` never batch.
    """
    if definition is None:
        definition = op_def(op.op_type)
    if definition.batched_kernel is None:
        return None
    attrs = tuple(repr(op.attrs.get(k))
                  for k in definition.meta.get("batch_attrs", ()))
    return (op.op_type, attrs, tuple(_value_sig(v) for v in inputs))


class Bucket:
    """Same-signature instances awaiting one fused kernel call."""

    __slots__ = ("signature", "op_type", "instances", "inputs", "opened_at")

    def __init__(self, signature, op_type: str, opened_at: float):
        self.signature = signature
        self.op_type = op_type
        self.instances: list = []
        self.inputs: list = []
        self.opened_at = opened_at  # engine time of the first offer

    def add(self, inst, inputs: list) -> None:
        self.instances.append(inst)
        self.inputs.append(inputs)

    def __len__(self) -> int:
        return len(self.instances)


class Coalescer:
    """Signature-keyed table of pending buckets (insertion-ordered).

    Not thread-safe by itself; the threaded engine serializes access under
    its master lock, the event engine is single-threaded.
    """

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()
        self._buckets: OrderedDict[Any, Bucket] = OrderedDict()
        self._pending = 0

    def offer(self, signature, inst, inputs: list,
              now: float = 0.0) -> Optional[Bucket]:
        """Queue one ready instance; returns the bucket if it became full."""
        bucket = self._buckets.get(signature)
        if bucket is None:
            bucket = Bucket(signature, inst.op.op_type, now)
            self._buckets[signature] = bucket
        bucket.add(inst, inputs)
        self._pending += 1
        if len(bucket) >= self.policy.max_batch:
            return self._remove(signature)
        return None

    def pop(self) -> Optional[Bucket]:
        """Remove and return the oldest pending bucket (FIFO fairness)."""
        if not self._buckets:
            return None
        signature = next(iter(self._buckets))
        return self._remove(signature)

    def pop_expired(self, now: float) -> Optional[Bucket]:
        """Remove the oldest bucket that outlived ``flush_timeout``.

        The threaded engine's idle path calls this so a partially-filled
        bucket is deferred at most ~flush_timeout once the queue goes
        quiet, without flushing buckets that were filed moments ago.
        """
        if not self._buckets:
            return None
        signature, bucket = next(iter(self._buckets.items()))
        if now - bucket.opened_at >= self.policy.flush_timeout:
            return self._remove(signature)
        return None

    def _remove(self, signature) -> Bucket:
        bucket = self._buckets.pop(signature)
        self._pending -= len(bucket)
        return bucket

    def __len__(self) -> int:
        """Number of pending *instances* across all buckets."""
        return self._pending
