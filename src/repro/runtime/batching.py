"""Cross-instance dynamic micro-batching for the execution engines.

The paper's recursive execution model makes inner operations from *many*
concurrent frames — sibling subtrees, concurrent root instances, whole
independent requests — interleave in one ready queue.  This module adds
the throughput lever that dynamic-batching systems (TensorFlow Fold,
Looks et al., reproduced in :mod:`repro.baselines.folding`) derive from
that situation: when several ready operations share the same *batch
signature* (op type, batching-relevant attrs, input dtypes/shapes), the
engine coalesces them into a single vectorized kernel call and scatters
the results back to the owning frames.

Unlike Fold, batching happens *inside* the engines at dispatch time, so
it composes with recursion (frames at different depths fuse freely), with
conditionals (only actually-taken branches produce work), and with
training: backward frames batch exactly like forward ones — concurrent
``InvokeGrad`` ops fuse into one frame spawn, ``CacheLookup`` buckets
resolve activations through one bulk value-cache read, and a fused
batch's recorded forward values are stored through one bulk write.

Components:

* :func:`batch_signature` — the bucketing key of one ready instance;
* :class:`Bucket` — an ordered group of same-signature instances;
* :class:`Coalescer` — the signature-keyed pending-bucket table with the
  flush policy and an amortized-O(1) deadline queue for expiry;
* :class:`BatchPolicy` — fixed knobs: bucket capacity, minimum profitable
  size and (wall-clock engine only) the flush timeout bounding how long a
  partially-filled bucket may wait;
* :class:`AdaptiveBatchPolicy` — per-signature feedback control of the
  minimum size and flush timeout, driven by observed flush widths.

Both engines share the same discipline:

1. ready instances whose op type has a registered ``batched_kernel`` (or,
   for async ops, a batched frame-spawn registration) are *offered* to
   the coalescer instead of executing immediately;
2. a bucket that reaches ``max_batch`` flushes at once;
3. when the engine runs out of other ready work (the current wavefront is
   exhausted), all pending buckets flush ("flush on drain");
4. the wall-clock engine additionally expires buckets: whenever a
   worker's queue wait times out (every ``flush_timeout`` seconds of
   quiet), it flushes the bucket with the earliest deadline that has aged
   past its signature's timeout — so once no other ready work remains, a
   held bucket is released within roughly two idle polls, ruling out
   deadlock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.graph.registry import OpDef, op_def
from repro.graph.sparse import IndexedSlices

__all__ = ["BatchPolicy", "AdaptiveBatchPolicy", "QueueAwareBatchPolicy",
           "Bucket", "Coalescer", "batch_signature", "signature_prefix",
           "value_signature", "resolve_batching"]


@dataclass
class BatchPolicy:
    """Fixed flush policy for the coalescing ready queue."""

    #: hard cap on bucket size; a full bucket flushes immediately
    max_batch: int = 64
    #: buckets smaller than this execute through the scalar path on flush
    #: (a batch of one op is pure overhead, hence the >= 2 floor)
    min_batch: int = 2
    #: wall-clock engines flush buckets older than this (seconds); also the
    #: idle-poll interval of workers waiting for new ready work
    flush_timeout: float = 0.002
    #: soft cap (bytes) on the engine's live-value estimate.  ``None``
    #: disables budgeting.  Under pressure the dispatch loop prefers
    #: completing deep subtrees (draining live frames) over breadth-first
    #: fan-out — work is reordered, never shed.
    memory_budget: Optional[int] = None
    #: profile-canonicalization depth for the compiled level-plan tier.
    #: ``None`` compiles one plan per distinct shape profile (exact
    #: behavior).  An integer ``d`` caps compiled plans at subtrees of
    #: node depth <= ``d``: a deeper or partially-determined (``None``
    #: holes) profile runs its root dynamically and launches compiled
    #: sub-sweeps per determined subtree, so heavy-tailed shape streams
    #: share a small canonical plan set instead of compiling per shape.
    level_canon_depth: Optional[int] = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.min_batch < 2:
            raise ValueError(
                "min_batch must be >= 2 (a batch of one is just scalar "
                "execution)")
        if self.flush_timeout <= 0:
            raise ValueError("flush_timeout must be positive")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError("memory_budget must be positive (or None)")
        if self.level_canon_depth is not None and self.level_canon_depth < 1:
            raise ValueError("level_canon_depth must be >= 1 (or None)")

    # -- per-signature interface (constant for the fixed policy) -----------

    def min_batch_for(self, signature) -> int:
        """Minimum profitable bucket size for ``signature``."""
        return self.min_batch

    def timeout_for(self, signature) -> float:
        """Flush deadline (seconds past bucket open) for ``signature``."""
        return self.flush_timeout

    def observe(self, signature, width: int, cause: str) -> None:
        """Feedback hook: a ``signature`` bucket flushed at ``width``.

        ``cause`` is ``"full"`` (hit max_batch), ``"drain"`` (wavefront
        exhausted) or ``"timeout"`` (deadline expiry).  The fixed policy
        ignores it; :class:`AdaptiveBatchPolicy` tunes per-signature knobs.
        """


@dataclass(slots=True)
class _SignatureState:
    """Adaptive state for one batch signature."""

    width_ema: float
    min_batch: int
    timeout: float
    flushes: int = 0


@dataclass
class AdaptiveBatchPolicy(BatchPolicy):
    """Per-signature adaptive flush policy.

    The fixed :class:`BatchPolicy` forces one global trade-off on every op
    type: a min-size/timeout that suits wide, frequent signatures (TreeLSTM
    internal-node matmuls) starves rare ones (root classifiers, scalar
    control ops) and vice versa.  This policy observes every flush and
    tunes each signature independently:

    * the **width EMA** tracks how many same-signature instances are
      typically in flight when a bucket flushes;
    * the **minimum profitable size** follows ``width_ema / 2`` (clamped
      to ``[min_batch, max_batch]``) — a signature that reliably fuses 30
      wide should not execute 2-wide slivers through the fused path, while
      a signature that never exceeds 3 must not wait for 8;
    * the **flush timeout** shrinks multiplicatively whenever a deadline
      expiry catches a bucket below its minimum size (waiting longer was
      pure latency) and grows additively while buckets flush full
      (traffic is dense; patience buys width), bounded by
      ``[min_timeout, max_timeout]``.

    Convergence: for a stationary arrival width W the EMA is a contraction
    toward W, so ``min_batch_for`` settles at ``clamp(W/2)`` and the
    timeout settles at a bound — ``tests/test_adaptive_policy.py`` asserts
    both.  ``snapshot()`` exposes the per-signature state for reporting.
    """

    #: EMA smoothing factor for observed flush widths
    ema_alpha: float = 0.25
    #: bounds for the per-signature adaptive timeout (seconds)
    min_timeout: float = 0.0005
    max_timeout: float = 0.01
    #: multiplicative decrease on a starved expiry / additive increase step
    timeout_decay: float = 0.5
    timeout_growth: float = 1.25
    _signatures: dict = field(default_factory=dict, repr=False)

    def _state(self, signature) -> _SignatureState:
        state = self._signatures.get(signature)
        if state is None:
            state = _SignatureState(width_ema=float(self.min_batch),
                                    min_batch=self.min_batch,
                                    timeout=self.flush_timeout)
            self._signatures[signature] = state
        return state

    def min_batch_for(self, signature) -> int:
        return self._state(signature).min_batch

    def timeout_for(self, signature) -> float:
        return self._state(signature).timeout

    def observe(self, signature, width: int, cause: str) -> None:
        state = self._state(signature)
        state.flushes += 1
        state.width_ema += self.ema_alpha * (width - state.width_ema)
        state.min_batch = int(min(self.max_batch,
                                  max(self.min_batch,
                                      round(state.width_ema / 2))))
        if cause == "timeout" and width < state.min_batch:
            state.timeout = max(self.min_timeout,
                                state.timeout * self.timeout_decay)
        elif cause == "full":
            state.timeout = min(self.max_timeout,
                                state.timeout * self.timeout_growth)

    def snapshot(self) -> dict:
        """Per-signature tuned state, for reporting/inspection.

        Returns ``{signature: {"width_ema", "min_batch", "timeout",
        "flushes"}}`` — the stable surface consumed by
        :func:`repro.harness.reporting.format_adaptive_policy`.
        """
        return {sig: {"width_ema": state.width_ema,
                      "min_batch": state.min_batch,
                      "timeout": state.timeout,
                      "flushes": state.flushes}
                for sig, state in self._signatures.items()}


@dataclass
class QueueAwareBatchPolicy(AdaptiveBatchPolicy):
    """Load-scaled flush timeouts for continuous-batching serving.

    A serving engine sees two regimes.  When the request queue is
    *shallow* there is little future work to fuse with: holding a
    partially-filled bucket open buys no width and only adds tail
    latency, so flush deadlines should tighten.  When the queue is *deep*
    (the server is backlogged) more same-signature work is guaranteed to
    arrive within the flush window, so patience buys width and throughput
    — deadlines should widen.

    The :class:`~repro.runtime.server.RecursiveServer` reports its queue
    occupancy through :meth:`note_queue_depth` whenever a request is
    enqueued or admitted; ``timeout_for`` then scales the adaptive
    per-signature timeout by a factor interpolated between
    ``shallow_scale`` (empty queue) and ``deep_scale`` (queue at cap).
    Deadlines are fixed at bucket-open time (see
    :class:`Coalescer`), so a load change applies from the next bucket.
    All other behaviour (width EMA, per-signature minimum size) is
    inherited from :class:`AdaptiveBatchPolicy`.

    Scope: bucket deadlines are consulted by the *wall-clock* engine's
    idle expiry path (``Coalescer.pop_expired``); the event engine
    flushes on wavefront drain and never ages buckets, so there the
    load scaling is inert and only the inherited adaptive minimum-size
    control is in play.
    """

    #: timeout multiplier when the request queue is empty
    shallow_scale: float = 0.25
    #: timeout multiplier when the request queue is at its cap
    deep_scale: float = 2.0
    #: deadline pressure: flush deadlines are clamped to this fraction of
    #: the nearest queued request's deadline slack, so an urgent request
    #: is never parked behind a patient flush timer
    urgency_fraction: float = 0.25
    _load: float = field(default=0.0, repr=False)
    _slack: Optional[float] = field(default=None, repr=False)

    def note_queue_depth(self, depth: int, cap: int) -> None:
        """Report request-queue occupancy (``depth`` of ``cap`` slots)."""
        if cap <= 0:
            raise ValueError("queue cap must be positive")
        self._load = min(1.0, max(0.0, depth / cap))

    def note_deadline_slack(self, slack: Optional[float]) -> None:
        """Report the tightest queued deadline's remaining slack (seconds).

        ``None`` clears the pressure (no deadline-carrying requests
        waiting).  The server refreshes this alongside
        :meth:`note_queue_depth` on every enqueue/admit, outside its own
        lock — see the serving lock-ordering rules in ARCHITECTURE.md.
        """
        self._slack = slack

    @property
    def load(self) -> float:
        """Last reported queue occupancy in ``[0, 1]``."""
        return self._load

    def timeout_for(self, signature) -> float:
        base = super().timeout_for(signature)
        scale = (self.shallow_scale
                 + self._load * (self.deep_scale - self.shallow_scale))
        timeout = base * scale
        if self._slack is not None:
            # EDF pressure: the widest acceptable flush delay is a
            # fraction of the most urgent waiting request's slack
            timeout = min(timeout, max(0.0, self._slack)
                          * self.urgency_fraction)
        return min(self.max_timeout, max(self.min_timeout, timeout))


def resolve_batching(batching, policy: Optional[BatchPolicy]):
    """Normalize the user-facing ``batching=`` knob.

    ``batching`` may be a bool or the string ``"adaptive"``; returns
    ``(enabled, policy)`` where ``"adaptive"`` selects a fresh
    :class:`AdaptiveBatchPolicy` unless an explicit policy was given.
    Unknown strings are rejected rather than silently truthy.
    """
    if batching == "adaptive":
        return True, policy if policy is not None else AdaptiveBatchPolicy()
    if isinstance(batching, str):
        raise ValueError(f"unknown batching mode {batching!r}; "
                         "expected False, True or \"adaptive\"")
    return bool(batching), policy


def _value_sig(value: Any):
    """Shape/dtype fingerprint of one runtime input value."""
    if isinstance(value, np.ndarray):
        return ("nd", value.dtype.str, value.shape)
    if isinstance(value, np.generic):
        return ("np", value.dtype.str)
    if isinstance(value, IndexedSlices):
        # sparse gradients never mix with dense members in one bucket;
        # the row count is part of the key so batched fallbacks see
        # structurally-identical members
        return ("sl", value.values.dtype.str, value.values.shape,
                value.dense_shape)
    return ("py", type(value).__name__)


def value_signature(inputs) -> tuple:
    """Shape/dtype fingerprints of a ready instance's runtime inputs."""
    return tuple(_value_sig(v) for v in inputs)


#: intern table for static *sync-op* signature prefixes — value-keyed,
#: so equal (op_type, attrs) prefixes from different graphs share one id
#: and cross-graph instances keep fusing like they did pre-interning.
#: Bounded in practice by the distinct (op type, batch-attrs) pairs the
#: process ever builds; async prefixes embed per-SubGraph identities and
#: are deliberately NOT interned here (a long-lived server rebuilding
#: models would leak one entry per dead SubGraph forever).
_PREFIX_INTERN: dict = {}
_PREFIX_LOCK = threading.Lock()


def _intern(key) -> int:
    prefix_id = _PREFIX_INTERN.get(key)
    if prefix_id is None:
        with _PREFIX_LOCK:
            prefix_id = _PREFIX_INTERN.setdefault(key, len(_PREFIX_INTERN))
    return prefix_id


def signature_prefix(op, definition: Optional[OpDef] = None):
    """The *static* part of an op's batch signature, or ``None``.

    The full signature of a ready instance is this prefix plus the
    runtime :func:`value_signature` of its inputs.  The prefix is the
    expensive part — batching-relevant attr ``repr()``s, or the identity
    of an async op's target SubGraph — and it never changes for a given
    op, so :class:`~repro.runtime.plan.FramePlan` computes it once per
    body and interns it to ``(op_type, small int)``.  Keeping the op
    type as element 0 preserves the signature contract consumed by
    :meth:`~repro.runtime.stats.RunStats.width_histogram_by_type` and
    the adaptive-policy reporting.
    """
    if definition is None:
        definition = op_def(op.op_type)
    if definition.is_async:
        if not definition.meta.get("batch_async"):
            return None
        identity = tuple(id(op.attrs.get(k))
                         for k in definition.meta.get("batch_identity_attrs",
                                                      ()))
        # identity tuples of small ints hash as cheaply as an interned
        # id and keep the global table free of per-SubGraph entries
        return (op.op_type, identity)
    if definition.batched_kernel is None:
        return None
    attrs = tuple(repr(op.attrs.get(k))
                  for k in definition.meta.get("batch_attrs", ()))
    return (op.op_type, _intern((op.op_type, attrs)))


def batch_signature(op, inputs, definition: Optional[OpDef] = None):
    """The bucketing key of a ready instance, or ``None`` if unbatchable.

    Two instances may fuse iff they have the same op type, identical
    batching-relevant attrs (``batch_attrs`` in the op's registration) and
    input values of identical kind/dtype/shape.  Async ops batch only when
    registered via ``register_batched_async`` (one fused frame spawn per
    bucket), keyed additionally by the *identity* of their target SubGraph;
    other stateful ops and op types without a registered ``batched_kernel``
    never batch.

    The key is ``(op_type, interned prefix id, value signatures)`` — the
    static part comes pre-interned from :func:`signature_prefix` (plan
    slot caches hold it per op), so only the input fingerprints are
    computed per dispatch.
    """
    prefix = signature_prefix(op, definition)
    if prefix is None:
        return None
    return prefix + (value_signature(inputs),)


class Bucket:
    """Same-signature instances awaiting one fused kernel call."""

    __slots__ = ("signature", "op_type", "instances", "inputs", "opened_at")

    def __init__(self, signature, op_type: str, opened_at: float):
        self.signature = signature
        self.op_type = op_type
        self.instances: list = []
        self.inputs: list = []
        self.opened_at = opened_at  # engine time of the first offer

    def add(self, inst, inputs: list) -> None:
        self.instances.append(inst)
        self.inputs.append(inputs)

    def __len__(self) -> int:
        return len(self.instances)


class Coalescer:
    """Signature-keyed table of pending buckets (insertion-ordered).

    Alongside the bucket table an insertion-ordered min-heap of
    ``(deadline, bucket)`` entries supports :meth:`pop_expired` in
    amortized O(1): flushed buckets leave stale heap entries behind that
    are discarded lazily when they surface, so expiry never scans the
    live table.  Deadlines are fixed at bucket-open time from the
    policy's per-signature timeout.

    Not thread-safe by itself; the threaded engine serializes access under
    its master lock, the event engine is single-threaded.
    """

    __slots__ = ("policy", "_buckets", "_deadlines", "_seq", "_pending")

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()
        self._buckets: OrderedDict[Any, Bucket] = OrderedDict()
        # (deadline, seq, signature, opened_at): deliberately *not* the
        # bucket object, so stale entries never pin flushed buckets (and
        # their frames' values) in memory
        self._deadlines: list = []
        self._seq = itertools.count()
        self._pending = 0

    def offer(self, signature, inst, inputs: list,
              now: float = 0.0) -> Optional[Bucket]:
        """Queue one ready instance; returns the bucket if it became full."""
        self._drain_stale_deadlines()
        bucket = self._buckets.get(signature)
        if bucket is None:
            bucket = Bucket(signature, inst.op.op_type, now)
            self._buckets[signature] = bucket
            heapq.heappush(self._deadlines,
                           (now + self.policy.timeout_for(signature),
                            next(self._seq), signature, bucket.opened_at))
        bucket.add(inst, inputs)
        self._pending += 1
        if len(bucket) >= self.policy.max_batch:
            return self._remove(signature, "full")
        return None

    def _is_stale(self, signature, opened_at: float) -> bool:
        bucket = self._buckets.get(signature)
        return bucket is None or bucket.opened_at != opened_at

    def _drain_stale_deadlines(self) -> None:
        """Drop leading heap entries for already-flushed buckets.

        Called opportunistically on offer so engines that never expire
        (the event engine flushes on drain) do not accumulate one heap
        tuple per flushed bucket across a long run.  Amortized O(1):
        each entry is pushed once and popped once.
        """
        while self._deadlines and self._is_stale(self._deadlines[0][2],
                                                 self._deadlines[0][3]):
            heapq.heappop(self._deadlines)

    def pop(self) -> Optional[Bucket]:
        """Remove and return the oldest pending bucket (FIFO fairness)."""
        if not self._buckets:
            return None
        signature = next(iter(self._buckets))
        return self._remove(signature, "drain")

    def pop_expired(self, now: float) -> Optional[Bucket]:
        """Remove the earliest-deadline bucket whose deadline has passed.

        The threaded engine's idle path calls this so a partially-filled
        bucket is deferred at most ~its signature's timeout once the queue
        goes quiet.  Stale heap entries (buckets flushed through
        :meth:`offer`/:meth:`pop` since being filed) are discarded lazily,
        keeping each call O(1) amortized regardless of table size.
        """
        while self._deadlines:
            deadline, _, signature, opened_at = self._deadlines[0]
            if self._is_stale(signature, opened_at):
                heapq.heappop(self._deadlines)  # stale: already flushed
                continue
            if deadline > now:
                return None
            heapq.heappop(self._deadlines)
            return self._remove(signature, "timeout")
        return None

    def _remove(self, signature, cause: str) -> Bucket:
        bucket = self._buckets.pop(signature)
        self._pending -= len(bucket)
        self.policy.observe(signature, len(bucket), cause)
        return bucket

    def discard_root(self, root) -> int:
        """Evict every pending instance whose frame tree is rooted at
        ``root`` (request cancellation).  Buckets emptied by the
        eviction vanish from the table; their deadline-heap entries go
        stale and are discarded lazily like any flushed bucket's.  Not a
        flush: the policy's ``observe`` feedback is not invoked.
        Returns the number of instances dropped.
        """
        dropped = 0
        emptied = []
        for signature, bucket in self._buckets.items():
            keep = [i for i, inst in enumerate(bucket.instances)
                    if inst.frame.root is not root]
            if len(keep) == len(bucket.instances):
                continue
            dropped += len(bucket.instances) - len(keep)
            bucket.instances = [bucket.instances[i] for i in keep]
            bucket.inputs = [bucket.inputs[i] for i in keep]
            if not bucket.instances:
                emptied.append(signature)
        for signature in emptied:
            del self._buckets[signature]
        self._pending -= dropped
        return dropped

    def __len__(self) -> int:
        """Number of pending *instances* across all buckets."""
        return self._pending
