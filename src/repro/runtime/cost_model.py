"""Virtual-time cost models.

The paper's evaluation ran on a 2×18-core Xeon testbed (36 worker threads)
with a Titan X GPU for the folding baseline.  We reproduce the *scheduling
dynamics* of that testbed with a deterministic discrete-event simulation:
every kernel is really executed (values are exact), but time is accounted
by this cost model rather than by the host clock.

The constants below are calibrated so that the reproduced tables/figures
match the paper's *shapes* (who wins, crossover points, scaling curves) —
see EXPERIMENTS.md.  The mechanisms that drive those shapes are explicit:

* ``op_overhead`` — fixed per-kernel framework overhead (dominates tiny
  tensor math on CPU);
* ``dispatch_cost`` — serialized master/scheduler time per op (the "not
  every scheduled node can run concurrently" saturation effect);
* ``invoke_overhead`` / ``return_overhead`` — the recursion costs the
  paper names: argument passing, caller/callee context setup;
* ``loop_var_overhead`` — per-iteration control machinery of while-loops
  (Switch/Merge/Enter/NextIteration in TensorFlow terms);
* ``cache_entry_cost`` + byte-proportional terms — the backpropagation
  value cache writes that make recursive *training* of large-state models
  (TreeLSTM) resource-hungry, producing the paper's batch-25 crossover;
* the GPU profile — high launch latency, very high throughput, used by the
  folding baseline's batched kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.registry import op_def

__all__ = ["CostModel", "testbed_cpu", "client_eager", "gpu_profile",
           "unit_cost", "GpuCostParams", "calibrate_batch_member_cost"]


def _value_bytes(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    return 64  # opaque values: a handle


def _flops(op, inputs, kind: Optional[str] = None) -> float:
    """Estimate kernel floating-point work from runtime input shapes.

    ``kind`` is the op's cost-model entry (the ``cost=`` registry meta);
    callers holding a compiled :class:`~repro.runtime.plan.FramePlan`
    pass the precomputed value so the hot path skips the registry lookup.
    """
    if kind is None:
        kind = op_def(op.op_type).meta.get("cost", "elementwise")
    if kind == "matmul":
        a, b = inputs[0], inputs[1]
        m = a.shape[0] if a.ndim == 2 else 1
        k = a.shape[-1]
        n = b.shape[-1] if b.ndim == 2 else 1
        return 2.0 * m * k * n
    if kind == "trivial":
        return 8.0
    # elementwise and friends: proportional to the largest operand
    size = 1
    for v in inputs:
        if isinstance(v, np.ndarray):
            size = max(size, v.size)
    return float(size)


@dataclass
class CostModel:
    """Per-op virtual cost accounting (all times in seconds)."""

    name: str = "testbed_cpu"
    #: effective flops/second of one worker core
    flops_rate: float = 2.0e9
    #: fixed per-kernel overhead (framework + kernel launch)
    op_overhead: float = 18e-6
    #: serialized master scheduling cost per dispatched op
    dispatch_cost: float = 1.2e-6
    #: extra overhead for starting an InvokeOp frame (caller context setup)
    invoke_overhead: float = 55e-6
    #: overhead charged when an InvokeOp's frame returns its outputs
    return_overhead: float = 12e-6
    #: overhead for a conditional branch frame
    cond_overhead: float = 22e-6
    #: per-iteration while-loop base overhead
    loop_iter_overhead: float = 55e-6
    #: additional per-loop-variable, per-iteration overhead
    loop_var_overhead: float = 14e-6
    #: per-entry backprop cache write overhead (training only)
    cache_entry_cost: float = 6.5e-6
    #: cache byte-throughput (writes)
    cache_bytes_rate: float = 1.5e9
    #: cache lookup overhead
    cache_lookup_cost: float = 3.0e-6
    #: intra-op parallelism: a single large kernel (a batched matmul) can
    #: spread across this many cores, like TF's intra_op thread pool
    intra_op_parallelism: float = 8.0
    #: minimum work (seconds) to recruit one extra intra-op worker
    intra_op_grain: float = 40e-6
    #: per-member gather/scatter bookkeeping of a fused micro-batch (the
    #: in-engine analogue of Fold's regrouping, but without host<->device
    #: copies — orders of magnitude below ``regroup_per_node``).  The
    #: default is validated against host measurements of the stacked-numpy
    #: fused kernels; see :func:`calibrate_batch_member_cost`.
    batch_member_cost: float = 0.6e-6
    #: per-entry cost inside one *bulk* cache transaction: with the shard
    #: lock held and the bucket's keys grouped, each additional entry is a
    #: hash+insert, an order of magnitude below the per-op
    #: ``cache_entry_cost``/``cache_lookup_cost`` round-trips it replaces
    cache_bulk_entry_cost: float = 0.7e-6
    #: per-member cost of a fused frame spawn (binding dict setup and
    #: frame bookkeeping that batching the caller-context setup of
    #: Invoke/InvokeGrad cannot eliminate)
    async_batch_member_cost: float = 8e-6

    def op_cost(self, op, inputs, kind: Optional[str] = None) -> float:
        # called once per scheduled instance: the flops estimate is
        # inlined (same arithmetic as _flops) to keep this one frame
        if kind is None:
            kind = op_def(op.op_type).meta.get("cost", "elementwise")
        if kind == "cache":
            size = sum(_value_bytes(v) for v in inputs) if inputs else 64
            return self.cache_lookup_cost + size / self.cache_bytes_rate
        if kind == "trivial":
            return 0.25 * self.op_overhead + 8.0 / self.flops_rate
        if kind == "matmul":
            a, b = inputs[0], inputs[1]
            m = a.shape[0] if a.ndim == 2 else 1
            k = a.shape[-1]
            n = b.shape[-1] if b.ndim == 2 else 1
            work = (2.0 * m * k * n) / self.flops_rate
            if work > self.intra_op_grain:
                parallel = min(self.intra_op_parallelism,
                               work / self.intra_op_grain)
                work = work / max(parallel, 1.0)
            return self.op_overhead + work
        size = 1
        for v in inputs:
            if isinstance(v, np.ndarray) and v.size > size:
                size = v.size
        return self.op_overhead + float(size) / self.flops_rate

    def batch_cost(self, ops, inputs_lists,
                   kind: Optional[str] = None) -> float:
        """Virtual cost of one fused micro-batch kernel call.

        One fixed kernel overhead covers the whole bucket (that is the
        point of dynamic batching); members add their floating-point work
        plus a small per-member gather/scatter term, and a large fused
        matmul recruits intra-op parallelism exactly like a single big
        kernel would.
        """
        if kind is None:
            kind = op_def(ops[0].op_type).meta.get("cost", "elementwise")
        work = sum(_flops(op, inputs, kind)
                   for op, inputs in zip(ops, inputs_lists)) / self.flops_rate
        if kind == "matmul" and work > self.intra_op_grain:
            parallel = min(self.intra_op_parallelism,
                           work / self.intra_op_grain)
            work = work / max(parallel, 1.0)
        overhead = (0.25 if kind == "trivial" else 1.0) * self.op_overhead
        return overhead + len(ops) * self.batch_member_cost + work

    def bulk_cache_lookup_cost(self, keys_and_inputs) -> float:
        """Virtual cost of one bulk value-cache read for a whole bucket.

        One lock/table round-trip (``cache_lookup_cost``) covers the
        bucket; members add the per-entry hash+read term.  Replaces N
        serialized ``cache_lookup_cost`` charges on the cache clock.
        """
        n = len(keys_and_inputs)
        size = sum((sum(_value_bytes(v) for v in inputs) if inputs else 64)
                   for inputs in keys_and_inputs)
        return (self.cache_lookup_cost + n * self.cache_bulk_entry_cost
                + size / self.cache_bytes_rate)

    def bulk_cache_write_cost(self, values) -> float:
        """Virtual cost of storing a fused batch's recorded outputs.

        One ``cache_entry_cost`` round-trip plus a per-entry bulk term and
        the byte traffic; the paid-per-value entry overhead of the scalar
        path is what made recursive training cache-bound (Section 5).
        """
        values = list(values)
        size = sum(_value_bytes(v) for v in values)
        return (self.cache_entry_cost
                + len(values) * self.cache_bulk_entry_cost
                + size / self.cache_bytes_rate)

    def async_batch_overhead(self, op, n: int) -> float:
        """Cost of one fused frame spawn for ``n`` same-signature async ops.

        The caller-context setup (``invoke_overhead`` etc.) is paid once;
        each member still pays its binding/bookkeeping share.
        """
        return self.async_overhead(op) + (n - 1) * self.async_batch_member_cost

    def async_overhead(self, op) -> float:
        kind = op.op_type
        if kind in ("Invoke", "InvokeGrad"):
            return self.invoke_overhead
        if kind in ("Cond", "CondGrad"):
            return self.cond_overhead
        if kind in ("Loop", "LoopGrad"):
            return self.loop_iter_overhead
        return self.op_overhead

    def loop_step_overhead(self, n_vars: int) -> float:
        return self.loop_iter_overhead + n_vars * self.loop_var_overhead

    def cache_write_cost(self, value) -> float:
        return self.cache_entry_cost + _value_bytes(value) / self.cache_bytes_rate

    def dispatch(self, op) -> float:
        return self.dispatch_cost

    def plan_cost(self, plan) -> float:
        """Static engine-cost estimate of one activation of ``plan``.

        Sums per-slot overheads from the plan's precomputed cost kinds —
        dispatch plus kernel overhead per sync op, caller-context setup
        plus return for async ops (frame spawns), the lookup round-trip
        for cache reads — with *no* floating-point work term: runtime
        input shapes do not exist before admission, and for the small
        per-node tensors of recursive models the fixed overheads
        dominate (the premise of the whole cost model).

        This is the admission-time half of the server's cost-predicted
        load shedding: ``plan_cost(root_plan) × size_hint`` estimates a
        request's engine seconds before any of it has run, and an EWMA
        of observed (actual / predicted) ratios calibrates away the
        constant factors this estimate ignores (recursion multiplier,
        flops, batching discounts).
        """
        total = 0.0
        for op, definition, kind in zip(plan.ops, plan.defs,
                                        plan.cost_kinds):
            total += self.dispatch_cost
            if definition.is_async:
                total += self.async_overhead(op) + self.return_overhead
            elif kind == "cache":
                total += self.cache_lookup_cost
            elif kind == "trivial":
                total += 0.25 * self.op_overhead
            else:
                total += self.op_overhead
        return total

    def level_plan_cost(self, lp, runs: int = 1) -> float:
        """Static virtual cost of one compiled level-plan sweep.

        What a compiled sweep (:mod:`repro.runtime.level_plan`) pays per
        level: each scalar node is one per-run kernel dispatch, each
        pre-fused bucket is *one* kernel call whose members (bucket
        width × merged runs) add only the gather/scatter term.  The
        frame-spawn machinery the plan eliminated (``invoke_overhead``,
        coalescer bookkeeping, per-op cache round-trips) is deliberately
        absent — that omission *is* the modelled speedup.

        Sums the dataclass constants directly (never the overridable
        cost methods): :func:`unit_cost` replaces those methods by
        attribute assignment, and the compiled path must stay cheap and
        deterministic under every profile.
        """
        total = 0.0
        for scalars, buckets in lp.levels:
            total += runs * len(scalars) * (self.dispatch_cost
                                            + self.op_overhead)
            for bucket in buckets:
                total += (self.dispatch_cost + self.op_overhead
                          + len(bucket) * runs * self.batch_member_cost)
        return total


def calibrate_batch_member_cost(widths=(4, 8, 16, 32, 64),
                                shape=(64, 64), repeats=30,
                                model: Optional["CostModel"] = None) -> float:
    """Measure the per-member bookkeeping cost of the fused kernels.

    The fused micro-batch kernels pay real per-member work the scalar path
    does not: gathering member operands into one stacked array and
    scattering result slices back out.  This measures exactly that
    bookkeeping on the host — ``np.stack`` over ``w`` members plus result
    slicing, across several widths — and fits ``t(w) = a + b*w`` by least
    squares; the slope ``b`` is the host seconds/member.  The value is
    rescaled into *virtual testbed seconds* by the ratio of the measured
    host arithmetic rate to the model's ``flops_rate`` (the same currency
    every other constant is expressed in) and clamped to a sane band.

    The default ``CostModel.batch_member_cost`` constant was validated
    against this measurement; pass ``calibrate=True`` to
    :func:`testbed_cpu` to use a live-measured value instead (host-
    dependent, so benchmarks that must be reproducible across machines
    keep the constant).
    """
    import time

    model = model or CostModel()
    widths = sorted(widths)
    rng = np.random.default_rng(0)
    members = [rng.standard_normal(shape).astype(np.float32)
               for _ in range(max(widths))]

    # Host arithmetic rate reference (the exchange rate into testbed time).
    a = rng.standard_normal((256, 256)).astype(np.float32)
    a @ a  # warm up BLAS
    t0 = time.perf_counter()
    for _ in range(repeats):
        a @ a
    host_flops_rate = repeats * 2.0 * 256 ** 3 / max(
        time.perf_counter() - t0, 1e-9)

    xs, ys = [], []
    for width in widths:
        t0 = time.perf_counter()
        for _ in range(repeats):
            stacked = np.stack(members[:width])
            for i in range(width):
                stacked[i]
        ys.append((time.perf_counter() - t0) / repeats)
        xs.append(float(width))
    slope = float(np.polyfit(xs, ys, 1)[0])  # host seconds per member
    virtual = slope * host_flops_rate / model.flops_rate
    return float(min(5e-6, max(0.05e-6, virtual)))


def testbed_cpu(calibrate: bool = False) -> CostModel:
    """The default profile modelling the paper's 36-core CPU testbed.

    ``calibrate=True`` replaces the modelled ``batch_member_cost`` constant
    with a value measured on this host via
    :func:`calibrate_batch_member_cost` (memoized per process).  The
    default stays constant so virtual-time results are host-independent.
    """
    model = CostModel()
    if calibrate:
        global _CALIBRATED_MEMBER_COST
        if _CALIBRATED_MEMBER_COST is None:
            _CALIBRATED_MEMBER_COST = calibrate_batch_member_cost(model=model)
        model.batch_member_cost = _CALIBRATED_MEMBER_COST
    return model


_CALIBRATED_MEMBER_COST: Optional[float] = None


def client_eager() -> CostModel:
    """Profile for the static-unrolling (PyTorch-style) baseline.

    Eager frameworks skip graph scheduling but pay per-op Python dispatch;
    the unrolled runner additionally charges graph (autograd tape)
    construction per instance.  Executed on a single client thread.
    """
    return CostModel(
        name="client_eager",
        flops_rate=2.0e9,
        op_overhead=28e-6,
        dispatch_cost=0.0,
        invoke_overhead=0.0,
        return_overhead=0.0,
        cache_entry_cost=1.0e-6,
        cache_lookup_cost=0.5e-6,
    )


@dataclass
class GpuCostParams:
    """Cost parameters for the folding baseline's batched GPU kernels.

    ``kernel_launch`` bundles the CUDA launch with Fold's host-side
    dynamic-batching bookkeeping per kernel; ``regroup_per_node`` is the
    per-node ungrouping/regrouping cost (the "numerous memory reallocations
    and copies" of paper Section 6.4) — it is what caps folding's
    inference throughput below the recursive implementation's.
    """

    kernel_launch: float = 12e-6
    flops_rate: float = 4.0e11
    #: per-node gather/regroup cost for depth-wise dynamic batching
    regroup_per_node: float = 40e-6
    #: per-byte host<->device and reshuffle cost
    bytes_rate: float = 8.0e9

    def kernel_cost(self, flops: float, data_bytes: float = 0.0) -> float:
        return (self.kernel_launch + flops / self.flops_rate
                + data_bytes / self.bytes_rate)


def gpu_profile() -> GpuCostParams:
    return GpuCostParams()


def unit_cost() -> CostModel:
    """Every op costs exactly 1 virtual second; zero overheads.

    Used by scheduler unit tests to make makespans exactly predictable.
    """
    model = CostModel(name="unit", flops_rate=float("inf"), op_overhead=1.0,
                      dispatch_cost=0.0, invoke_overhead=0.0,
                      return_overhead=0.0, cond_overhead=0.0,
                      loop_iter_overhead=0.0, loop_var_overhead=0.0,
                      cache_entry_cost=0.0, cache_lookup_cost=1.0,
                      cache_bulk_entry_cost=0.0,
                      async_batch_member_cost=0.0)

    def flat_cost(op, inputs, kind=None, _m=model):
        return 1.0

    model.op_cost = flat_cost  # type: ignore[method-assign]
    model.cache_write_cost = lambda value: 0.0  # type: ignore[method-assign]
    # a fused micro-batch costs one virtual second regardless of size, so
    # scheduler tests can predict batched makespans exactly
    model.batch_cost = lambda ops, inputs, kind=None: 1.0  # type: ignore[method-assign]
    model.bulk_cache_lookup_cost = lambda kis: 1.0  # type: ignore[method-assign]
    model.bulk_cache_write_cost = lambda values: 0.0  # type: ignore[method-assign]
    return model
