"""The virtual-time executor backend (paper Figure 4's engine, layered).

The frame lifecycle — spawn/seed/complete over compiled
:class:`~repro.runtime.plan.FramePlan` slot arrays, coalescer
integration, selective caching, serving admission, error wrapping —
lives in :class:`~repro.runtime.scheduler.SchedulerCore`, shared by
every executor backend.  This module contributes only the *execution
mechanics* of the deterministic discrete-event backend registered as
``engine="event"``:

* a **virtual clock** advanced by a cost model over ``num_workers``
  virtual workers, with serialized master dispatch and a serialized
  cache clock (the hash-table lock + shared memory bandwidth of the
  paper's Section 5) — what lets a GIL-bound Python reproduction
  exhibit the paper's 36-core scheduling dynamics;
* the **event loop**: a time-ordered heap of op completions, async
  returns and scheduled continuations (open-loop request arrivals,
  loop iterations);
* the **dispatch loop** that drains the ready queue onto free virtual
  workers, offering batchable instances to the shared coalescer and
  charging fused buckets one dispatch/overhead for the whole bucket.

Kernels really run (values are exact) but time advances virtually, so
a fixed workload yields bit-identical values *and* identical virtual
times run over run.  Wall-clock backends with identical scheduling
semantics live in :mod:`repro.runtime.threaded` (worker threads that
both schedule and execute) and :mod:`repro.runtime.workerpool` (one
scheduling master, a concurrent kernel pool).
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor

from .batching import BatchPolicy, Coalescer
from .cost_model import CostModel
from .plan import plan_for_fetches
from .scheduler import (EngineError, Frame, Instance, SchedulerCore,
                        _DepthPriorityReady, _FifoReady, _MemoryBudgetReady,
                        densify, prune_cancelled, register_executor,
                        should_store)
from .stats import RunStats

__all__ = ["Frame", "Instance", "EventEngine", "EngineError",
           "should_store"]

_OP_DONE = 0
_CALL = 1
_ASYNC_DONE = 2


class EventEngine(SchedulerCore):
    """Discrete-event executor over K virtual workers.

    See :class:`~repro.runtime.scheduler.SchedulerCore` for the shared
    constructor knobs (worker count, cost model, record mode, scheduling
    policy, micro-batching).  This backend honors ``scheduler="depth"``
    priority and is fully deterministic: it is the reference the
    wall-clock backends are validated against.
    """

    virtual_clock = True

    def __init__(self, runtime, num_workers: int = 1,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 memory_budget: Optional[int] = None,
                 track_live_bytes: bool = False):
        super().__init__(runtime, num_workers=num_workers,
                         cost_model=cost_model, record=record,
                         scheduler=scheduler, max_depth=max_depth,
                         batching=batching, batch_policy=batch_policy,
                         memory_budget=memory_budget,
                         track_live_bytes=track_live_bytes)
        self._seq = itertools.count()
        self._reset()

    # -- public API ---------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any],
            shape_profile=None) -> tuple[list, RunStats]:
        """Execute ``graph`` until all ``fetches`` are produced."""
        wall0 = time.perf_counter()
        self._reset()
        if shape_profile is not None:
            hit = self._try_level_run(graph, list(fetches), feed_map,
                                      shape_profile)
            if hit is not None:
                values, cost = hit
                self._now = cost
                self.stats.virtual_time = self._now
                self.stats.wall_time = time.perf_counter() - wall0
                self.stats.cache_stores = self.runtime.cache.stores
                self.stats.cache_lookups = self.runtime.cache.lookups
                return values, self.stats
        plan = plan_for_fetches(graph, {t.op for t in fetches})
        root = self._make_frame(plan, feed_map, key=ROOT_KEY,
                                depth=0, record=False,
                                on_complete=lambda f: None, owner=None,
                                pin_locs=tuple((t.op.id, t.index)
                                               for t in fetches))
        self._start_frame(root)
        self._loop()
        if self._error is not None:
            raise self._error
        values = [densify(root.value_of(t)) for t in fetches]
        self.stats.virtual_time = self._now
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        return values, self.stats

    def schedule(self, when: float, fn: Callable) -> None:
        """Post ``fn`` at absolute virtual time ``when`` (clamped to now)."""
        self._post(max(when, self._now), fn)

    # -- SchedulerCore executor hooks ----------------------------------------

    def _start_serving(self) -> None:
        # single-threaded engine: errors surface from drain(), which
        # invokes the server's error listener before raising.
        self._reset()

    def _drain_events(self) -> None:
        self._loop()

    def _stamp_clock(self, stats: RunStats) -> None:
        stats.virtual_time = self._now

    def _schedule_level_flush(self) -> None:
        # defer to an event at the current virtual instant: every root
        # admitted at this instant lands in one flush, so same-profile
        # arrivals merge into a single wavefront deterministically
        self._post(self._now, self._flush_level_runs)

    def _execute_level_group(self, lp, runs) -> None:
        from .level_plan import execute_level_plan
        try:
            results = execute_level_plan(self, lp, runs)
        except Exception as exc:  # noqa: BLE001 - session failure path
            self._fail_level(exc)
            return
        done_at = self._now + self.cost_model.level_plan_cost(lp, len(runs))
        for run, values in zip(runs, results):
            if values is None:
                continue
            self._post(done_at,
                       lambda run=run, values=values:
                       self._complete_level_run(run, values))

    def finish_async(self, inst: Instance, outputs: list) -> None:
        """Complete an async op once its frame(s) produced the outputs.

        Posted as a dedicated event kind (no closure allocation — this
        runs once per returning frame) that completes the instance
        without releasing a worker: the async op's worker was already
        freed when its starter event fired.
        """
        heapq.heappush(self._events,
                       (self._now + self.cost_model.return_overhead,
                        next(self._seq), _ASYNC_DONE, (inst, outputs)))

    def post_continuation(self, delay: float, fn: Callable) -> None:
        """Schedule ``fn`` to run at now+delay (loop iterations etc.)."""
        self._post(self._now + delay, fn)

    @property
    def now(self) -> float:
        return self._now

    # -- internals -----------------------------------------------------------

    def _reset(self) -> None:
        self._now = 0.0
        self._master_clock = 0.0
        # Serialized access to the concurrent backprop cache (the hash
        # table lock + shared memory bandwidth of Section 5).
        self._cache_clock = 0.0
        self._free = self.num_workers
        self._events: list = []
        if self.memory_budget is not None:
            self._ready = _MemoryBudgetReady(self)
        else:
            self._ready = (_DepthPriorityReady() if self.scheduler == "depth"
                           else _FifoReady())
        self._push_ready = self._ready.push
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self._error: Optional[Exception] = None
        self._error_listener = None
        self._error_delivered = False
        self._live_bytes = 0
        self._pending_level_runs = []
        self._level_flushing = False
        self._level_flush_wanted = False
        self._root_site_map = None
        self.stats = RunStats()
        # Per-dispatch fast paths, used only while the cost model keeps
        # the stock implementations (instance- or subclass-overridden
        # methods disable them and are called per op as before).
        cm = self.cost_model
        self._dispatch_const = (
            cm.dispatch_cost
            if getattr(cm.dispatch, "__func__", None) is CostModel.dispatch
            else None)
        self._async_memo = (
            {} if getattr(cm.async_overhead, "__func__",
                          None) is CostModel.async_overhead else None)

    def _post(self, when: float, fn: Callable) -> None:
        heapq.heappush(self._events, (when, next(self._seq), _CALL, fn))

    def _loop(self) -> None:
        coalescer = self._coalescer
        while self._error is None:
            if self._free > 0 and (self._ready or (coalescer is not None
                                                   and len(coalescer) > 0)):
                self._dispatch_ready()
            if not self._events:
                break
            when, _, kind, payload = heapq.heappop(self._events)
            if when > self._now:
                self._now = when
            if kind == _OP_DONE:
                self._free += 1
                inst, outputs, starter_inputs = payload
                try:
                    if isinstance(inst, list):  # fused micro-batch members
                        if starter_inputs is not None:
                            # fused frame spawn: run every member's starter
                            # (skipping members whose root was cancelled
                            # while the spawn event was in flight)
                            for member, member_inputs in zip(inst,
                                                             starter_inputs):
                                if member.frame.root.cancelled:
                                    continue
                                starter = member.frame.plan.starters[
                                    member.slot]
                                starter(self, member, member_inputs)
                        else:
                            self._complete_batch(inst, outputs)
                    elif starter_inputs is None:
                        self._complete_instance(inst, outputs)
                    elif not inst.frame.root.cancelled:
                        starter = inst.frame.plan.starters[inst.slot]
                        starter(self, inst, starter_inputs)
                except Exception as exc:  # annotate and stop
                    failed = inst[0] if isinstance(inst, list) else inst
                    self._error = self._wrap_error(exc, failed.op)
            elif kind == _ASYNC_DONE:
                inst, outputs = payload
                try:
                    self._complete_instance(inst, outputs)
                except Exception as exc:
                    self._error = self._wrap_error(exc, inst.op)
            else:
                try:
                    payload()
                except Exception as exc:
                    self._error = exc if isinstance(exc, EngineError) \
                        else EngineError(str(exc))
                    self._error.__cause__ = exc

    def _dispatch_ready(self) -> None:
        ready = self._ready
        coalescer = self._coalescer
        if coalescer is None:
            # fast path: no coalescer, the wavefront drains straight into
            # _execute_single with no bucketing checks
            while ready and self._free > 0 and self._error is None:
                inst = ready.pop()
                frame = inst.frame
                if frame.root.cancelled:
                    continue
                values = frame.values
                inputs = [values[s][i]
                          for s, i in frame.plan.input_locs[inst.slot]]
                self._execute_single(inst, inputs)
            return
        while self._error is None:
            while ready and self._free > 0 and self._error is None:
                inst = ready.pop()
                frame = inst.frame
                if frame.root.cancelled:
                    continue
                plan = frame.plan
                slot = inst.slot
                values = frame.values
                inputs = [values[s][i] for s, i in plan.input_locs[slot]]
                if coalescer is not None:
                    prefix = plan.sig_prefixes[slot]
                    if prefix is not None:
                        signature = self._batch_signature_of(inst, inputs,
                                                             prefix)
                        full = coalescer.offer(signature, inst, inputs,
                                               self._now)
                        if full is not None:
                            self._execute_batch(full)
                        continue
                self._execute_single(inst, inputs)
            # The ready wavefront is exhausted: flush pending buckets onto
            # free workers (oldest first).  Anything left waits for a
            # worker to free up; _loop re-enters here after every event.
            if (coalescer is not None and len(coalescer) > 0
                    and self._free > 0 and not ready
                    and self._error is None):
                self._execute_batch(coalescer.pop())
                continue
            return

    def _execute_single(self, inst: Instance, inputs: list) -> None:
        op = inst.op
        frame = inst.frame
        plan = frame.plan
        slot = inst.slot
        cost_model = self.cost_model
        start = self._master_clock
        if self._now > start:
            start = self._now
        dispatch_cost = self._dispatch_const
        if dispatch_cost is None:
            dispatch_cost = cost_model.dispatch(op)
        self._master_clock = start + dispatch_cost
        definition = plan.defs[slot]
        self._free -= 1
        busy = self.num_workers - self._free
        if busy > self.stats.max_concurrency:
            self.stats.max_concurrency = busy
        if definition.is_async:
            memo = self._async_memo
            if memo is None:
                cost = cost_model.async_overhead(op)
            else:
                cost = memo.get(op.op_type)
                if cost is None:
                    cost = memo[op.op_type] = cost_model.async_overhead(op)
            self.stats.note_op(op.op_type, cost)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (inst, None, inputs)))
        else:
            try:
                ctx = frame.ctx or frame.exec_context(self.runtime)
                outputs = definition.kernel(op, inputs, ctx)
            except Exception as exc:
                self._error = self._wrap_error(exc, op)
                return
            kind = plan.cost_kinds[slot]
            cost = cost_model.op_cost(op, inputs, kind)
            done = self._master_clock + cost
            if kind == "cache":
                # lookups contend on the shared cache structure
                self._cache_clock = max(self._cache_clock,
                                        self._master_clock) + cost
                done = self._cache_clock
            elif frame.record:
                mask = plan.store_masks[slot]
                for i, value in enumerate(outputs):
                    if mask[i]:
                        write = cost_model.cache_write_cost(value)
                        self._cache_clock = (max(self._cache_clock,
                                                 done) + write)
                        done = self._cache_clock
            self.stats.note_op(op.op_type, done - self._master_clock)
            heapq.heappush(self._events,
                           (done, next(self._seq),
                            _OP_DONE, (inst, outputs, None)))

    def _execute_batch(self, bucket) -> None:
        """Run one fused kernel call for a bucket of same-signature ops."""
        if not prune_cancelled(bucket):
            return
        if not self._bucket_fused(bucket):
            for inst, inputs in zip(bucket.instances, bucket.inputs):
                if self._free <= 0:
                    # no worker for the stragglers: requeue them (their
                    # memoized signatures make the re-offer cheap)
                    self._ready.push(inst)
                    continue
                self._execute_single(inst, inputs)
            return
        first = bucket.instances[0]
        plan = first.frame.plan
        definition = plan.defs[first.slot]
        kind = plan.cost_kinds[first.slot]
        ops = [inst.op for inst in bucket.instances]
        start = max(self._now, self._master_clock)
        # one fused dispatch through the serialized master
        self._master_clock = start + self.cost_model.dispatch(ops[0])
        self._free -= 1
        busy = self.num_workers - self._free
        if busy > self.stats.max_concurrency:
            self.stats.max_concurrency = busy
        if definition.is_async:
            # fused frame spawn: the caller-context setup is charged once
            # for the bucket; starters run at completion time like the
            # scalar async path.
            cost = self.cost_model.async_batch_overhead(ops[0], len(bucket))
            self.stats.note_batch(bucket.op_type, len(bucket), cost,
                                  bucket.signature)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (list(bucket.instances), None,
                                       list(bucket.inputs))))
            return
        try:
            runtime = self.runtime
            ctxs = [inst.frame.ctx or inst.frame.exec_context(runtime)
                    for inst in bucket.instances]
            outputs_list = definition.batched_kernel(ops, bucket.inputs, ctxs)
            self._check_batch_result(bucket, outputs_list)
        except Exception as exc:
            self._error = self._wrap_error(exc, ops[0])
            return
        if kind == "cache":
            # one bulk round-trip through the serialized cache structure
            # instead of N contended lookups (Section 5's bottleneck)
            cost = self.cost_model.bulk_cache_lookup_cost(bucket.inputs)
            self._cache_clock = max(self._cache_clock,
                                    self._master_clock) + cost
            done = self._cache_clock
        else:
            cost = self.cost_model.batch_cost(ops, bucket.inputs, kind)
            done = self._master_clock + cost
            writes = [value
                      for inst, outputs in zip(bucket.instances, outputs_list)
                      if inst.frame.record
                      for i, value in enumerate(outputs)
                      if inst.frame.plan.store_masks[inst.slot][i]]
            if writes:
                # the recorded outputs of a fused batch travel to the value
                # cache as one bulk write
                self._cache_clock = (max(self._cache_clock, done)
                                     + self.cost_model.bulk_cache_write_cost(
                                         writes))
                done = self._cache_clock
        self.stats.note_batch(bucket.op_type, len(bucket),
                              done - self._master_clock, bucket.signature)
        heapq.heappush(self._events,
                       (done, next(self._seq), _OP_DONE,
                        (list(bucket.instances), outputs_list, None)))


register_executor("event", EventEngine)
