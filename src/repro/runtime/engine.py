"""The dataflow execution engine (paper Figure 4).

The engine implements the execution model of embedded control flow
frameworks: a *master* parses the graph, places operations whose inputs are
unresolved into a waiting set (per-op dependency counters) and operations
that are ready into a shared *ready queue*; *workers* repeatedly dequeue
ready operations, execute their kernels, and report completions back to the
master, which resolves dependents.

Recursion support (the paper's step (4)): when an ``InvokeOp`` (or any
async control-flow op) is dequeued, its associated SubGraph is processed by
the same master and its inner operations are enqueued into the *same* ready
queue — inner ops from many concurrent recursive calls interleave freely.
The caller/callee relationship is a tree of :class:`Frame` objects, each
holding a pointer to its parent instance (the "graph execution stack" that
cannot be a linear stack, Section 4.1.2).

This engine is a *deterministic discrete-event simulator*: kernels really
run (values are exact) but time advances according to the cost model over
``num_workers`` virtual workers, with serialized master dispatch.  This is
what lets a GIL-bound Python reproduction exhibit the paper's 36-core
scheduling dynamics.  A wall-clock thread-pool engine with identical
semantics lives in :mod:`repro.runtime.threaded`.

Dynamic micro-batching (``batching=True`` / ``"adaptive"``): because
inner ops from many concurrent frames interleave in the one ready queue,
ready instances with the same batch signature (op type + attrs + input
shapes) can be coalesced into a single vectorized kernel call — Fold-style
dynamic batching, but *inside* the recursive engine (see
:mod:`repro.runtime.batching`).  A bucket flushes when full or when the
current ready wavefront is exhausted; results scatter back to the owning
frames, so values are bit-identical to unbatched execution and the feature
composes with recursion, conditionals and backpropagation.  The training
path batches end to end: same-signature async ops (``Invoke`` /
``InvokeGrad``) fuse into one frame spawn charged a single caller-context
setup, ``CacheLookup`` buckets resolve through one bulk value-cache
round-trip on the serialized cache clock, and the recorded activations of
a fused batch are stored through one bulk cache write.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY, child_key
from repro.graph.graph import Graph, Operation
from repro.graph.registry import ExecContext, op_def
from repro.graph.tensor import Tensor

from .batching import (BatchPolicy, Coalescer, batch_signature,
                       resolve_batching)
from .cost_model import CostModel, testbed_cpu
from .stats import RunStats

__all__ = ["Frame", "Instance", "EventEngine", "EngineError",
           "should_store"]


class EngineError(RuntimeError):
    """An error raised while executing a graph, annotated with op context."""


def should_store(frame, op_id: int, out_idx: int) -> bool:
    """Selective caching: after differentiation each body graph knows
    which forward values its backward body looks up.  Shared by both
    engines so the record-set stays identical across them."""
    cache_filter = getattr(frame.graph, "cache_filter", None)
    return cache_filter is None or (op_id, out_idx) in cache_filter


def collect_cache_entries(members, outputs_list) -> list:
    """The record-set of one fused batch as ``store_many`` entries.

    Shared by both engines' batch-completion paths so the set of cached
    values (and its bulk-write layout) cannot diverge between them.
    """
    entries = []
    for inst, outputs in zip(members, outputs_list):
        frame = inst.frame
        if frame.record:
            for i, value in enumerate(outputs):
                if should_store(frame, inst.op.id, i):
                    entries.append((frame.key, frame.graph.graph_id,
                                    inst.op.id, i, value))
    return entries


class Frame:
    """One activation of a graph (the whole run, or one SubGraph call)."""

    __slots__ = ("graph", "key", "depth", "record", "bindings", "values",
                 "pending", "remaining", "on_complete", "consumers",
                 "op_ids", "owner")

    def __init__(self, graph: Graph, op_ids: Sequence[int], bindings: dict,
                 key: tuple, depth: int, record: bool,
                 on_complete: Callable, owner: Optional["Instance"]):
        self.graph = graph
        self.key = key
        self.depth = depth
        self.record = record
        self.bindings = bindings
        self.values: dict[tuple[int, int], Any] = {}
        self.op_ids = list(op_ids)
        self.pending: dict[int, int] = {}
        self.remaining = len(self.op_ids)
        self.on_complete = on_complete
        self.consumers = graph.consumers()
        self.owner = owner  # parent Instance (None for the root frame)

    def value_of(self, tensor: Tensor):
        return self.values[tensor.ref]


class Instance:
    """A schedulable (operation, frame) pair."""

    __slots__ = ("op", "frame", "seq")

    def __init__(self, op: Operation, frame: Frame, seq: int):
        self.op = op
        self.frame = frame
        self.seq = seq


_OP_DONE = 0
_CALL = 1


class _FifoReady:
    def __init__(self):
        self._q: deque[Instance] = deque()

    def push(self, inst: Instance) -> None:
        self._q.append(inst)

    def pop(self) -> Instance:
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)


class _DepthPriorityReady:
    """Deeper frames first — the paper's suggested priority policy."""

    def __init__(self):
        self._q: list[tuple[int, int, Instance]] = []

    def push(self, inst: Instance) -> None:
        heapq.heappush(self._q, (-inst.frame.depth, inst.seq, inst))

    def pop(self) -> Instance:
        return heapq.heappop(self._q)[2]

    def __len__(self) -> int:
        return len(self._q)


class EventEngine:
    """Discrete-event engine over K virtual workers.

    Args:
        runtime: the :class:`~repro.runtime.session.Runtime` providing
            variables, accumulators and the backprop cache.
        num_workers: virtual worker thread count (the paper's testbed: 36).
        cost_model: virtual-time cost model; defaults to the CPU testbed.
        record: cache forward values of recursive frames (training mode).
        scheduler: "fifo" (paper default) or "depth" priority.
        max_depth: recursion guard.
        batching: coalesce same-signature ready ops across frames into
            fused vectorized kernel calls (cross-instance micro-batching).
            ``True`` uses the fixed flush policy, ``"adaptive"`` the
            per-signature :class:`~repro.runtime.batching.AdaptiveBatchPolicy`.
        batch_policy: bucket capacity / flush policy when batching.
    """

    def __init__(self, runtime, num_workers: int = 1,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None):
        self.runtime = runtime
        self.num_workers = num_workers
        self.cost_model = cost_model or testbed_cpu()
        self.record = record
        self.scheduler = scheduler
        self.max_depth = max_depth
        self.batching, batch_policy = resolve_batching(batching, batch_policy)
        self.batch_policy = batch_policy or BatchPolicy()
        self._seq = itertools.count()
        self._reset()

    # -- public API ---------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any]) -> tuple[list, RunStats]:
        """Execute ``graph`` until all ``fetches`` are produced."""
        wall0 = time.perf_counter()
        self._reset()
        fetch_ops = {t.op for t in fetches}
        needed = sorted(graph.reachable_from(fetch_ops))
        root = self._make_frame(graph, needed, feed_map, key=ROOT_KEY,
                                depth=0, record=False,
                                on_complete=lambda f: None, owner=None)
        self._start_frame(root)
        self._loop()
        if self._error is not None:
            raise self._error
        values = [root.values[t.ref] for t in fetches]
        self.stats.virtual_time = self._now
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        return values, self.stats

    # -- serving mode: incremental root admission ----------------------------
    #
    # ``run`` executes one fixed fetch set to completion.  The serving
    # path (:class:`repro.runtime.server.RecursiveServer`) instead keeps
    # the engine alive across requests: ``begin_serving`` opens a
    # persistent session, ``submit_root`` injects a new root instance
    # into the *live* ready queue (so its ops interleave — and fuse —
    # with whatever is already in flight), ``schedule`` posts callbacks
    # at future virtual times (open-loop request arrivals, admission
    # decisions), and ``drain`` runs the event loop until every admitted
    # root has completed.  Virtual time and stats accumulate across the
    # whole serving session.

    def begin_serving(self, error_listener: Optional[Callable] = None) -> None:
        """Enter persistent serving mode (clears any previous run state)."""
        self._reset()
        self._serve_wall0 = time.perf_counter()
        # single-threaded engine: errors surface from drain(); the
        # listener parameter exists for interface parity with the
        # threaded engine.
        self._error_listener = error_listener

    def submit_root(self, graph: Graph, fetches: Sequence[Tensor],
                    feed_map: dict[int, Any], key: tuple,
                    on_complete: Callable) -> Frame:
        """Admit a new root instance into the live ready queue.

        The fetch set's reachable ops become a fresh depth-0 frame whose
        ready ops join the one shared queue — inner operations of the new
        request coalesce with in-flight requests' ops exactly like
        sibling recursive calls.  ``on_complete`` receives the fetch
        values (in ``fetches`` order) when the root frame finishes.
        """
        fetch_list = list(fetches)
        fetch_ops = {t.op for t in fetch_list}
        needed = sorted(graph.reachable_from(fetch_ops))

        def frame_done(frame):
            on_complete([frame.values[t.ref] for t in fetch_list])

        frame = self._make_frame(graph, needed, feed_map, key=key, depth=0,
                                 record=False, on_complete=frame_done,
                                 owner=None)
        self._start_frame(frame)
        return frame

    def schedule(self, when: float, fn: Callable) -> None:
        """Post ``fn`` at absolute virtual time ``when`` (clamped to now)."""
        self._post(max(when, self._now), fn)

    def drain(self) -> RunStats:
        """Run the event loop until all admitted work (and scheduled
        arrivals) has completed; returns the session-cumulative stats."""
        self._loop()
        # stats reflect the simulation as far as it got, error or not
        self.stats.virtual_time = self._now
        self.stats.wall_time = time.perf_counter() - self._serve_wall0
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        if self._error is not None:
            error, self._error = self._error, None
            if self._error_listener is not None:
                # let the server fail outstanding tickets before we raise
                self._error_listener(error)
            raise error
        return self.stats

    def end_serving(self) -> RunStats:
        """Leave serving mode (no worker threads to stop; returns stats)."""
        return self.stats

    # -- frame management (shared with async op starters) --------------------

    def spawn_frame(self, subgraph, bindings: dict, key: tuple, depth: int,
                    on_complete: Callable, owner: Optional[Instance]) -> Frame:
        """Start executing a SubGraph body as a new frame (paper step 4)."""
        if depth > self.max_depth:
            raise EngineError(
                f"recursion limit exceeded (depth {depth}); "
                "check the base case of your recursive SubGraph")
        graph = subgraph.graph
        record = self.record and not getattr(graph, "is_backward_body", False)
        frame = self._make_frame(graph, range(graph.num_operations), bindings,
                                 key=key, depth=depth, record=record,
                                 on_complete=on_complete, owner=owner)
        self._start_frame(frame)
        return frame

    def finish_async(self, inst: Instance, outputs: list) -> None:
        """Complete an async op once its frame(s) produced the outputs."""
        delay = self.cost_model.return_overhead
        self._post(self._now + delay,
                   lambda: self._complete_instance(inst, outputs))

    def post_continuation(self, delay: float, fn: Callable) -> None:
        """Schedule ``fn`` to run at now+delay (loop iterations etc.)."""
        self._post(self._now + delay, fn)

    @property
    def now(self) -> float:
        return self._now

    # -- internals -----------------------------------------------------------

    def _reset(self) -> None:
        self._now = 0.0
        self._master_clock = 0.0
        # Serialized access to the concurrent backprop cache (the hash
        # table lock + shared memory bandwidth of Section 5).
        self._cache_clock = 0.0
        self._free = self.num_workers
        self._events: list = []
        self._ready = (_DepthPriorityReady() if self.scheduler == "depth"
                       else _FifoReady())
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self._error: Optional[Exception] = None
        self.stats = RunStats()

    _should_store = staticmethod(should_store)

    def _make_frame(self, graph, op_ids, bindings, key, depth, record,
                    on_complete, owner) -> Frame:
        frame = Frame(graph, op_ids, bindings, key, depth, record,
                      on_complete, owner)
        for op_id in frame.op_ids:
            frame.pending[op_id] = graph.dependency_count(graph.op_by_id(op_id))
        self.stats.frames_created += 1
        self.stats.max_frame_depth = max(self.stats.max_frame_depth, depth)
        return frame

    def _start_frame(self, frame: Frame) -> None:
        # Bound placeholders complete immediately; other zero-dep ops are
        # enqueued.  Delivery may cascade, so snapshot the id list first.
        for op_id in list(frame.op_ids):
            if op_id in frame.bindings:
                op = frame.graph.op_by_id(op_id)
                frame.pending.pop(op_id, None)
                self._complete_instance(
                    Instance(op, frame, next(self._seq)),
                    [frame.bindings[op_id]])
        for op_id in list(frame.op_ids):
            if frame.pending.get(op_id) == 0:
                op = frame.graph.op_by_id(op_id)
                frame.pending.pop(op_id)
                self._ready.push(Instance(op, frame, next(self._seq)))

    def _post(self, when: float, fn: Callable) -> None:
        heapq.heappush(self._events, (when, next(self._seq), _CALL, fn))

    def _loop(self) -> None:
        while self._error is None:
            self._dispatch_ready()
            if not self._events:
                break
            when, _, kind, payload = heapq.heappop(self._events)
            self._now = max(self._now, when)
            if kind == _OP_DONE:
                self._free += 1
                inst, outputs, starter_inputs = payload
                try:
                    if isinstance(inst, list):  # fused micro-batch members
                        if starter_inputs is not None:
                            # fused frame spawn: run every member's starter
                            for member, member_inputs in zip(inst,
                                                             starter_inputs):
                                starter = op_def(
                                    member.op.op_type).meta["starter"]
                                starter(self, member, member_inputs)
                        else:
                            self._complete_batch(inst, outputs)
                    elif starter_inputs is None:
                        self._complete_instance(inst, outputs)
                    else:
                        starter = op_def(inst.op.op_type).meta["starter"]
                        starter(self, inst, starter_inputs)
                except Exception as exc:  # annotate and stop
                    failed = inst[0] if isinstance(inst, list) else inst
                    self._error = self._wrap_error(exc, failed.op)
            else:
                try:
                    payload()
                except Exception as exc:
                    self._error = exc if isinstance(exc, EngineError) \
                        else EngineError(str(exc))
                    self._error.__cause__ = exc

    def _dispatch_ready(self) -> None:
        while self._error is None:
            while (len(self._ready) > 0 and self._free > 0
                   and self._error is None):
                inst = self._ready.pop()
                inputs = [inst.frame.values[t.ref] for t in inst.op.inputs]
                if self._coalescer is not None:
                    signature = batch_signature(inst.op, inputs)
                    if signature is not None:
                        full = self._coalescer.offer(signature, inst, inputs,
                                                     self._now)
                        if full is not None:
                            self._execute_batch(full)
                        continue
                self._execute_single(inst, inputs)
            # The ready wavefront is exhausted: flush pending buckets onto
            # free workers (oldest first).  Anything left waits for a
            # worker to free up; _loop re-enters here after every event.
            if (self._coalescer is not None and len(self._coalescer) > 0
                    and self._free > 0 and len(self._ready) == 0
                    and self._error is None):
                self._execute_batch(self._coalescer.pop())
                continue
            return

    def _execute_single(self, inst: Instance, inputs: list) -> None:
        op = inst.op
        frame = inst.frame
        start = max(self._now, self._master_clock)
        self._master_clock = start + self.cost_model.dispatch(op)
        definition = op_def(op.op_type)
        self._free -= 1
        busy = self.num_workers - self._free
        self.stats.max_concurrency = max(self.stats.max_concurrency, busy)
        if definition.is_async:
            cost = self.cost_model.async_overhead(op)
            self.stats.note_op(op.op_type, cost)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (inst, None, inputs)))
        else:
            try:
                ctx = ExecContext(self.runtime, frame, frame.record)
                outputs = definition.kernel(op, inputs, ctx)
            except Exception as exc:
                self._error = self._wrap_error(exc, op)
                return
            cost = self.cost_model.op_cost(op, inputs)
            done = self._master_clock + cost
            if op.op_type == "CacheLookup":
                # lookups contend on the shared cache structure
                self._cache_clock = max(self._cache_clock,
                                        self._master_clock) + cost
                done = self._cache_clock
            elif frame.record:
                for i, value in enumerate(outputs):
                    if self._should_store(frame, op.id, i):
                        write = self.cost_model.cache_write_cost(value)
                        self._cache_clock = (max(self._cache_clock,
                                                 done) + write)
                        done = self._cache_clock
            self.stats.note_op(op.op_type, done - self._master_clock)
            heapq.heappush(self._events,
                           (done, next(self._seq),
                            _OP_DONE, (inst, outputs, None)))

    def _execute_batch(self, bucket) -> None:
        """Run one fused kernel call for a bucket of same-signature ops."""
        if len(bucket) < self._coalescer.policy.min_batch_for(
                bucket.signature):
            for inst, inputs in zip(bucket.instances, bucket.inputs):
                if self._free <= 0:
                    # no worker for the stragglers: requeue them
                    self._ready.push(inst)
                    continue
                self._execute_single(inst, inputs)
            return
        ops = [inst.op for inst in bucket.instances]
        definition = op_def(bucket.op_type)
        start = max(self._now, self._master_clock)
        # one fused dispatch through the serialized master
        self._master_clock = start + self.cost_model.dispatch(ops[0])
        self._free -= 1
        busy = self.num_workers - self._free
        self.stats.max_concurrency = max(self.stats.max_concurrency, busy)
        if definition.is_async:
            # fused frame spawn: the caller-context setup is charged once
            # for the bucket; starters run at completion time like the
            # scalar async path.
            cost = self.cost_model.async_batch_overhead(ops[0], len(bucket))
            self.stats.note_batch(bucket.op_type, len(bucket), cost,
                                  bucket.signature)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (list(bucket.instances), None,
                                       list(bucket.inputs))))
            return
        try:
            ctxs = [ExecContext(self.runtime, inst.frame, inst.frame.record)
                    for inst in bucket.instances]
            outputs_list = definition.batched_kernel(ops, bucket.inputs, ctxs)
            if len(outputs_list) != len(bucket):
                raise EngineError(
                    f"batched kernel of {bucket.op_type} returned "
                    f"{len(outputs_list)} results for {len(bucket)} members")
        except Exception as exc:
            self._error = self._wrap_error(exc, ops[0])
            return
        if definition.meta.get("cost") == "cache":
            # one bulk round-trip through the serialized cache structure
            # instead of N contended lookups (Section 5's bottleneck)
            cost = self.cost_model.bulk_cache_lookup_cost(bucket.inputs)
            self._cache_clock = max(self._cache_clock,
                                    self._master_clock) + cost
            done = self._cache_clock
        else:
            cost = self.cost_model.batch_cost(ops, bucket.inputs)
            done = self._master_clock + cost
            writes = [value
                      for inst, outputs in zip(bucket.instances, outputs_list)
                      if inst.frame.record
                      for i, value in enumerate(outputs)
                      if self._should_store(inst.frame, inst.op.id, i)]
            if writes:
                # the recorded outputs of a fused batch travel to the value
                # cache as one bulk write
                self._cache_clock = (max(self._cache_clock, done)
                                     + self.cost_model.bulk_cache_write_cost(
                                         writes))
                done = self._cache_clock
        self.stats.note_batch(bucket.op_type, len(bucket),
                              done - self._master_clock, bucket.signature)
        heapq.heappush(self._events,
                       (done, next(self._seq), _OP_DONE,
                        (list(bucket.instances), outputs_list, None)))

    def _complete_batch(self, members: list, outputs_list: list) -> None:
        """Scatter a fused batch's results; one bulk store for the cache."""
        entries = collect_cache_entries(members, outputs_list)
        if entries:
            self.runtime.cache.store_many(entries)
        for inst, outputs in zip(members, outputs_list):
            self._complete_instance(inst, outputs, store=False)

    def _complete_instance(self, inst: Instance, outputs: list,
                           store: bool = True) -> None:
        frame = inst.frame
        op = inst.op
        if len(outputs) != op.num_outputs:
            raise EngineError(
                f"kernel of {op.name} ({op.op_type}) returned {len(outputs)} "
                f"values, expected {op.num_outputs}")
        for i, value in enumerate(outputs):
            frame.values[(op.id, i)] = value
            if store and frame.record and self._should_store(frame, op.id, i):
                self.runtime.cache.store(frame.key, frame.graph.graph_id,
                                         op.id, i, value)
        for consumer in frame.consumers.get(op.id, ()):
            count = frame.pending.get(consumer.id)
            if count is None:
                continue  # outside this frame's (pruned) op set
            if count == 1:
                frame.pending.pop(consumer.id)
                self._ready.push(Instance(consumer, frame, next(self._seq)))
            else:
                frame.pending[consumer.id] = count - 1
        frame.remaining -= 1
        if frame.remaining == 0:
            frame.on_complete(frame)

    @staticmethod
    def _wrap_error(exc: Exception, op: Operation) -> EngineError:
        err = EngineError(
            f"error executing {op.name} ({op.op_type}) in graph "
            f"{op.graph.name}: {exc}")
        err.__cause__ = exc
        return err
