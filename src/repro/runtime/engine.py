"""The dataflow execution engine (paper Figure 4).

The engine implements the execution model of embedded control flow
frameworks, split into a *compile-once* and an *execute-many* half:

**Compile once (FramePlan).**  Everything the scheduler needs to know
about a body graph is static — dependency counts, consumer lists, the
registry ``OpDef``/kernel each op resolves to, the static prefix of each
op's batch signature, the selective-caching record set, and per-op
cost-model entries.  :mod:`repro.runtime.plan` compiles that once per
``(graph, op-id set)`` into a :class:`~repro.runtime.plan.FramePlan`
whose ops are renumbered into dense *plan slots*; the plan is cached on
the graph and shared by this engine and the wall-clock
:class:`~repro.runtime.threaded.ThreadedEngine`.

**Execute many (Frames).**  A *master* instantiates a :class:`Frame`
per graph activation — flat slot-indexed arrays of values and remaining
dependency counters over the frame's plan — placing ready operations
into a shared *ready queue*; *workers* repeatedly dequeue ready
operations, execute their kernels, and report completions back to the
master, which resolves dependents by walking the plan's precomputed
consumer slots.  Spawning a frame is two list allocations; dispatching
an instance gathers inputs through the plan's ``(producer slot, output
index)`` pairs; completing one decrements dense counters.  No graph
walking, no registry lookups, and no attr ``repr()`` happen per frame
or per instance — the per-spawn scheduling overhead the paper's
recursive model multiplies by millions of frames is paid once per body.

Recursion support (the paper's step (4)): when an ``InvokeOp`` (or any
async control-flow op) is dequeued, its associated SubGraph's plan is
fetched from the cache and its inner operations are enqueued into the
*same* ready queue — inner ops from many concurrent recursive calls
interleave freely.  The caller/callee relationship is a tree of
:class:`Frame` objects, each holding a pointer to its parent instance
(the "graph execution stack" that cannot be a linear stack, Section
4.1.2).

This engine is a *deterministic discrete-event simulator*: kernels really
run (values are exact) but time advances according to the cost model over
``num_workers`` virtual workers, with serialized master dispatch.  This is
what lets a GIL-bound Python reproduction exhibit the paper's 36-core
scheduling dynamics.  A wall-clock thread-pool engine with identical
semantics lives in :mod:`repro.runtime.threaded`.

Dynamic micro-batching (``batching=True`` / ``"adaptive"``): because
inner ops from many concurrent frames interleave in the one ready queue,
ready instances with the same batch signature (interned static prefix +
input shapes, see :func:`repro.runtime.batching.signature_prefix`) can
be coalesced into a single vectorized kernel call — Fold-style dynamic
batching, but *inside* the recursive engine (see
:mod:`repro.runtime.batching`).  A bucket flushes when full or when the
current ready wavefront is exhausted; results scatter back to the owning
frames, so values are bit-identical to unbatched execution and the feature
composes with recursion, conditionals and backpropagation.  The training
path batches end to end: same-signature async ops (``Invoke`` /
``InvokeGrad``) fuse into one frame spawn charged a single caller-context
setup, ``CacheLookup`` buckets resolve through one bulk value-cache
round-trip on the serialized cache clock, and the recorded activations of
a fused batch are stored through one bulk cache write.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY
from repro.graph.graph import Graph, Operation
from repro.graph.registry import ExecContext
from repro.graph.tensor import Tensor

from .batching import (BatchPolicy, Coalescer, resolve_batching,
                       value_signature)
from .cost_model import CostModel, testbed_cpu
from .plan import FramePlan, plan_for, plan_for_fetches
from .stats import RunStats

__all__ = ["Frame", "Instance", "EventEngine", "EngineError",
           "should_store"]


class EngineError(RuntimeError):
    """An error raised while executing a graph, annotated with op context."""


def should_store(frame, op_id: int, out_idx: int) -> bool:
    """Selective caching: after differentiation each body graph knows
    which forward values its backward body looks up.  The engines consult
    the plan's precomputed ``store_masks`` on the hot path; this is the
    reference predicate those masks bake in (kept for tests and
    out-of-plan callers)."""
    cache_filter = getattr(frame.graph, "cache_filter", None)
    return cache_filter is None or (op_id, out_idx) in cache_filter


def seed_frame(frame: "Frame", complete_instance: Callable,
               push: Callable) -> None:
    """Seed a fresh frame: complete bound placeholders, enqueue ready ops.

    Shared by both engines (the only difference is the ready sink) so
    the spawn semantics — bindings complete in op-id order exactly like
    the pre-plan engines, bindings outside a pruned op set are ignored,
    zero-dep ops enqueue in slot order — cannot diverge between them.
    """
    plan = frame.plan
    pending = frame.pending
    bindings = frame.bindings
    if bindings:
        if len(bindings) == 1:
            # the common spawn shape: a single bound input
            op_id, value = next(iter(bindings.items()))
            slot = plan.index_of.get(op_id)
            if slot is not None:
                pending[slot] = -1
                complete_instance(Instance(plan.ops[slot], frame, slot),
                                  [value])
        else:
            index_of = plan.index_of
            for op_id in sorted(bindings):
                slot = index_of.get(op_id)
                if slot is None:
                    continue
                pending[slot] = -1
                complete_instance(Instance(plan.ops[slot], frame, slot),
                                  [bindings[op_id]])
    for slot in plan.zero_dep_slots:
        if pending[slot] == 0:
            pending[slot] = -1
            push(Instance(plan.ops[slot], frame, slot))


def collect_cache_entries(members, outputs_list) -> list:
    """The record-set of one fused batch as ``store_many`` entries.

    Shared by both engines' batch-completion paths so the set of cached
    values (and its bulk-write layout) cannot diverge between them.
    """
    entries = []
    for inst, outputs in zip(members, outputs_list):
        frame = inst.frame
        if frame.record:
            mask = frame.plan.store_masks[inst.slot]
            graph_id = frame.plan.graph_id
            op_id = inst.op.id
            for i, value in enumerate(outputs):
                if mask[i]:
                    entries.append((frame.key, graph_id, op_id, i, value))
    return entries


class Frame:
    """One activation of a graph (the whole run, or one SubGraph call).

    Per-frame state is dense over the plan's slot numbering: ``values``
    holds each slot's output list (None until produced), ``pending`` the
    remaining-producer counters (-1 once dispatched or bound).
    """

    __slots__ = ("plan", "graph", "key", "depth", "record", "bindings",
                 "values", "pending", "remaining", "on_complete", "owner",
                 "ctx")

    def __init__(self, plan: FramePlan, bindings: dict, key: tuple,
                 depth: int, record: bool, on_complete: Callable,
                 owner: Optional["Instance"]):
        self.plan = plan
        self.graph = plan.graph
        self.key = key
        self.depth = depth
        self.record = record
        self.bindings = bindings
        self.values: list = [None] * plan.num_slots
        self.pending: list = list(plan.dep_counts)
        self.remaining = plan.num_slots
        self.on_complete = on_complete
        self.owner = owner  # parent Instance (None for the root frame)
        self.ctx = None  # lazily-built ExecContext, shared by this
        # frame's kernel invocations (runtime/frame/record are fixed)

    def value_of(self, tensor: Tensor):
        return self.values[self.plan.index_of[tensor.op.id]][tensor.index]

    def values_at(self, locs) -> list:
        """Gather ``(op_id, output_index)`` locations from this frame.

        The spawn starters' completion callbacks use this with the
        SubGraph's cached ``output_locs``, so the frame storage layout
        is encapsulated here next to :meth:`value_of`.
        """
        values = self.values
        index_of = self.plan.index_of
        return [values[index_of[op_id]][i] for op_id, i in locs]

    def exec_context(self, runtime) -> ExecContext:
        """The frame's (memoized) kernel execution context."""
        ctx = self.ctx
        if ctx is None:
            ctx = self.ctx = ExecContext(runtime, self, self.record)
        return ctx


class Instance:
    """A schedulable (operation, frame) pair.

    ``slot`` is the op's dense index in the frame's plan; ``sig``
    memoizes the batch signature so an instance requeued after a partial
    bucket flush never recomputes it, and ``seq`` its first ready-queue
    arrival order (assigned by the depth-priority queue) so a requeue
    preserves the original tie-break position.
    """

    __slots__ = ("op", "frame", "slot", "sig", "seq")

    def __init__(self, op: Operation, frame: Frame, slot: int):
        self.op = op
        self.frame = frame
        self.slot = slot
        self.sig = None
        self.seq = None


_OP_DONE = 0
_CALL = 1
_ASYNC_DONE = 2


class _FifoReady(deque):
    """FIFO ready queue: a deque subclass so push/pop/len stay C-level."""

    __slots__ = ()

    push = deque.append
    pop = deque.popleft


class _DepthPriorityReady:
    """Deeper frames first — the paper's suggested priority policy.

    First-push order breaks depth ties (instances are pushed the moment
    they become ready, so the counter reproduces global ready order);
    the seq is memoized on the instance so a straggler requeued by a
    partial bucket flush keeps its original position.
    """

    __slots__ = ("_q", "_seq")

    def __init__(self):
        self._q: list[tuple[int, int, Instance]] = []
        self._seq = itertools.count()

    def push(self, inst: Instance) -> None:
        seq = inst.seq
        if seq is None:
            seq = inst.seq = next(self._seq)
        heapq.heappush(self._q, (-inst.frame.depth, seq, inst))

    def pop(self) -> Instance:
        return heapq.heappop(self._q)[2]

    def __len__(self) -> int:
        return len(self._q)


class EventEngine:
    """Discrete-event engine over K virtual workers.

    Args:
        runtime: the :class:`~repro.runtime.session.Runtime` providing
            variables, accumulators and the backprop cache.
        num_workers: virtual worker thread count (the paper's testbed: 36).
        cost_model: virtual-time cost model; defaults to the CPU testbed.
        record: cache forward values of recursive frames (training mode).
        scheduler: "fifo" (paper default) or "depth" priority.
        max_depth: recursion guard.
        batching: coalesce same-signature ready ops across frames into
            fused vectorized kernel calls (cross-instance micro-batching).
            ``True`` uses the fixed flush policy, ``"adaptive"`` the
            per-signature :class:`~repro.runtime.batching.AdaptiveBatchPolicy`.
        batch_policy: bucket capacity / flush policy when batching.
    """

    def __init__(self, runtime, num_workers: int = 1,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None):
        self.runtime = runtime
        self.num_workers = num_workers
        self.cost_model = cost_model or testbed_cpu()
        self.record = record
        self.scheduler = scheduler
        self.max_depth = max_depth
        self.batching, batch_policy = resolve_batching(batching, batch_policy)
        self.batch_policy = batch_policy or BatchPolicy()
        self._seq = itertools.count()
        self._reset()

    # -- public API ---------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any]) -> tuple[list, RunStats]:
        """Execute ``graph`` until all ``fetches`` are produced."""
        wall0 = time.perf_counter()
        self._reset()
        plan = plan_for_fetches(graph, {t.op for t in fetches})
        root = self._make_frame(plan, feed_map, key=ROOT_KEY,
                                depth=0, record=False,
                                on_complete=lambda f: None, owner=None)
        self._start_frame(root)
        self._loop()
        if self._error is not None:
            raise self._error
        values = [root.value_of(t) for t in fetches]
        self.stats.virtual_time = self._now
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        return values, self.stats

    # -- serving mode: incremental root admission ----------------------------
    #
    # ``run`` executes one fixed fetch set to completion.  The serving
    # path (:class:`repro.runtime.server.RecursiveServer`) instead keeps
    # the engine alive across requests: ``begin_serving`` opens a
    # persistent session, ``submit_root`` injects a new root instance
    # into the *live* ready queue (so its ops interleave — and fuse —
    # with whatever is already in flight), ``schedule`` posts callbacks
    # at future virtual times (open-loop request arrivals, admission
    # decisions), and ``drain`` runs the event loop until every admitted
    # root has completed.  Virtual time and stats accumulate across the
    # whole serving session.

    def begin_serving(self, error_listener: Optional[Callable] = None) -> None:
        """Enter persistent serving mode (clears any previous run state)."""
        self._reset()
        self._serve_wall0 = time.perf_counter()
        # single-threaded engine: errors surface from drain(); the
        # listener parameter exists for interface parity with the
        # threaded engine.
        self._error_listener = error_listener

    def submit_root(self, graph: Graph, fetches: Sequence[Tensor],
                    feed_map: dict[int, Any], key: tuple,
                    on_complete: Callable) -> Frame:
        """Admit a new root instance into the live ready queue.

        The fetch set's reachable ops become a fresh depth-0 frame whose
        ready ops join the one shared queue — inner operations of the new
        request coalesce with in-flight requests' ops exactly like
        sibling recursive calls.  ``on_complete`` receives the fetch
        values (in ``fetches`` order) when the root frame finishes.
        The pruned root plan is memoized per fetch set, so repeat
        requests skip the reachability walk entirely.
        """
        fetch_list = list(fetches)
        plan = plan_for_fetches(graph, {t.op for t in fetch_list})

        def frame_done(frame):
            on_complete([frame.value_of(t) for t in fetch_list])

        frame = self._make_frame(plan, feed_map, key=key, depth=0,
                                 record=False, on_complete=frame_done,
                                 owner=None)
        self._start_frame(frame)
        return frame

    def schedule(self, when: float, fn: Callable) -> None:
        """Post ``fn`` at absolute virtual time ``when`` (clamped to now)."""
        self._post(max(when, self._now), fn)

    def drain(self) -> RunStats:
        """Run the event loop until all admitted work (and scheduled
        arrivals) has completed; returns the session-cumulative stats."""
        self._loop()
        # stats reflect the simulation as far as it got, error or not
        self.stats.virtual_time = self._now
        self.stats.wall_time = time.perf_counter() - self._serve_wall0
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        if self._error is not None:
            error, self._error = self._error, None
            if self._error_listener is not None:
                # let the server fail outstanding tickets before we raise
                self._error_listener(error)
            raise error
        return self.stats

    def end_serving(self) -> RunStats:
        """Leave serving mode (no worker threads to stop; returns stats)."""
        return self.stats

    # -- frame management (shared with async op starters) --------------------

    def spawn_frame(self, subgraph, bindings: dict, key: tuple, depth: int,
                    on_complete: Callable, owner: Optional[Instance]) -> Frame:
        """Start executing a SubGraph body as a new frame (paper step 4)."""
        if depth > self.max_depth:
            raise EngineError(
                f"recursion limit exceeded (depth {depth}); "
                "check the base case of your recursive SubGraph")
        graph = subgraph.graph
        record = self.record and not getattr(graph, "is_backward_body", False)
        frame = self._make_frame(plan_for(graph), bindings, key=key,
                                 depth=depth, record=record,
                                 on_complete=on_complete, owner=owner)
        self._start_frame(frame)
        return frame

    def finish_async(self, inst: Instance, outputs: list) -> None:
        """Complete an async op once its frame(s) produced the outputs.

        Posted as a dedicated event kind (no closure allocation — this
        runs once per returning frame) that completes the instance
        without releasing a worker: the async op's worker was already
        freed when its starter event fired.
        """
        heapq.heappush(self._events,
                       (self._now + self.cost_model.return_overhead,
                        next(self._seq), _ASYNC_DONE, (inst, outputs)))

    def post_continuation(self, delay: float, fn: Callable) -> None:
        """Schedule ``fn`` to run at now+delay (loop iterations etc.)."""
        self._post(self._now + delay, fn)

    @property
    def now(self) -> float:
        return self._now

    # -- internals -----------------------------------------------------------

    def _reset(self) -> None:
        self._now = 0.0
        self._master_clock = 0.0
        # Serialized access to the concurrent backprop cache (the hash
        # table lock + shared memory bandwidth of Section 5).
        self._cache_clock = 0.0
        self._free = self.num_workers
        self._events: list = []
        self._ready = (_DepthPriorityReady() if self.scheduler == "depth"
                       else _FifoReady())
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self._error: Optional[Exception] = None
        self.stats = RunStats()
        # Per-dispatch fast paths, used only while the cost model keeps
        # the stock implementations (instance- or subclass-overridden
        # methods disable them and are called per op as before).
        cm = self.cost_model
        self._dispatch_const = (
            cm.dispatch_cost
            if getattr(cm.dispatch, "__func__", None) is CostModel.dispatch
            else None)
        self._async_memo = (
            {} if getattr(cm.async_overhead, "__func__",
                          None) is CostModel.async_overhead else None)

    def _make_frame(self, plan: FramePlan, bindings, key, depth, record,
                    on_complete, owner) -> Frame:
        frame = Frame(plan, bindings, key, depth, record, on_complete, owner)
        self.stats.frames_created += 1
        if depth > self.stats.max_frame_depth:
            self.stats.max_frame_depth = depth
        return frame

    def _start_frame(self, frame: Frame) -> None:
        seed_frame(frame, self._complete_instance, self._ready.push)

    def _post(self, when: float, fn: Callable) -> None:
        heapq.heappush(self._events, (when, next(self._seq), _CALL, fn))

    def _loop(self) -> None:
        coalescer = self._coalescer
        while self._error is None:
            if self._free > 0 and (self._ready or (coalescer is not None
                                                   and len(coalescer) > 0)):
                self._dispatch_ready()
            if not self._events:
                break
            when, _, kind, payload = heapq.heappop(self._events)
            if when > self._now:
                self._now = when
            if kind == _OP_DONE:
                self._free += 1
                inst, outputs, starter_inputs = payload
                try:
                    if isinstance(inst, list):  # fused micro-batch members
                        if starter_inputs is not None:
                            # fused frame spawn: run every member's starter
                            for member, member_inputs in zip(inst,
                                                             starter_inputs):
                                starter = member.frame.plan.starters[
                                    member.slot]
                                starter(self, member, member_inputs)
                        else:
                            self._complete_batch(inst, outputs)
                    elif starter_inputs is None:
                        self._complete_instance(inst, outputs)
                    else:
                        starter = inst.frame.plan.starters[inst.slot]
                        starter(self, inst, starter_inputs)
                except Exception as exc:  # annotate and stop
                    failed = inst[0] if isinstance(inst, list) else inst
                    self._error = self._wrap_error(exc, failed.op)
            elif kind == _ASYNC_DONE:
                inst, outputs = payload
                try:
                    self._complete_instance(inst, outputs)
                except Exception as exc:
                    self._error = self._wrap_error(exc, inst.op)
            else:
                try:
                    payload()
                except Exception as exc:
                    self._error = exc if isinstance(exc, EngineError) \
                        else EngineError(str(exc))
                    self._error.__cause__ = exc

    def _dispatch_ready(self) -> None:
        ready = self._ready
        coalescer = self._coalescer
        if coalescer is None:
            # fast path: no coalescer, the wavefront drains straight into
            # _execute_single with no bucketing checks
            while ready and self._free > 0 and self._error is None:
                inst = ready.pop()
                frame = inst.frame
                values = frame.values
                inputs = [values[s][i]
                          for s, i in frame.plan.input_locs[inst.slot]]
                self._execute_single(inst, inputs)
            return
        while self._error is None:
            while ready and self._free > 0 and self._error is None:
                inst = ready.pop()
                frame = inst.frame
                plan = frame.plan
                slot = inst.slot
                values = frame.values
                inputs = [values[s][i] for s, i in plan.input_locs[slot]]
                if coalescer is not None:
                    prefix = plan.sig_prefixes[slot]
                    if prefix is not None:
                        signature = inst.sig
                        if signature is None:
                            signature = prefix + (value_signature(inputs),)
                            inst.sig = signature
                        full = coalescer.offer(signature, inst, inputs,
                                               self._now)
                        if full is not None:
                            self._execute_batch(full)
                        continue
                self._execute_single(inst, inputs)
            # The ready wavefront is exhausted: flush pending buckets onto
            # free workers (oldest first).  Anything left waits for a
            # worker to free up; _loop re-enters here after every event.
            if (coalescer is not None and len(coalescer) > 0
                    and self._free > 0 and not ready
                    and self._error is None):
                self._execute_batch(coalescer.pop())
                continue
            return

    def _execute_single(self, inst: Instance, inputs: list) -> None:
        op = inst.op
        frame = inst.frame
        plan = frame.plan
        slot = inst.slot
        cost_model = self.cost_model
        start = self._master_clock
        if self._now > start:
            start = self._now
        dispatch_cost = self._dispatch_const
        if dispatch_cost is None:
            dispatch_cost = cost_model.dispatch(op)
        self._master_clock = start + dispatch_cost
        definition = plan.defs[slot]
        self._free -= 1
        busy = self.num_workers - self._free
        if busy > self.stats.max_concurrency:
            self.stats.max_concurrency = busy
        if definition.is_async:
            memo = self._async_memo
            if memo is None:
                cost = cost_model.async_overhead(op)
            else:
                cost = memo.get(op.op_type)
                if cost is None:
                    cost = memo[op.op_type] = cost_model.async_overhead(op)
            self.stats.note_op(op.op_type, cost)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (inst, None, inputs)))
        else:
            try:
                ctx = frame.ctx or frame.exec_context(self.runtime)
                outputs = definition.kernel(op, inputs, ctx)
            except Exception as exc:
                self._error = self._wrap_error(exc, op)
                return
            kind = plan.cost_kinds[slot]
            cost = cost_model.op_cost(op, inputs, kind)
            done = self._master_clock + cost
            if kind == "cache":
                # lookups contend on the shared cache structure
                self._cache_clock = max(self._cache_clock,
                                        self._master_clock) + cost
                done = self._cache_clock
            elif frame.record:
                mask = plan.store_masks[slot]
                for i, value in enumerate(outputs):
                    if mask[i]:
                        write = cost_model.cache_write_cost(value)
                        self._cache_clock = (max(self._cache_clock,
                                                 done) + write)
                        done = self._cache_clock
            self.stats.note_op(op.op_type, done - self._master_clock)
            heapq.heappush(self._events,
                           (done, next(self._seq),
                            _OP_DONE, (inst, outputs, None)))

    def _execute_batch(self, bucket) -> None:
        """Run one fused kernel call for a bucket of same-signature ops."""
        if len(bucket) < self._coalescer.policy.min_batch_for(
                bucket.signature):
            for inst, inputs in zip(bucket.instances, bucket.inputs):
                if self._free <= 0:
                    # no worker for the stragglers: requeue them (their
                    # memoized signatures make the re-offer cheap)
                    self._ready.push(inst)
                    continue
                self._execute_single(inst, inputs)
            return
        first = bucket.instances[0]
        plan = first.frame.plan
        definition = plan.defs[first.slot]
        kind = plan.cost_kinds[first.slot]
        ops = [inst.op for inst in bucket.instances]
        start = max(self._now, self._master_clock)
        # one fused dispatch through the serialized master
        self._master_clock = start + self.cost_model.dispatch(ops[0])
        self._free -= 1
        busy = self.num_workers - self._free
        if busy > self.stats.max_concurrency:
            self.stats.max_concurrency = busy
        if definition.is_async:
            # fused frame spawn: the caller-context setup is charged once
            # for the bucket; starters run at completion time like the
            # scalar async path.
            cost = self.cost_model.async_batch_overhead(ops[0], len(bucket))
            self.stats.note_batch(bucket.op_type, len(bucket), cost,
                                  bucket.signature)
            heapq.heappush(self._events,
                           (self._master_clock + cost, next(self._seq),
                            _OP_DONE, (list(bucket.instances), None,
                                       list(bucket.inputs))))
            return
        try:
            runtime = self.runtime
            ctxs = [inst.frame.ctx or inst.frame.exec_context(runtime)
                    for inst in bucket.instances]
            outputs_list = definition.batched_kernel(ops, bucket.inputs, ctxs)
            if len(outputs_list) != len(bucket):
                raise EngineError(
                    f"batched kernel of {bucket.op_type} returned "
                    f"{len(outputs_list)} results for {len(bucket)} members")
        except Exception as exc:
            self._error = self._wrap_error(exc, ops[0])
            return
        if kind == "cache":
            # one bulk round-trip through the serialized cache structure
            # instead of N contended lookups (Section 5's bottleneck)
            cost = self.cost_model.bulk_cache_lookup_cost(bucket.inputs)
            self._cache_clock = max(self._cache_clock,
                                    self._master_clock) + cost
            done = self._cache_clock
        else:
            cost = self.cost_model.batch_cost(ops, bucket.inputs, kind)
            done = self._master_clock + cost
            writes = [value
                      for inst, outputs in zip(bucket.instances, outputs_list)
                      if inst.frame.record
                      for i, value in enumerate(outputs)
                      if inst.frame.plan.store_masks[inst.slot][i]]
            if writes:
                # the recorded outputs of a fused batch travel to the value
                # cache as one bulk write
                self._cache_clock = (max(self._cache_clock, done)
                                     + self.cost_model.bulk_cache_write_cost(
                                         writes))
                done = self._cache_clock
        self.stats.note_batch(bucket.op_type, len(bucket),
                              done - self._master_clock, bucket.signature)
        heapq.heappush(self._events,
                       (done, next(self._seq), _OP_DONE,
                        (list(bucket.instances), outputs_list, None)))

    def _complete_batch(self, members: list, outputs_list: list) -> None:
        """Scatter a fused batch's results; one bulk store for the cache."""
        entries = collect_cache_entries(members, outputs_list)
        if entries:
            self.runtime.cache.store_many(entries)
        for inst, outputs in zip(members, outputs_list):
            self._complete_instance(inst, outputs, store=False)

    def _complete_instance(self, inst: Instance, outputs: list,
                           store: bool = True) -> None:
        frame = inst.frame
        op = inst.op
        plan = frame.plan
        slot = inst.slot
        if len(outputs) != plan.n_outputs[slot]:
            raise EngineError(
                f"kernel of {op.name} ({op.op_type}) returned {len(outputs)} "
                f"values, expected {op.num_outputs}")
        frame.values[slot] = outputs
        if store and frame.record:
            mask = plan.store_masks[slot]
            for i, value in enumerate(outputs):
                if mask[i]:
                    self.runtime.cache.store(frame.key, plan.graph_id,
                                             op.id, i, value)
        consumers = plan.consumer_slots[slot]
        if consumers:
            pending = frame.pending
            ready_push = self._ready.push
            for consumer_slot in consumers:
                count = pending[consumer_slot]
                if count == 1:
                    pending[consumer_slot] = -1
                    ready_push(Instance(plan.ops[consumer_slot], frame,
                                        consumer_slot))
                else:
                    pending[consumer_slot] = count - 1
        frame.remaining -= 1
        if frame.remaining == 0:
            frame.on_complete(frame)

    @staticmethod
    def _wrap_error(exc: Exception, op: Operation) -> EngineError:
        err = EngineError(
            f"error executing {op.name} ({op.op_type}) in graph "
            f"{op.graph.name}: {exc}")
        err.__cause__ = exc
        return err
