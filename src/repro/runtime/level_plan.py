"""Level-synchronous tree compilation: the compiled fast path.

The dynamic runtime discovers batching at execution time — every tree
node is a frame spawn, and the coalescer finds same-signature work in
the live ready queue.  That flexibility costs a per-node scheduling
floor (frame spawn, signature matching, bucket bookkeeping) that
dominates on small trees.  When the *shape* of a recursive input is
known at admission (the data loader has it — ``TreeBatch.profiles``),
none of that discovery is necessary: the entire frame tree, every
branch decision, and every fusable wavefront can be computed once per
shape and replayed.

This module compiles a per-(root plan, shape profile, record mode)
:class:`LevelPlan`: the recursion is unrolled into a flat node list
(placeholder bindings, kernels, and call-site "finisher" nodes that
replicate the async starters' completion semantics), leveled with a
Kahn pass, and pre-bucketed — per level, kernel nodes sharing a batch
signature prefix form one fused dispatch.  Executing a LevelPlan is a
fixed sequence of batched kernel calls with precomputed index wiring;
no frames are spawned and no signatures are matched.  Several
concurrent roots with the *same* profile share one wavefront: the
executor widens every bucket across runs (cross-request level
merging in serving mode).

Equivalence contract: values and gradients are bit-identical to the
dynamic path.  The compiler replays the exact binding semantics of the
four async starters (Invoke, Cond, InvokeGrad, CondGrad), derives
frame cache keys from the same ``child_key`` suffix scheme (so
selective-cache stores and ``CacheLookup`` reads hit the same entries),
and executes stateful kernels (``AccumGrad``) with the same frame keys
— the canonical-order :class:`GradientAccumulator` then makes the
replayed backward schedule sum gradients in the dynamic order.

Eligibility (anything else raises an internal marker and the root
falls back to the dynamic coalescer, counted in
``RunStats.level_plan_fallbacks``):

* every root ``Invoke`` targets one shared recursive SubGraph, one
  profile per call site;
* structure is profile-determined: a profiled body either contains
  exactly as many recursive call sites as the profile has children, or
  exactly one ``Cond`` whose branches differ in recursive-call count
  (the profile selects the branch — the compiled finisher *verifies*
  the predicate at run time and raises on mismatch);
* no ``Loop``/``LoopGrad``, no async op behind a control dependency,
  no unbound placeholders.

Plans are memoized on ``graph._level_plans`` keyed by the root
FramePlan object, invalidated by graph mutation and by the op-registry
version stamp (via :func:`plan_for` — a LevelPlan additionally records
the body FramePlans it baked in and revalidates their identity on
every cache hit, so ``set_cache_filter`` on a body graph recompiles).
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Optional

import numpy as np

from repro.core.autodiff import cond_grad_slot_tensors
from repro.graph.registry import ExecContext
from repro.graph.sparse import IndexedSlices
from repro.ops import tensor_array
from repro.ops.common import role_captures

from .plan import plan_for
from .plan import _PERSISTENT_ALIAS_OPS
from .scheduler import EngineError, SchedulerCore, _values_bytes, densify

__all__ = ["LevelPlan", "level_plan_for", "execute_level_plan",
           "build_level_calls", "execute_level_call", "complete_level_call"]

#: LRU caps for the per-graph plan memo — compiled plans are a few KB
#: each, the ineligible sentinel is one dict row; both grow without
#: bound on adversarial long-tail shape streams unless capped
LEVEL_PLAN_CAP = int(os.environ.get("REPRO_LEVEL_PLAN_CAP", "256"))
LEVEL_PLAN_INELIGIBLE_CAP = int(
    os.environ.get("REPRO_LEVEL_PLAN_INELIGIBLE_CAP", "512"))

# node kinds
_KERNEL = 0        # synchronous op: run its kernel
_BIND_FEED = 1     # root placeholder: read the run's feed map
_BIND_ALIAS = 2    # bound op in a child frame: alias the wired value
_FIN_PASS = 3      # Invoke finisher: forward the child frame's outputs
_FIN_COND = 4      # Cond finisher: verify predicate, forward branch outputs
_FIN_IGRAD = 5     # InvokeGrad finisher: forward outputs + done flag
_FIN_CGRAD = 6     # CondGrad finisher: scatter grads / zeros + done flag

_FINISHERS = (_FIN_PASS, _FIN_COND, _FIN_IGRAD, _FIN_CGRAD)

#: memo sentinel for shapes that compiled to "not eligible"
_INELIGIBLE = object()


def _profile_depth(profile) -> int:
    """Node depth of a shape profile: a leaf ``()`` is depth 1."""
    if not profile:
        return 1
    return 1 + max(_profile_depth(child) for child in profile)


def _profile_has_holes(profile) -> bool:
    """True when any subtree of the profile is undetermined (``None``)."""
    if profile is None:
        return True
    return any(_profile_has_holes(child) for child in profile)


class _Ineligible(Exception):
    """Internal: this root cannot be level-compiled; use the dynamic path."""


class _CNode:
    """One compiled node: a value producer in the flattened frame tree."""

    __slots__ = ("kind", "frame_idx", "op", "defn", "inputs", "extra_deps",
                 "store_mask", "graph_id", "sig_prefix", "feed_op_id",
                 "expected", "recipe", "src_plan", "src_slot")

    def __init__(self, kind, frame_idx, op, defn):
        self.kind = kind
        self.frame_idx = frame_idx
        self.op = op
        self.defn = defn
        #: originating (FramePlan, slot) — lets process-pool shipping
        #: reuse the per-slot ship masks and plan-reference transport
        self.src_plan = None
        self.src_slot = -1
        #: value inputs: tuple of (producer node id, output index)
        self.inputs = ()
        #: ordering-only dependencies (node ids) for the level assignment
        self.extra_deps = ()
        #: per-output store booleans (None when this node records nothing)
        self.store_mask = None
        self.graph_id = -1
        #: interned batch-signature prefix (kernel nodes only)
        self.sig_prefix = None
        self.feed_op_id = -1
        #: expected predicate value (Cond/CondGrad finishers)
        self.expected = False
        #: per-output take-grad/zero booleans (CondGrad finisher)
        self.recipe = ()


class _CFrame:
    """Stand-in for :class:`Frame` inside compiled ExecContexts.

    Kernels only touch ``ctx.frame.key`` (cache keys, accumulator order
    keys) and ``ctx.frame.record``; compiled execution never needs the
    rest of the frame machinery.
    """

    __slots__ = ("key", "record")

    def __init__(self, key, record):
        self.key = key
        self.record = record


class _FrameJob:
    """One frame context queued for expansion (BFS over the frame tree)."""

    __slots__ = ("plan", "suffix", "depth", "mode", "profile", "bindings",
                 "frame_idx", "fill")

    def __init__(self, plan, suffix, depth, mode, profile, bindings,
                 frame_idx, fill):
        self.plan = plan
        self.suffix = suffix
        self.depth = depth
        self.mode = mode          # "root" | "node" | "branch" | "helper" | "grad"
        self.profile = profile    # children profiles (profiled frames) or None
        self.bindings = bindings  # op id -> (node id, out idx), child frames
        self.frame_idx = frame_idx
        self.fill = fill          # finisher wiring callback, run after the scan


class LevelPlan:
    """A compiled level-synchronous schedule for one (root plan, profile).

    ``nodes`` is the flattened frame tree; ``levels`` is the wavefront
    schedule — per level, a tuple of scalar node ids (binds, finishers,
    unfusable kernels) and a tuple of fused buckets (node-id tuples
    sharing a batch-signature prefix).  ``frames`` holds per-frame
    ``(key suffix, record)`` pairs; a run's frame key is its root key
    plus the suffix, which is exactly the dynamic ``child_key`` chain.
    """

    __slots__ = ("nodes", "levels", "frames", "root_node_of", "body_deps",
                 "max_depth", "num_nodes", "num_frames", "profiles",
                 "scalar_counts", "releases", "scratch_nodes")

    def __init__(self, nodes, levels, frames, root_node_of, body_deps,
                 max_depth, profiles, scalar_counts, releases):
        self.nodes = nodes
        #: mirrors FramePlan.scratch_slots: nodes whose outputs alias
        #: persistent storage don't count toward live scratch bytes
        self.scratch_nodes = tuple(
            node.op.op_type not in _PERSISTENT_ALIAS_OPS for node in nodes)
        self.levels = levels
        self.frames = frames
        self.root_node_of = root_node_of
        self.body_deps = body_deps
        self.max_depth = max_depth
        self.num_nodes = len(nodes)
        self.num_frames = len(frames)
        self.profiles = profiles
        #: per-plan op counts for the scalar schedule (op type -> count):
        #: the fixed schedule makes scalar accounting static, so a sweep
        #: books these once per run instead of calling note_op per node
        self.scalar_counts = scalar_counts
        #: per-level tuples of node ids whose last value reader sits in
        #: that level: the sweep nulls them right after the level runs.
        #: Root-frame nodes are pinned (any of them may be fetched).
        self.releases = releases

    def __repr__(self):
        return (f"<LevelPlan nodes={self.num_nodes} levels={len(self.levels)} "
                f"frames={self.num_frames} depth={self.max_depth}>")


def level_plan_for(graph, root_plan, shape_profile, record: bool,
                   stats=None, subtree=None) -> Optional["LevelPlan"]:
    """Compile (or fetch the memoized) LevelPlan for one root shape.

    ``shape_profile`` is a sequence of per-root-call-site shape profiles
    in op-id order — ``TreeBatch.profiles`` for the tree models.
    Returns ``None`` when the root is not eligible (the caller falls
    back to the dynamic path).  Memoized on ``graph._level_plans``;
    ineligible shapes are memoized too, so repeated fallbacks are one
    dict probe.  The memo is LRU-bounded (``REPRO_LEVEL_PLAN_CAP`` /
    ``REPRO_LEVEL_PLAN_INELIGIBLE_CAP``) so adversarial long-tail shape
    streams cannot grow it without bound.

    When ``subtree`` is a recursive SubGraph, the compiled plan covers
    one *subtree* of the recursion (``shape_profile`` is that node's
    children tuple) — the partial-compilation path launched from a
    dynamic spine frame.  When ``stats`` (a RunStats) is given, cache
    probes book ``level_plan_cache_hits``/``_misses`` and compile time
    accrues into ``level_plan_compile_ms``.
    """
    try:
        profiles = tuple(shape_profile)
    except TypeError:
        return None
    if subtree is None:
        key = (root_plan, profiles, bool(record))
    else:
        key = (root_plan, profiles, bool(record), "sub")
    cache = graph._level_plans
    entry = cache.get(key)
    if entry is _INELIGIBLE:
        if stats is not None:
            stats.level_plan_cache_hits += 1
        return None
    if entry is not None:
        # revalidate baked-in body plans: set_cache_filter (installed by
        # differentiate_subgraph) invalidates a *body* graph's frame
        # plans without touching this root graph's caches
        if all(plan_for(g) is p for g, p in entry.body_deps):
            if stats is not None:
                stats.level_plan_cache_hits += 1
            with graph._lock:
                if cache.get(key) is entry:  # LRU touch: move to end
                    del cache[key]
                    cache[key] = entry
            return entry
    if stats is not None:
        stats.level_plan_cache_misses += 1
    t0 = time.perf_counter()
    try:
        lp = _compile(root_plan, profiles, record, subtree)
    except _Ineligible:
        lp = None
    if stats is not None:
        stats.level_plan_compile_ms += (time.perf_counter() - t0) * 1e3
    with graph._lock:
        cache[key] = lp if lp is not None else _INELIGIBLE
        cap = LEVEL_PLAN_CAP if lp is not None else LEVEL_PLAN_INELIGIBLE_CAP
        if cap > 0:
            same_kind = [k for k, v in cache.items()
                         if (v is _INELIGIBLE) == (lp is None)]
            evicted = 0
            for k in same_kind[:max(0, len(same_kind) - cap)]:
                del cache[k]
                evicted += 1
            if evicted and stats is not None:
                stats.level_plan_evictions += evicted
    return lp


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------

def _compile(root_plan, profiles, session_record, subtree=None) -> "LevelPlan":
    # -- pre-pass: identify the recursive SubGraph at the root ------------
    if subtree is not None:
        # partial compilation: the "root" of this plan is one recursive
        # subtree body, launched from a dynamic spine frame; its feed is
        # the runtime binding dict the starter would have passed to
        # spawn_frame, and ``profiles`` is the subtree node's children
        s_rec = subtree
        if not s_rec.finalized:
            raise _Ineligible("recursive SubGraph is not finalized")
    else:
        root_invokes = [op for op in root_plan.ops if op.op_type == "Invoke"]
        if not root_invokes:
            raise _Ineligible("no recursive call sites in the root plan")
        s_rec = root_invokes[0].attrs["subgraph"]
        for op in root_invokes[1:]:
            if op.attrs["subgraph"] is not s_rec:
                raise _Ineligible(
                    "root call sites target multiple SubGraphs")
        if len(root_invokes) != len(profiles):
            raise _Ineligible("profile count does not match root call sites")
        if not s_rec.finalized:
            raise _Ineligible("recursive SubGraph is not finalized")

    nodes: list[_CNode] = []
    frames: list[tuple] = []
    body_deps: dict = {}          # body graph -> FramePlan baked in
    cond_roles: dict = {}         # (frame suffix, cond op id) -> "true"/"false"
    store_index: dict = {}        # (suffix, graph_id, op_id, out_idx) -> node
    root_node_of: dict = {}       # root op id -> node id
    jobs: deque = deque()
    max_depth = [0]

    def body_plan(g):
        p = body_deps.get(g)
        if p is None:
            p = body_deps[g] = plan_for(g)
        return p

    def struct_count_of(sg):
        """Recursive call sites (Invokes of s_rec) in a SubGraph body."""
        return sum(1 for o in body_plan(sg.graph).ops
                   if o.op_type == "Invoke"
                   and o.attrs.get("subgraph") is s_rec)

    def add_job(plan, suffix, depth, mode, profile, bindings, fill):
        if mode == "root":
            record = False
        else:
            record = (session_record
                      and not getattr(plan.graph, "is_backward_body", False))
        frame_idx = len(frames)
        frames.append((suffix, record))
        if depth > max_depth[0]:
            max_depth[0] = depth
        jobs.append(_FrameJob(plan, suffix, depth, mode, profile, bindings,
                              frame_idx, fill))

    def _scan(job):
        plan = job.plan
        suffix = job.suffix
        frame_idx = job.frame_idx
        record = frames[frame_idx][1]
        index_of = plan.index_of
        node_of_slot: list = [None] * plan.num_slots
        first_node = len(nodes)
        children = job.profile
        cursor = 0
        cond_seen = False

        def emit(kind, op, defn, slot):
            nid = len(nodes)
            node = _CNode(kind, frame_idx, op, defn)
            node.src_plan = plan
            node.src_slot = slot
            if record:
                mask = plan.store_masks[slot]
                if any(mask):
                    node.store_mask = mask
                    node.graph_id = plan.graph_id
                    for i, m in enumerate(mask):
                        if m:
                            store_index[(suffix, plan.graph_id, op.id, i)] = nid
            nodes.append(node)
            node_of_slot[slot] = nid
            return nid, node

        # -- pass 1: bound / fed slots (bypass deps, like seed_frame) ------
        # Capture placeholders can sit at *later* plan slots than their
        # in-frame consumers (they are created lazily at capture time), so
        # every binding node must exist before the wiring pass reads it.
        for slot, op in enumerate(plan.ops):
            defn = plan.defs[slot]
            if job.mode in ("root", "subroot"):
                if op.op_type == "Placeholder":
                    _, node = emit(_BIND_FEED, op, defn, slot)
                    node.feed_op_id = op.id
            else:
                bound = job.bindings.get(op.id)
                if bound is not None:
                    _, node = emit(_BIND_ALIAS, op, defn, slot)
                    node.inputs = (bound,)
                elif op.op_type == "Placeholder":
                    raise _Ineligible(f"unbound placeholder {op.name}")

        # -- pass 2: kernels and call sites in slot order ------------------
        for slot, op in enumerate(plan.ops):
            if node_of_slot[slot] is not None:
                continue
            defn = plan.defs[slot]
            op_type = op.op_type

            # -- value wiring + control dependencies ----------------------
            in_refs = []
            for s, i in plan.input_locs[slot]:
                src = node_of_slot[s]
                if src is None:
                    raise _Ineligible(f"unwired input of {op.name}")
                in_refs.append((src, i))
            extra = ()
            if op.control_inputs:
                if defn.is_async:
                    # the dynamic path gates the *spawn* on control deps;
                    # a compiled child would not wait — bail out
                    raise _Ineligible("control dependency on a call site")
                ex = []
                for c in op.control_inputs:
                    s2 = index_of.get(c.id)
                    if s2 is None or node_of_slot[s2] is None:
                        raise _Ineligible("control producer outside the plan")
                    ex.append(node_of_slot[s2])
                extra = tuple(ex)

            if not defn.is_async:
                if op_type == "CacheLookup":
                    skey = (suffix, op.attrs["target_graph_id"],
                            op.attrs["target_op_id"],
                            op.attrs["target_out_idx"])
                    storer = store_index.get(skey)
                    if storer is None:
                        raise _Ineligible(
                            "cache lookup without a compiled producer")
                    # order after the store: same-level fusion would read
                    # the cache before the producing level flushed it
                    extra = extra + (storer,)
                nid, node = emit(_KERNEL, op, defn, slot)
                node.inputs = tuple(in_refs)
                node.extra_deps = extra
                node.sig_prefix = plan.sig_prefixes[slot]
                continue

            # -- async call sites: finisher node + child frame job ---------
            if op_type == "Invoke":
                sg = op.attrs["subgraph"]
                if not sg.finalized:
                    raise _Ineligible("call target is not finalized")
                if sg is s_rec:
                    if job.mode in ("helper", "grad"):
                        raise _Ineligible(
                            "recursive call outside the profiled structure")
                    if children is None or cursor >= len(children):
                        raise _Ineligible("more call sites than the profile")
                    child_profile = children[cursor]
                    cursor += 1
                    child_mode = "node"
                else:
                    child_profile = None
                    child_mode = "helper"
                input_ids = sg.input_op_ids[:op.attrs["n_args"]]
                if len(in_refs) < len(input_ids):
                    raise _Ineligible("call site is missing arguments")
                bindings = dict(zip(input_ids, in_refs))
                for ph_id, pos in role_captures(op, "main"):
                    if pos >= len(in_refs):
                        raise _Ineligible("capture position out of range")
                    bindings[ph_id] = in_refs[pos]
                child_plan = body_plan(sg.graph)
                nid, node = emit(_FIN_PASS, op, defn, slot)
                out_locs = sg.output_locs

                def fill(child_nos, own, node=node, out_locs=out_locs,
                         child_plan=child_plan, base_extra=extra):
                    node.inputs = tuple(
                        (child_nos[child_plan.index_of[oid]], i)
                        for oid, i in out_locs)
                    node.extra_deps = base_extra + own

                add_job(child_plan, suffix + (op.id,), job.depth + 1,
                        child_mode, child_profile, bindings, fill)

            elif op_type == "Cond":
                if job.mode not in ("node", "subroot") or cond_seen:
                    raise _Ineligible("data-dependent control flow here")
                cond_seen = True
                c = len(children)
                t_sg = op.attrs["true_subgraph"]
                f_sg = op.attrs["false_subgraph"]
                if not (t_sg.finalized and f_sg.finalized):
                    raise _Ineligible("branch body is not finalized")
                tc, fc = struct_count_of(t_sg), struct_count_of(f_sg)
                if tc == c and fc != c:
                    role = "true"
                elif fc == c and tc != c:
                    role = "false"
                else:
                    raise _Ineligible(
                        "branch is not determined by the shape profile")
                cond_roles[(suffix, op.id)] = role
                chosen = t_sg if role == "true" else f_sg
                bindings = {}
                for ph_id, pos in role_captures(op, role):
                    if pos >= len(in_refs):
                        raise _Ineligible("capture position out of range")
                    bindings[ph_id] = in_refs[pos]
                pred = in_refs[0]
                child_plan = body_plan(chosen.graph)
                nid, node = emit(_FIN_COND, op, defn, slot)
                node.expected = (role == "true")
                out_locs = chosen.output_locs

                def fill(child_nos, own, node=node, out_locs=out_locs,
                         child_plan=child_plan, pred=pred, base_extra=extra):
                    node.inputs = (pred,) + tuple(
                        (child_nos[child_plan.index_of[oid]], i)
                        for oid, i in out_locs)
                    node.extra_deps = base_extra + own

                add_job(child_plan, suffix + (op.id,), job.depth + 1,
                        "branch", children, bindings, fill)

            elif op_type == "InvokeGrad":
                if job.mode not in ("root", "grad"):
                    raise _Ineligible("backward call in a forward body")
                fwd = op.attrs["fwd_subgraph"]
                if fwd._grad_subgraph is None:
                    raise _Ineligible("gradient body not built yet")
                gsg = fwd.grad_subgraph
                if not gsg.finalized:
                    raise _Ineligible("gradient body is not finalized")
                if len(in_refs) < len(gsg.input_op_ids):
                    raise _Ineligible("backward call is missing seeds")
                bindings = dict(zip(gsg.input_op_ids, in_refs))
                site_id = op.attrs["site_id"]
                child_plan = body_plan(gsg.graph)
                nid, node = emit(_FIN_IGRAD, op, defn, slot)
                out_locs = gsg.output_locs

                def fill(child_nos, own, node=node, out_locs=out_locs,
                         child_plan=child_plan, base_extra=extra):
                    node.inputs = tuple(
                        (child_nos[child_plan.index_of[oid]], i)
                        for oid, i in out_locs)
                    node.extra_deps = base_extra + own

                add_job(child_plan, suffix + (site_id,), job.depth + 1,
                        "grad", None, bindings, fill)

            elif op_type == "CondGrad":
                if job.mode not in ("root", "grad"):
                    raise _Ineligible("backward branch in a forward body")
                site_id = op.attrs["site_id"]
                role = cond_roles.get((suffix, site_id))
                if role is None:
                    raise _Ineligible("no compiled branch decision to mirror")
                sg = op.attrs[f"{role}_subgraph"]
                if sg._grad_subgraph is None:
                    raise _Ineligible("gradient body not built yet")
                backward = sg.grad_subgraph
                if not backward.finalized:
                    raise _Ineligible("gradient body is not finalized")
                n_seeds = op.attrs["n_seeds"]
                entries = op.attrs["cap_entries"]
                if len(in_refs) < 1 + n_seeds:
                    raise _Ineligible("backward branch is missing seeds")
                pred = in_refs[0]
                seeds = in_refs[1:1 + n_seeds]
                refs = in_refs[1 + n_seeds:]
                if len(refs) != len(entries):
                    raise _Ineligible("capture entries out of sync")
                if len(seeds) < len(backward.input_op_ids):
                    raise _Ineligible("backward branch is missing seeds")
                bindings = dict(zip(backward.input_op_ids, seeds))
                slot_tensors = cond_grad_slot_tensors(sg)
                child_plan = body_plan(backward.graph)
                nid, node = emit(_FIN_CGRAD, op, defn, slot)
                node.expected = (role == "true")

                def fill(child_nos, own, node=node, child_plan=child_plan,
                         pred=pred, refs=tuple(refs), entries=entries,
                         role=role, slot_tensors=slot_tensors,
                         base_extra=extra):
                    srcs = []
                    takes = []
                    for (entry_role, ph_id), ref in zip(entries, refs):
                        t = (slot_tensors.get(ph_id)
                             if entry_role == role else None)
                        if t is not None:
                            srcs.append(
                                (child_nos[child_plan.index_of[t.op.id]],
                                 t.index))
                            takes.append(True)
                        else:
                            srcs.append(ref)
                            takes.append(False)
                    node.inputs = (pred,) + tuple(srcs)
                    node.recipe = tuple(takes)
                    node.extra_deps = base_extra + own

                add_job(child_plan, suffix + (site_id,), job.depth + 1,
                        "grad", None, bindings, fill)

            else:
                raise _Ineligible(f"async op {op_type} is not compilable")

        # -- structural accounting ----------------------------------------
        if children is not None:
            if cond_seen:
                if cursor != 0:
                    raise _Ineligible(
                        "mixed direct recursion and branch recursion")
            elif cursor != len(children):
                raise _Ineligible("fewer call sites than the profile")
        if job.mode in ("root", "subroot"):
            for slot, op in enumerate(plan.ops):
                root_node_of[op.id] = node_of_slot[slot]
        if job.fill is not None:
            job.fill(node_of_slot, tuple(range(first_node, len(nodes))))

    if subtree is not None:
        add_job(body_plan(s_rec.graph), (), 0, "subroot", profiles,
                None, None)
    else:
        add_job(root_plan, (), 0, "root", profiles, None, None)
    while jobs:
        _scan(jobs.popleft())

    _collapse_aliases(nodes)
    levels, scalar_counts, releases = _level_schedule(nodes)
    return LevelPlan(tuple(nodes), levels, tuple(frames), root_node_of,
                     tuple(body_deps.items()), max_depth[0], profiles,
                     scalar_counts, releases)


def _collapse_aliases(nodes) -> None:
    """Forward consumers of pure ``_BIND_ALIAS`` nodes to their source.

    A binding alias is pure data movement (a child placeholder reading
    the parent's wired value) — one scheduled node per binding per frame,
    a large fraction of the scalar sweep on deep trees.  Rewriting every
    value input and ordering dep through store-less aliases leaves them
    unreferenced; ``_level_schedule`` then drops them from the schedule.
    Aliases that record to the value cache keep their node (the store is
    a side effect the schedule must retain), so chains stop there: a dep
    pointing at a recording alias still orders after its store.
    """
    def resolve(nid, idx):
        node = nodes[nid]
        while node.kind == _BIND_ALIAS and node.store_mask is None:
            nid, idx = node.inputs[0]
            node = nodes[nid]
        return nid, idx

    for node in nodes:
        if node.inputs:
            node.inputs = tuple(resolve(s, i) for s, i in node.inputs)
        if node.extra_deps:
            node.extra_deps = tuple(resolve(d, 0)[0]
                                    for d in node.extra_deps)


def _level_schedule(nodes) -> tuple:
    """Kahn-level the node DAG and pre-bucket each level.

    Level of a node = longest dependency chain below it; per level,
    kernel nodes with the same batch-signature prefix form one fused
    bucket and everything else (bindings, finishers, unfusable or
    stateful kernels) runs scalar in node-id order.  Collapsed aliases
    (store-less ``_BIND_ALIAS`` nodes left unreferenced by
    :func:`_collapse_aliases`) are dropped from the schedule entirely.
    Returns ``(levels, scalar_counts, releases)``: the wavefront
    schedule, the static per-op-type counts of scheduled scalar nodes
    that the dynamic path would have booked through ``note_op``, and —
    per level — the node ids whose last value reader sits in that level
    (the sweep nulls their values right after the level; root-frame
    nodes are pinned because any of them may be fetched at the end).
    """
    n = len(nodes)
    referenced = set()
    for node in nodes:
        referenced.update(s for s, _ in node.inputs)
        referenced.update(node.extra_deps)
    indeg = [0] * n
    out: list = [[] for _ in range(n)]
    level = [0] * n
    for nid, node in enumerate(nodes):
        deps = {s for s, _ in node.inputs}
        deps.update(node.extra_deps)
        indeg[nid] = len(deps)
        for d in deps:
            out[d].append(nid)
    queue = deque(nid for nid in range(n) if indeg[nid] == 0)
    seen = 0
    while queue:
        nid = queue.popleft()
        seen += 1
        base = level[nid] + 1
        for c in out[nid]:
            if base > level[c]:
                level[c] = base
            indeg[c] -= 1
            if indeg[c] == 0:
                queue.append(c)
    if seen != n:
        raise _Ineligible("compiled schedule has a cycle")

    by_level: dict = {}
    for nid in range(n):
        by_level.setdefault(level[nid], []).append(nid)
    levels = []
    scalar_counts: dict = {}
    node_pos = [None] * n  # scheduled node -> index into `levels`
    for li in sorted(by_level):
        scalars = []
        buckets: dict = {}
        for nid in by_level[li]:
            node = nodes[nid]
            kind = node.kind
            if kind == _KERNEL and node.sig_prefix is not None:
                buckets.setdefault(node.sig_prefix, []).append(nid)
                node_pos[nid] = len(levels)
                continue
            if kind == _BIND_ALIAS and node.store_mask is None \
                    and nid not in referenced:
                continue  # collapsed: every consumer reads the source
            scalars.append(nid)
            node_pos[nid] = len(levels)
            if kind != _BIND_FEED and kind != _BIND_ALIAS:
                op_type = node.op.op_type
                scalar_counts[op_type] = scalar_counts.get(op_type, 0) + 1
        if scalars or buckets:
            levels.append((tuple(scalars),
                           tuple(tuple(b) for b in buckets.values())))
    # last value-reader level per scheduled node -> per-level release set
    last_pos = [None] * n
    for nid, node in enumerate(nodes):
        pos = node_pos[nid]
        if pos is None:
            continue  # collapsed alias: reads nothing at run time
        for s, _ in node.inputs:
            prev = last_pos[s]
            if prev is None or pos > prev:
                last_pos[s] = pos
    releases = [[] for _ in levels]
    for nid in range(n):
        if node_pos[nid] is None or nodes[nid].frame_idx == 0:
            continue  # unscheduled, or pinned (fetchable root value)
        pos = last_pos[nid]
        if pos is None:
            pos = node_pos[nid]  # no reader: dies right after it runs
        releases[pos].append(nid)
    return (tuple(levels), tuple(scalar_counts.items()),
            tuple(tuple(r) for r in releases))


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def _ctx_of(core: SchedulerCore, lp: LevelPlan, run, frame_idx: int):
    ctx = run.ctxs[frame_idx]
    if ctx is None:
        suffix, record = lp.frames[frame_idx]
        frame = _CFrame(run.prefix + suffix, record)
        ctx = run.ctxs[frame_idx] = ExecContext(core.runtime, frame, record)
    return ctx


def _run_scalar(core, lp, node, nid, run, entries):
    # scalar stats are booked in bulk by execute_level_plan (the scalar
    # schedule is static per plan), so this path never touches note_op
    values = run.node_values
    ins = [values[s][i] for s, i in node.inputs]
    kind = node.kind
    if kind == _KERNEL:
        ctx = _ctx_of(core, lp, run, node.frame_idx)
        try:
            outputs = node.defn.kernel(node.op, ins, ctx)
        except EngineError:
            raise
        except Exception as exc:  # noqa: BLE001 - wrapped like the dynamic path
            raise SchedulerCore._wrap_error(exc, node.op) from exc
    elif kind == _BIND_FEED:
        try:
            outputs = [run.feed[node.feed_op_id]]
        except KeyError:
            raise EngineError(
                f"placeholder {node.op.name} was not fed") from None
    elif kind == _BIND_ALIAS:
        outputs = [ins[0]]
    elif kind == _FIN_PASS:
        outputs = ins
    elif kind == _FIN_COND:
        if bool(np.asarray(ins[0])) != node.expected:
            raise EngineError(
                f"shape profile mismatch at {node.op.name}: the fed data "
                "disagrees with the compiled branch decision")
        outputs = ins[1:]
    elif kind == _FIN_IGRAD:
        outputs = list(ins)
        outputs.append(np.bool_(True))
    else:  # _FIN_CGRAD
        if bool(np.asarray(ins[0])) != node.expected:
            raise EngineError(
                f"shape profile mismatch at {node.op.name}: the fed data "
                "disagrees with the compiled branch decision")
        outputs = [v if take else tensor_array.zero_value_like(v)
                   for take, v in zip(node.recipe, ins[1:])]
        outputs.append(np.bool_(True))
    values[nid] = outputs
    mask = node.store_mask
    if mask is not None:
        key = _ctx_of(core, lp, run, node.frame_idx).frame.key
        gid = node.graph_id
        oid = node.op.id
        for i, v in enumerate(outputs):
            if mask[i]:
                entries.append((key, gid, oid, i, v))


def _member_sig(ins):
    """Lean per-member fusion-legality key: dtype + shape per input.

    Equivalent partitioning to the coalescer's ``value_signature`` but
    cheap enough for the per-member hot loop: ndarrays key on
    ``(dtype.num, shape)``, numpy scalars on ``(-1, dtype.num)``, other
    python values on their type name (the three forms cannot collide).
    """
    sig = []
    for v in ins:
        cls = v.__class__
        if cls is np.ndarray:
            sig.append((v.dtype.num, v.shape))
        elif isinstance(v, np.generic):
            sig.append((-1, v.dtype.num))
        elif cls is IndexedSlices:
            # sparse gradients: same partitioning rule as the
            # coalescer's _value_sig — never fused with dense members
            sig.append((-2, v.values.dtype.num, v.values.shape,
                        v.dense_shape))
        else:
            sig.append(cls.__name__)
    return tuple(sig)


def _scatter(member, outputs, entries, core, lp):
    node, nid, run, _ = member
    run.node_values[nid] = outputs
    mask = node.store_mask
    if mask is not None:
        key = _ctx_of(core, lp, run, node.frame_idx).frame.key
        gid = node.graph_id
        oid = node.op.id
        for j, v in enumerate(outputs):
            if mask[j]:
                entries.append((key, gid, oid, j, v))


class _LevelCall:
    """One prepared kernel dispatch of a level: a single or fused call.

    The master builds these (input gather, fusion grouping, ExecContext
    creation) so that *executing* one — the kernel invocation alone, in
    :func:`execute_level_call` — is free of shared mutable state and can
    run on a pool thread or be shipped to a worker process.  Scatter,
    stats, histogram, and cache-store bookkeeping happen back on the
    master in :func:`complete_level_call`, in original call order.
    """

    __slots__ = ("defn", "members", "sig", "ctxs")

    #: duck-type marker: pool workers discriminate task payloads without
    #: importing this module at load time
    is_level_call = True

    def __init__(self, defn, members, sig, ctxs):
        self.defn = defn
        #: list of (node, nid, run, inputs)
        self.members = members
        #: interned member signature for fused calls; None -> width-1
        self.sig = sig
        #: per-member ExecContexts, prebuilt on the master (worker
        #: threads must never lazily touch ``run.ctxs``)
        self.ctxs = ctxs


def build_level_calls(core, lp, buckets, live):
    """Gather one level's buckets across ``live`` runs into _LevelCalls.

    Replicates the serial grouping exactly: one fused call per uniform
    bucket, signature regrouping otherwise, width-1 groups as singles.
    """
    nodes = lp.nodes
    calls = []
    for bucket in buckets:
        defn = nodes[bucket[0]].defn
        members = []  # (node, nid, run, inputs)
        for nid in bucket:
            node = nodes[nid]
            node_inputs = node.inputs
            for run in live:
                values = run.node_values
                members.append((node, nid, run,
                                [values[s][i] for s, i in node_inputs]))
        if len(members) == 1:
            m = members[0]
            calls.append(_LevelCall(
                defn, members, None,
                [_ctx_of(core, lp, m[2], m[0].frame_idx)]))
            continue
        sigs = [_member_sig(m[3]) for m in members]
        sig0 = sigs[0]
        uniform = True
        for s in sigs:
            if s != sig0:
                uniform = False
                break
        if uniform:
            # the common case on profiled workloads: one fused call, no
            # regrouping — every member stacked the same way
            ctxs = [_ctx_of(core, lp, m[2], m[0].frame_idx)
                    for m in members]
            calls.append(_LevelCall(defn, members, sig0, ctxs))
            continue
        groups: dict = {}
        for i, s in enumerate(sigs):
            groups.setdefault(s, []).append(i)
        for sig, idxs in groups.items():
            group = [members[i] for i in idxs]
            ctxs = [_ctx_of(core, lp, m[2], m[0].frame_idx) for m in group]
            calls.append(_LevelCall(defn, group,
                                    sig if len(group) > 1 else None, ctxs))
    return calls


def execute_level_call(call):
    """Run one prepared call's kernel(s); return the per-member outputs.

    The only piece of a sweep that may leave the master thread: pure
    kernel execution against prebuilt contexts.  Errors match the serial
    path — EngineError passes through, anything else is wrapped with the
    offending op.
    """
    members = call.members
    if call.sig is None:
        node, _, _, ins = members[0]
        try:
            return [call.defn.kernel(node.op, ins, call.ctxs[0])]
        except EngineError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise SchedulerCore._wrap_error(exc, node.op) from exc
    ops = [m[0].op for m in members]
    b_inputs = [m[3] for m in members]
    try:
        outputs_list = call.defn.batched_kernel(ops, b_inputs, call.ctxs)
    except EngineError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise SchedulerCore._wrap_error(exc, ops[0]) from exc
    if len(outputs_list) != len(members):
        raise EngineError(
            f"batched kernel for {members[0][0].op.op_type} returned "
            f"{len(outputs_list)} results for {len(members)} ops")
    return outputs_list


def complete_level_call(core, lp, call, outputs_list, entries, hist):
    """Master-side completion: stats, histogram, value scatter, stores."""
    members = call.members
    first_node = members[0][0]
    if call.sig is None:
        core.stats.note_op(first_node.op.op_type, 0.0)
        hist[1] = hist.get(1, 0) + 1
        _scatter(members[0], outputs_list[0], entries, core, lp)
        return
    width = len(members)
    core.stats.note_batch(first_node.op.op_type, width, 0.0,
                          first_node.sig_prefix + (call.sig,))
    hist[width] = hist.get(width, 0) + 1
    for member, outputs in zip(members, outputs_list):
        _scatter(member, outputs, entries, core, lp)


def execute_level_plan(core: SchedulerCore, lp: LevelPlan, runs) -> list:
    """Execute one wavefront sweep for ``runs`` (same LevelPlan).

    Buckets widen across runs — concurrent same-profile roots share one
    fused dispatch per level.  Returns one entry per run: the fetched
    values, or ``None`` for runs cancelled mid-sweep.
    """
    cache = core.runtime.cache
    live = []
    for run in runs:
        if run.cancelled:
            continue
        run.node_values = [None] * lp.num_nodes
        run.ctxs = [None] * lp.num_frames
        live.append(run)
    if live and lp.scalar_counts:
        # the scalar schedule is static, so its op accounting is too:
        # one bulk book-in per sweep instead of note_op per node (runs
        # cancelled mid-sweep keep the full count, matching the spirit
        # of the dynamic path's best-effort stats under cancellation)
        stats = core.stats
        k = len(live)
        counts, times = stats.per_type_count, stats.per_type_time
        for op_type, count in lp.scalar_counts:
            c = count * k
            stats.ops_executed += c
            counts[op_type] = counts.get(op_type, 0) + c
            times[op_type] = times.get(op_type, 0.0)
    nodes = lp.nodes
    track = core._track_live
    for level_idx, (scalars, buckets) in enumerate(lp.levels):
        live = [r for r in live if not r.cancelled]
        if not live:
            break
        entries: list = []
        for nid in scalars:
            node = nodes[nid]
            for run in live:
                _run_scalar(core, lp, node, nid, run, entries)
        if buckets:
            hist = core.stats.level_width_hist.setdefault(level_idx, {})
            calls = build_level_calls(core, lp, buckets, live)
            core._execute_level_calls(lp, calls, entries, hist)
        if entries:
            # one bulk store per level, after every node of the level —
            # CacheLookup consumers are ordered into later levels
            cache.store_many(entries)
        if track:
            scratch = lp.scratch_nodes
            produced = [nid for nid in scalars if scratch[nid]]
            for bucket in buckets:
                produced.extend(nid for nid in bucket if scratch[nid])
            added = 0
            for run in live:
                values = run.node_values
                for nid in produced:
                    outputs = values[nid]
                    if outputs is not None:
                        added += _values_bytes(outputs)
            peak = (core._live_bytes + added
                    + core.runtime.accumulators.retained_bytes)
            core._live_bytes += added
            if peak > core.stats.peak_live_bytes:
                core.stats.peak_live_bytes = peak
        release = lp.releases[level_idx]
        if release:
            for run in live:
                values = run.node_values
                for nid in release:
                    outputs = values[nid]
                    if outputs is not None:
                        if track and lp.scratch_nodes[nid]:
                            core._live_bytes -= _values_bytes(outputs)
                        values[nid] = None
    results = []
    for run in runs:
        if run.cancelled or run.node_values is None:
            results.append(None)
        else:
            values = run.node_values
            if track:
                scratch = lp.scratch_nodes
                freed = 0
                for nid, outputs in enumerate(values):
                    if outputs is not None and scratch[nid]:
                        freed += _values_bytes(outputs)
                core._live_bytes -= freed
            if run.densify_fetches:
                results.append([densify(values[nid][i])
                                for nid, i in run.fetch_locs])
            else:
                # subtree boundary: hand back raw values (incl. sparse
                # IndexedSlices) exactly like the dynamic finish_async
                results.append([values[nid][i]
                                for nid, i in run.fetch_locs])
        run.node_values = None
        run.ctxs = None
    return results
