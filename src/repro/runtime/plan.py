"""Frame-plan compilation: the per-body scheduling plan both engines share.

The recursive execution model spawns one :class:`~repro.runtime.engine
.Frame` per SubGraph invocation — potentially millions per run — yet
everything the scheduler needs to know about a body graph is *static*:
its dependency counts, its consumer lists, which registry ``OpDef`` (and
kernel, and batched kernel) each op resolves to, the static prefix of
each op's batch signature, which outputs the backward pass will look up
(the selective-caching record set), and each op's cost-model entry.  The
seed engines re-derived all of that on **every** frame spawn and every
ready instance; at scale that interpreter overhead — not kernel time —
dominated the master's scheduling cost.

A :class:`FramePlan` is the one-time compilation of that static
information for a ``(graph, op-id set)`` pair, following the
compile-once / instantiate-many design of Cortex and the static-dataflow
recursion work (see PAPERS.md):

* ops are renumbered into **dense plan slots** (``index_of`` maps graph
  op id -> slot), so per-frame state (values, pending counters) becomes
  flat lists indexed by slot instead of per-spawn dicts keyed by op id;
* ``dep_counts`` / ``consumer_slots`` / ``zero_dep_slots`` precompute
  the dependency wiring a spawn previously re-walked the graph for;
* ``input_locs`` maps each op's input tensors to ``(producer slot, output
  index)`` pairs, making the dispatch-time input gather two list
  indexings per input;
* ``defs`` / ``starters`` / ``cost_kinds`` resolve each op's registry
  entry, async starter and cost-model entry once, eliminating
  ``op_def()`` lookups from the hot path;
* ``sig_prefixes`` interns the static ``(op_type, attrs)`` prefix of the
  batch signature to a small integer (see
  :func:`repro.runtime.batching.signature_prefix`), so signature
  computation at dispatch time is prefix + runtime value shapes — zero
  attr ``repr()``;
* ``store_masks`` bakes the graph's selective-caching ``cache_filter``
  into a per-slot, per-output boolean mask.

Plans are cached on the owning :class:`~repro.graph.graph.Graph`
(``plan_for``) and — for root frames executing a pruned fetch set — per
fetch-op set (``plan_for_fetches``, which also memoizes the
``reachable_from`` walk that serving previously repeated per request).
Graph mutation (``add_op``, control edges, ``set_cache_filter``)
invalidates the caches; finalized SubGraph bodies compile exactly once
per process.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.graph.registry import _REGISTRY_VERSION, op_def, registry_version

from .batching import signature_prefix

__all__ = ["FramePlan", "plan_for", "plan_for_fetches",
           "rec_invoke_sites"]

#: cache key for the whole-graph plan (every op, the SubGraph-body case)
_ALL_OPS = "__all_ops__"


#: Ops whose output arrays alias persistent runtime state (the variable
#: store, the gradient accumulators, graph-owned constants) rather than
#: fresh frame-owned scratch; excluded from live-bytes accounting.
_PERSISTENT_ALIAS_OPS = frozenset({"ReadVariable", "ReadAccum", "Const"})


class FramePlan:
    """Compiled scheduling metadata for one ``(graph, op-id set)`` body."""

    __slots__ = ("graph", "graph_id", "op_ids", "num_slots", "index_of",
                 "ops", "defs", "starters", "dep_counts", "consumer_slots",
                 "zero_dep_slots", "input_locs", "sig_prefixes",
                 "store_masks", "cost_kinds", "n_outputs", "edge_counts",
                 "scratch_slots", "_release_memo", "_rec_sites_memo")

    def __init__(self, graph, op_ids: Optional[Sequence[int]] = None):
        if op_ids is None:
            op_ids = range(graph.num_operations)
        self.graph = graph
        self.graph_id = graph.graph_id
        self.op_ids = tuple(op_ids)
        self.num_slots = len(self.op_ids)
        index_of = {op_id: slot for slot, op_id in enumerate(self.op_ids)}
        self.index_of = index_of
        ops = [graph.op_by_id(op_id) for op_id in self.op_ids]
        self.ops = ops
        defs = [op_def(op.op_type) for op in ops]
        self.defs = defs
        self.starters = [d.meta.get("starter") for d in defs]
        self.dep_counts = [graph.dependency_count(op) for op in ops]
        consumers = graph.consumers()
        self.consumer_slots = [
            tuple(index_of[c.id] for c in consumers.get(op.id, ())
                  if c.id in index_of)
            for op in ops]
        self.zero_dep_slots = tuple(
            slot for slot, count in enumerate(self.dep_counts) if count == 0)
        self.input_locs = [
            tuple((index_of[t.op.id], t.index) for t in op.inputs)
            for op in ops]
        self.sig_prefixes = [signature_prefix(op, d)
                             for op, d in zip(ops, defs)]
        cache_filter = getattr(graph, "cache_filter", None)
        if cache_filter is None:
            self.store_masks = [(True,) * op.num_outputs for op in ops]
        else:
            self.store_masks = [
                tuple((op.id, i) in cache_filter
                      for i in range(op.num_outputs))
                for op in ops]
        self.cost_kinds = [d.meta.get("cost", "elementwise") for d in defs]
        self.n_outputs = [op.num_outputs for op in ops]
        #: per-slot consumer-edge count: how many input edges (across all
        #: consumer slots in this plan) read the slot's outputs.  The
        #: basis of eager value release — a slot whose count reaches zero
        #: has been read by its last consumer.
        edge_counts = [0] * self.num_slots
        for locs in self.input_locs:
            for src, _ in locs:
                edge_counts[src] += 1
        self.edge_counts = edge_counts
        #: per-slot "outputs are frame-owned scratch" mask.  Variable,
        #: accumulator and constant reads return aliases of *persistent*
        #: storage — a [vocab, embed] embedding table read by hundreds of
        #: concurrent leaf frames is one array, not hundreds — so the
        #: live-bytes estimate must not charge those slots to the frame.
        self.scratch_slots = [op.op_type not in _PERSISTENT_ALIAS_OPS
                              for op in ops]
        self._release_memo: dict = {}
        self._rec_sites_memo: dict = {}

    def release_counts(self, pin_locs: tuple) -> tuple:
        """Per-slot release counters with pinned locations exempted.

        ``pin_locs`` is a hashable tuple of ``(op_id, output_index)``
        pairs whose values must outlive the frame's last consumer — the
        fetch tensors of a root frame, or a SubGraph body's
        ``output_locs`` (read by the parent's completion callback).
        Pinned slots are marked ``-1`` so their counters never reach
        zero.  Memoized per pin set: frames copy the tuple into their
        live ``release_counts`` list at spawn.
        """
        cached = self._release_memo.get(pin_locs)
        if cached is None:
            counts = list(self.edge_counts)
            index_of = self.index_of
            for op_id, _ in pin_locs:
                slot = index_of.get(op_id)
                if slot is not None:
                    counts[slot] = -1
            cached = self._release_memo[pin_locs] = tuple(counts)
        return cached

    def __repr__(self) -> str:
        return (f"<FramePlan graph={self.graph.name!r} "
                f"slots={self.num_slots}>")


def rec_invoke_sites(plan: FramePlan, s_rec) -> tuple:
    """Recursive call-site layout of a body plan, for profile threading.

    Returns ``(invoke_op_ids, lone_cond_op_id)``: the op ids of direct
    ``Invoke`` sites targeting ``s_rec`` in plan slot order, and — only
    when there are no direct sites — the op id of the plan's single
    ``Cond`` (None if there are zero or several).  Memoized on the plan,
    keyed by the recursive SubGraph's identity.
    """
    memo = plan._rec_sites_memo
    key = id(s_rec)
    cached = memo.get(key)
    if cached is None:
        sites = []
        conds = []
        for op in plan.ops:
            if (op.op_type == "Invoke"
                    and op.attrs.get("subgraph") is s_rec):
                sites.append(op.id)
            elif op.op_type == "Cond":
                conds.append(op.id)
        lone_cond = conds[0] if not sites and len(conds) == 1 else None
        cached = memo[key] = (tuple(sites), lone_cond)
    return cached


def _refresh_registry_version(graph) -> None:
    """Drop the graph's plan caches: the op registry mutated since they
    were compiled.

    Plans bake registry state in: resolved ``OpDef``/kernel references
    and batch-signature prefixes (``None`` while an op type has no
    ``batched_kernel``).  Registering an op, a gradient, or a batched
    kernel/async *after* a plan compiled would otherwise leave stale
    plans serving forever — e.g. a ``register_batched_kernel`` call made
    after the first ``Session.run`` would never batch.  The registry
    bumps a monotonic version on every mutation; plan caches stamp the
    version they were compiled at, ``plan_for``/``plan_for_fetches``
    compare it inline (one int compare per call — spawn-path cheap), and
    this slow path re-routes a mismatch through the existing
    invalidation state under the graph lock.
    """
    version = registry_version()
    with graph._lock:
        if graph._plan_registry_version != version:
            graph._frame_plans.clear()
            graph._fetch_plans.clear()
            graph._level_plans.clear()
            graph._plan_registry_version = version


def plan_for(graph, op_ids: Optional[Iterable[int]] = None) -> FramePlan:
    """The (cached) plan for ``graph`` over ``op_ids`` (default: all ops).

    The first call per ``(graph, op-id set)`` compiles the plan; later
    calls return the cached object.  Safe under the graph lock from
    multiple engine threads; invalidated by graph mutation and by op
    registry mutation (see :func:`_refresh_registry_version`).
    """
    if graph._plan_registry_version != _REGISTRY_VERSION[0]:
        _refresh_registry_version(graph)
    key = _ALL_OPS if op_ids is None else tuple(op_ids)
    cache = graph._frame_plans
    plan = cache.get(key)
    if plan is None:
        with graph._lock:
            plan = cache.get(key)
            if plan is None:
                plan = FramePlan(graph, None if key is _ALL_OPS else key)
                cache[key] = plan
    return plan


def plan_for_fetches(graph, fetch_ops) -> FramePlan:
    """The (cached) pruned root-frame plan for one fetch-op set.

    Memoizes the ``reachable_from`` reverse walk per distinct fetch set,
    so a serving session admitting the same fetches per request performs
    the graph pruning exactly once.
    """
    if graph._plan_registry_version != _REGISTRY_VERSION[0]:
        _refresh_registry_version(graph)
    key = tuple(sorted({op.id for op in fetch_ops}))
    cache = graph._fetch_plans
    plan = cache.get(key)
    if plan is None:
        with graph._lock:
            plan = cache.get(key)
            if plan is None:
                needed = sorted(graph.reachable_from(fetch_ops))
                plan = plan_for(graph, needed)
                cache[key] = plan
    return plan
