"""Multi-process executor backend (``engine="procpool"``).

Every other backend shares one Python process, so fused kernel buckets
serialize on the GIL wherever numpy holds it.  This backend escapes it:
the scheduling master (the exact :class:`~repro.runtime.workerpool
.WorkerPoolEngine` master — same spawn/complete/coalesce semantics,
same sticky-error contract) stays in the parent process, while kernel
execution moves to ``num_workers`` forked worker *processes*.  Results
are bit-identical to the in-process backends: values cross the process
boundary as exact byte copies, and all scheduling/accumulation order is
decided by the one master.

Transport design (what goes over the wire, and what never does):

* **Arrays travel through shared memory, never through pickle.**  The
  master packs each task's tensor inputs into a pooled mmap segment
  under ``/dev/shm`` and sends only *descriptors* — ``(segment name,
  offset, dtype, shape)`` triples plus plan slot indices — over the
  task queue.  Workers map the segment and rebuild zero-copy views;
  outputs come back the same way through per-worker result segments
  (the "result ring"), with a feed message on the results queue.  Both
  pools recycle segments: the master returns a task segment to its
  arena when the completion arrives, and hands a result segment back to
  its worker through that worker's recycle queue once the outputs are
  copied out.
* **Graphs and plans never travel at all.**  Workers are *forked* after
  the session's graphs (and their gradient bodies) exist, so they
  inherit every graph; a work descriptor names its
  :class:`~repro.runtime.plan.FramePlan` as ``(graph_id, op_ids)`` and
  the worker hydrates the plan locally (``plan_for``) exactly once per
  (graph, op-set), resolving kernels through its own registry.  A graph
  the worker cannot resolve (created after the fork) bounces back as
  ``noplan`` and the master permanently executes that graph inline.
* **Registry-version stamps close the stale-plan hole.**  Plans bake in
  resolved kernels, so registry mutation *after* the pool started would
  leave workers executing stale plans.  The master stamps the registry
  version at pool start, re-checks it on every ship decision (mutation
  flips the session to inline execution — correct, just not parallel),
  and every task carries the stamp so the worker can verify its own
  registry still matches; the worker bootstrap asserts the invariant.

Placement policy: only *pure* kernels ship.  Stateful ops (variables,
accumulators, cache lookups), async starters (frame spawns), opaque
``variant`` values (tensor arrays) and ops whose attrs hold live Python
objects (locks, events, subgraph refs) execute inline on the master —
they need master state or cannot survive a process boundary.  Tiny
payloads (< :data:`ProcPoolEngine.SHIP_MIN_BYTES` input bytes) also
stay inline: IPC latency dominates sub-microsecond kernels.

Worker death never hangs the session: the master's idle loop polls
worker liveness and converts a dead process into the same sticky
``EngineError`` path a failed kernel takes — pending requests fail,
``drain()`` raises, repeat drains keep raising.

Requires the ``fork`` start method (the whole design leans on workers
inheriting graphs); the backend does not register on platforms without
it.  See ARCHITECTURE.md ("process-based executors") for the recipe,
buffer lifecycle and lock-ordering rules.
"""

from __future__ import annotations

import itertools
import mmap
import multiprocessing as mp
import os
import pickle
import queue
import tempfile
import time
from typing import Optional

import numpy as np

from repro.graph import dtypes as _dtypes
from repro.graph.graph import graph_by_id
from repro.graph.registry import ExecContext, registry_version
from repro.graph.sparse import IndexedSlices

from .plan import plan_for
from .scheduler import EngineError, Instance, register_executor
from .workerpool import WorkerPoolEngine

__all__ = ["ProcPoolEngine"]

_WAKE_TOKEN = "__procpool_wake__"
_STOP_TOKEN = "__procpool_stop__"

#: minimum segment size (bytes); segments grow in powers of two
_MIN_SEG = 1 << 14

_SEG_IDS = itertools.count()


def _shm_dir() -> str:
    return "/dev/shm" if os.path.isdir("/dev/shm") else tempfile.gettempdir()


class _Segment:
    """One mmap-backed shared byte range (a file under ``/dev/shm``).

    Raw mmap files instead of :mod:`multiprocessing.shared_memory` so
    segment lifetime is owned explicitly by this module: the creating
    process unlinks at pool stop, attachers just map — no
    resource-tracker registration, no cross-process unlink warnings.
    """

    __slots__ = ("name", "size", "buf")

    def __init__(self, name: Optional[str] = None, size: int = 0,
                 create: bool = False):
        if create:
            self.name = name or f"repro-pp-{os.getpid()}-{next(_SEG_IDS)}"
            path = os.path.join(_shm_dir(), self.name)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
            try:
                os.ftruncate(fd, size)
                self.buf = mmap.mmap(fd, size)
            finally:
                os.close(fd)
            self.size = size
        else:
            self.name = name
            fd = os.open(os.path.join(_shm_dir(), name), os.O_RDWR)
            try:
                size = os.fstat(fd).st_size
                self.buf = mmap.mmap(fd, size)
            finally:
                os.close(fd)
            self.size = size

    def close(self) -> None:
        try:
            self.buf.close()
        except BufferError:  # a live numpy view pins the map; leak it
            pass

    def unlink(self) -> None:
        try:
            os.unlink(os.path.join(_shm_dir(), self.name))
        except OSError:
            pass


class _Arena:
    """Power-of-two pooled segments owned by one process.

    ``acquire`` hands out a segment of capacity >= ``nbytes`` (reusing a
    freed one when available); ``release``/``release_name`` return it.
    Segments are fixed-size once created, so a peer that mapped one by
    name can keep the mapping across recycles.
    """

    __slots__ = ("_free", "_by_name")

    def __init__(self):
        self._free: dict[int, list] = {}
        self._by_name: dict[str, _Segment] = {}

    def acquire(self, nbytes: int) -> _Segment:
        size = _MIN_SEG
        while size < nbytes:
            size <<= 1
        bucket = self._free.get(size)
        if bucket:
            return bucket.pop()
        seg = _Segment(size=size, create=True)
        self._by_name[seg.name] = seg
        return seg

    def release(self, seg: _Segment) -> None:
        self._free.setdefault(seg.size, []).append(seg)

    def release_name(self, name: str) -> None:
        seg = self._by_name.get(name)
        if seg is not None:
            self.release(seg)

    def destroy(self) -> None:
        for seg in self._by_name.values():
            seg.close()
            seg.unlink()
        self._by_name.clear()
        self._free.clear()


def _align(n: int) -> int:
    return (n + 63) & ~63


def _encode_lists(value_lists, acquire, pinned_desc=None):
    """Pack nested value lists into one shared segment.

    Returns ``(segment_or_None, descriptor_lists)``.  Arrays and numpy
    scalars are written into a segment from ``acquire(total_bytes)`` and
    described as ``("nd", seg_name, offset, dtype, shape, order)`` /
    ``("np", seg_name, offset, dtype)``; everything else is carried
    inline as ``("py", value)`` (plain scalars — cheaper than a segment
    round-trip).  ``pinned_desc`` (master side) may supply a ready
    descriptor for an array already resident in a pinned segment.

    Memory *order* is part of the contract, not an optimization: BLAS
    kernels pick different reduction orders for C- vs F-ordered
    operands, so flattening a transposed view into a C-contiguous copy
    would change MatMul results in the last bits and break the
    bit-identity bar.  C- and F-contiguous arrays therefore ship with
    their native byte order and are rebuilt with the same flags; the
    ship gate refuses anything discontiguous (see ``_shippable``).
    """
    descs = []
    pending = []  # (row, index, array-in-memory-order, shape, order, scalar)
    sparse = []   # (row, index, indices, values, dense_shape)
    total = 0
    for values in value_lists:
        row = []
        for v in values:
            if isinstance(v, np.generic):
                arr = np.asarray(v)
                if arr.dtype.hasobject:
                    row.append(("py", v))
                    continue
                pending.append((row, len(row), arr, (), "C", True))
                row.append(None)
                total += _align(arr.nbytes)
            elif isinstance(v, IndexedSlices):
                # sparse gradients ship as their two component arrays
                # plus the dense shape; kernels emit them contiguous
                idx = np.ascontiguousarray(v.indices)
                vals = np.ascontiguousarray(v.values)
                sparse.append((row, len(row), idx, vals, v.dense_shape))
                row.append(None)
                total += _align(idx.nbytes) + _align(vals.nbytes)
            elif isinstance(v, np.ndarray):
                if v.dtype.hasobject:
                    row.append(("py", v))
                    continue
                if pinned_desc is not None:
                    d = pinned_desc(v)
                    if d is not None:
                        row.append(d)
                        continue
                if v.flags.c_contiguous:
                    arr, order = v, "C"
                elif v.flags.f_contiguous:
                    arr, order = v.T, "F"  # .T of F-contig is C-contig
                else:
                    arr, order = np.ascontiguousarray(v), "C"
                pending.append((row, len(row), arr, v.shape, order, False))
                row.append(None)
                total += _align(arr.nbytes)
            else:
                row.append(("py", v))
        descs.append(row)
    seg = None
    if pending or sparse:
        seg = acquire(total)
        name = seg.name
        off = 0

        def put(arr):
            nonlocal off
            n = arr.nbytes
            if n:
                dst = np.frombuffer(seg.buf, dtype=arr.dtype, count=arr.size,
                                    offset=off)
                np.copyto(dst, arr.reshape(-1))
            at = off
            off += _align(n)
            return at

        for row, idx, arr, shape, order, scalar in pending:
            at = put(arr)
            row[idx] = (("np", name, at, arr.dtype.str) if scalar
                        else ("nd", name, at, arr.dtype.str, shape, order))
        for row, idx, iarr, varr, dense_shape in sparse:
            iat = put(iarr)
            vat = put(varr)
            row[idx] = ("sl", name,
                        (iat, iarr.dtype.str, iarr.shape),
                        (vat, varr.dtype.str, varr.shape), dense_shape)
    return seg, descs


def _decode_lists(desc_lists, resolve, copy: bool):
    """Rebuild value lists from descriptors (inverse of _encode_lists).

    ``resolve(name)`` maps a segment name to a mapped :class:`_Segment`.
    ``copy=False`` returns zero-copy views into the segment (worker
    input path — the master keeps the segment until the completion
    returns); ``copy=True`` materializes private arrays (master output
    path — the segment recycles immediately after).
    """
    out = []
    for row in desc_lists:
        values = []
        for d in row:
            tag = d[0]
            if tag == "py":
                values.append(d[1])
                continue
            if tag == "sl":
                _, name, (iat, idt, ishape), (vat, vdt, vshape), dshape = d
                buf = resolve(name).buf
                icount = 1
                for s in ishape:
                    icount *= s
                vcount = 1
                for s in vshape:
                    vcount *= s
                idx = np.frombuffer(buf, dtype=np.dtype(idt), count=icount,
                                    offset=iat).reshape(ishape)
                vals = np.frombuffer(buf, dtype=np.dtype(vdt), count=vcount,
                                     offset=vat).reshape(vshape)
                if copy:
                    idx, vals = idx.copy(), vals.copy()
                values.append(IndexedSlices(idx, vals, dshape))
                continue
            if tag == "nd":
                _, name, off, dt, shape, order = d
            else:
                _, name, off, dt = d
                shape, order = (), "C"
            count = 1
            for s in shape:
                count *= s
            flat = np.frombuffer(resolve(name).buf, dtype=np.dtype(dt),
                                 count=count, offset=off)
            # rebuild with the sender's memory order (see _encode_lists)
            if order == "F":
                arr = flat.reshape(shape[::-1]).T
                if copy:
                    arr = arr.copy(order="F")
            else:
                arr = flat.reshape(shape)
                if copy:
                    arr = arr.copy()
            values.append(arr if tag == "nd" else arr[()])
        out.append(values)
    return out


#: attr value types that are inert data: safe to leave behind in the
#: master and equally meaningful in a forked worker.  Anything else
#: (threading primitives, SubGraph references, file handles, callables)
#: marks the op master-only — its kernel may depend on cross-process
#: mutable state a fork snapshot cannot track.
_PLAIN_ATTRS = (str, bytes, bool, int, float, complex, type(None),
                np.ndarray, np.generic, np.dtype, _dtypes.DType)

_INLINE_VALUES = (bool, int, float, complex, str, bytes, type(None))


def _plain_data(v) -> bool:
    if isinstance(v, _PLAIN_ATTRS):
        return True
    if isinstance(v, (tuple, list, set, frozenset)):
        return all(_plain_data(x) for x in v)
    if isinstance(v, dict):
        return all(_plain_data(k) and _plain_data(x) for k, x in v.items())
    return False


def _picklable_exc(exc: Exception) -> Exception:
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return EngineError(f"{type(exc).__name__}: {exc}")


class ProcPoolEngine(WorkerPoolEngine):
    """Scheduling master + forked kernel worker processes.

    The master loops, dispatch, coalescing and error semantics are
    inherited unchanged from :class:`WorkerPoolEngine`; this class
    replaces only the pool-mechanics seams — process lifecycle,
    shared-memory task/result transport, liveness — and adds the
    ship-or-inline placement decision per ready instance/bucket.

    ``num_workers`` is the worker *process* count.  ``SHIP_MIN_BYTES``
    (class attribute; env override ``REPRO_PROCPOOL_SHIP_MIN``) is the
    minimum total input-array bytes for a task to be worth shipping.
    """

    #: ship a task only when its input arrays total at least this many
    #: bytes; smaller kernels run inline on the master (IPC dominates)
    SHIP_MIN_BYTES = 256
    #: pin-by-identity arrays at least this large (shipped weights)
    PIN_MIN_BYTES = 2048
    #: cap on pinned arrays per session (each pins its own segment)
    PIN_CAP = 512

    def __init__(self, runtime, num_workers: int = 4, cost_model=None,
                 record: bool = False, scheduler: str = "fifo",
                 max_depth: int = 5000, batching: bool = False,
                 batch_policy=None, memory_budget=None,
                 track_live_bytes: bool = False):
        super().__init__(runtime, num_workers=num_workers,
                         cost_model=cost_model, record=record,
                         scheduler=scheduler, max_depth=max_depth,
                         batching=batching, batch_policy=batch_policy,
                         memory_budget=memory_budget,
                         track_live_bytes=track_live_bytes)
        self._procs: list = []
        self._stopping = False
        self._stamp = None

    # -- pool lifecycle -------------------------------------------------------

    def _start_pool(self) -> None:
        ctx = mp.get_context("fork")
        self._ship_min = int(os.environ.get("REPRO_PROCPOOL_SHIP_MIN",
                                            self.SHIP_MIN_BYTES))
        self._registry_stale = False
        self._master_only_graphs: set = set()
        self._ship_masks: dict = {}
        self._plan_refs: dict = {}
        self._outstanding: dict = {}
        self._task_seq = itertools.count()
        self._shipped_tasks = 0
        self._inline_tasks = 0
        #: shipped compiled-sweep calls awaiting the barrier, keyed by
        #: task id: tid -> (call, task segment)
        self._level_outstanding: dict = {}
        #: wavefront feed coalescing (one queue put per worker per
        #: wavefront instead of one per task; see _send_task)
        self._coalesce_feed = os.environ.get(
            "REPRO_PROCPOOL_COALESCE", "1") != "0"
        self._feed_buffer = None
        self._feed_puts = 0
        self._feed_tasks = 0
        self._pinned: dict = {}
        self._pinned_segs: list = []
        self._result_segs: dict = {}
        self._arena = _Arena()
        self._stopping = False
        # the master loops read these queue attributes; replacing the
        # SimpleQueues from _begin_session here (before any worker or
        # master thread starts) keeps the base-class loops untouched
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._recycle_qs = [ctx.Queue() for _ in range(self.num_workers)]
        # stamp, then fork: workers inherit graphs, registry and plans
        # as of this instant, and every task carries the stamp
        self._stamp = registry_version()
        self._procs = []
        for wid in range(self.num_workers):
            proc = ctx.Process(target=self._worker_main,
                               args=(wid, self._tasks, self._results,
                                     self._recycle_qs[wid]),
                               daemon=True)
            proc.start()
            self._procs.append(proc)

    def _stop_pool(self) -> None:
        self._stopping = True
        for _ in self._procs:
            try:
                self._tasks.put(_STOP_TOKEN)
            except Exception:
                pass
        deadline = time.perf_counter() + 5.0
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.perf_counter()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs = []
        for q in (self._tasks, self._results, *self._recycle_qs):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:
                pass
        # master-owned segments: close + unlink; worker result segments:
        # the worker unlinks its own on clean exit, but unlink here too
        # so a terminated worker cannot leak /dev/shm space
        for seg in self._result_segs.values():
            seg.close()
            seg.unlink()
        self._result_segs.clear()
        for seg in self._pinned_segs:
            seg.close()
            seg.unlink()
        self._pinned_segs.clear()
        self._pinned.clear()
        self._arena.destroy()
        self._outstanding.clear()
        self._level_outstanding.clear()

    # -- pool mechanics hooks (see WorkerPoolEngine) --------------------------

    def _is_wake(self, item) -> bool:
        return item == _WAKE_TOKEN

    def _post_wake(self) -> None:
        self._results.put(_WAKE_TOKEN)

    def _check_health(self) -> None:
        """Turn a dead worker process into a sticky session error.

        Runs on the master whenever its result wait times out, so a
        crash surfaces within one poll interval: in-flight requests
        fail through the error listener, ``drain()`` raises, and the
        error stays sticky exactly like a failed kernel — never a hang.
        """
        if self._stopping or self._error is not None:
            return
        for wid, proc in enumerate(self._procs):
            if not proc.is_alive():
                self._set_error(EngineError(
                    f"procpool worker {wid} (pid {proc.pid}) died "
                    f"unexpectedly (exitcode {proc.exitcode}); "
                    "the session is failed"), None)
                return

    # -- placement: ship to a worker, or run inline on the master -------------

    def _submit_single(self, inst: Instance, inputs: list) -> None:
        if not self._try_ship_single(inst, inputs):
            self._run_inline(inst, inputs)

    def _submit_bucket_task(self, bucket, fused: bool) -> None:
        if not self._try_ship_bucket(bucket, fused):
            self._run_inline(bucket, fused)

    def _run_inline(self, payload, extra) -> None:
        # same completion route as a worker result: _execute_task
        # produces the canonical item, _apply consumes it
        self._inflight += 1
        self._inline_tasks += 1
        self._apply(self._execute_task(payload, extra))

    def _ship_mask(self, plan) -> list:
        mask = self._ship_masks.get(plan)
        if mask is None:
            mask = []
            for slot in range(plan.num_slots):
                d = plan.defs[slot]
                op = plan.ops[slot]
                mask.append(
                    not d.is_async and not d.stateful
                    and d.kernel is not None
                    and not any(getattr(t.dtype, "opaque", False)
                                for t in op.outputs)
                    and not any(getattr(t.dtype, "opaque", False)
                                for t in op.inputs)
                    and _plain_data(op.attrs))
            self._ship_masks[plan] = mask
        return mask

    @staticmethod
    def _values_ship_bytes(inputs: list) -> int:
        """Byte total of a value list when transportable, -1 otherwise."""
        total = 0
        for v in inputs:
            if isinstance(v, np.ndarray):
                # discontiguous views stay inline: their exact strides
                # cannot cross the wire, and relayouting them would
                # change BLAS reduction order (bit-identity bar)
                if (v.dtype.hasobject
                        or not (v.flags.c_contiguous
                                or v.flags.f_contiguous)):
                    return -1
                total += v.nbytes
            elif isinstance(v, np.generic):
                if v.dtype.hasobject:
                    return -1
                total += v.nbytes
            elif not isinstance(v, _INLINE_VALUES):
                return -1
        return total

    def _shippable(self, inst: Instance, inputs: list) -> int:
        """Input-array byte total when shippable, -1 when master-only."""
        plan = inst.frame.plan
        if plan.graph_id in self._master_only_graphs:
            return -1
        if not self._ship_mask(plan)[inst.slot]:
            return -1
        return self._values_ship_bytes(inputs)

    def _ship_open(self) -> bool:
        if not self._procs or self._stopping or self._error is not None:
            return False
        if registry_version() != self._stamp:
            # registry mutated after the pool forked: worker-side plans
            # are stale.  Flip to inline execution for the rest of the
            # session — the master's own plan caches revalidate, so
            # results stay correct; only the parallelism is lost.
            self._registry_stale = True
        return not self._registry_stale

    def _plan_ref(self, plan) -> tuple:
        ref = self._plan_refs.get(plan)
        if ref is None:
            # strong plan ref doubles as a keep-alive for the cache key
            ref = self._plan_refs[plan] = (plan.graph_id, plan.op_ids)
        return ref

    # -- feed-queue coalescing ------------------------------------------------

    def _dispatch(self) -> bool:
        # Buffer this wavefront's shipped tasks and flush them as one
        # multi-task message per worker: each feed-queue put pays a
        # pickle + queue-lock round trip that sub-millisecond kernels
        # amortize badly.  Barrier sends (compiled sweeps) bypass the
        # buffer — their completions are awaited before _dispatch ends.
        if not self._coalesce_feed or self._feed_buffer is not None:
            return super()._dispatch()
        self._feed_buffer = buf = []
        try:
            return super()._dispatch()
        finally:
            self._feed_buffer = None
            if buf:
                self._flush_feed_buffer(buf)

    def _send_task(self, msg, barrier: bool = False) -> None:
        """Queue one task message, or file it with the wavefront buffer."""
        buf = self._feed_buffer
        if barrier or buf is None:
            self._feed_puts += 1
            self._feed_tasks += 1
            self._tasks.put(msg)
        else:
            buf.append(msg)

    def _flush_feed_buffer(self, buf) -> None:
        """Send buffered tasks, round-robin chunked across the workers."""
        self._feed_tasks += len(buf)
        if len(buf) == 1:
            self._feed_puts += 1
            self._tasks.put(buf[0])
            return
        n = min(len(self._procs) or 1, len(buf))
        for i in range(n):
            self._feed_puts += 1
            self._tasks.put(("tm", buf[i::n]))

    def _try_ship_single(self, inst: Instance, inputs: list) -> bool:
        if not self._ship_open():
            return False
        total = self._shippable(inst, inputs)
        if total < self._ship_min:
            return False
        seg, descs = _encode_lists([inputs], self._arena.acquire,
                                   self._pinned_desc)
        tid = next(self._task_seq)
        self._outstanding[tid] = (inst, inputs, seg)
        self._inflight += 1
        self._shipped_tasks += 1
        self._send_task(("t", tid, self._stamp, (self._plan_ref(
            inst.frame.plan),), ((0, inst.slot, descs[0]),), "s", False))
        return True

    def _try_ship_bucket(self, bucket, fused: bool) -> bool:
        if not self._ship_open():
            return False
        total = 0
        for inst, inputs in zip(bucket.instances, bucket.inputs):
            t = self._shippable(inst, inputs)
            if t < 0:
                return False
            total += t
        if total < self._ship_min:
            return False
        plan_table: list = []
        plan_index: dict = {}
        members = []
        seg, descs = _encode_lists(bucket.inputs, self._arena.acquire,
                                   self._pinned_desc)
        for inst, row in zip(bucket.instances, descs):
            plan = inst.frame.plan
            idx = plan_index.get(plan)
            if idx is None:
                idx = plan_index[plan] = len(plan_table)
                plan_table.append(self._plan_ref(plan))
            members.append((idx, inst.slot, row))
        tid = next(self._task_seq)
        self._outstanding[tid] = (bucket, fused, seg)
        self._inflight += 1
        self._shipped_tasks += 1
        self._send_task(("t", tid, self._stamp, tuple(plan_table),
                         tuple(members), "b", fused))
        return True

    # -- parallel compiled sweeps (see WorkerPoolEngine) ----------------------

    def _level_pool_open(self) -> bool:
        return (self._level_parallel and bool(self._procs)
                and self._ship_open())

    def _ship_level_call(self, call) -> bool:
        """Ship one compiled-sweep call through the shm transport.

        Per-member gate: every member's source (plan, slot) must pass
        the pure-kernel ship mask and its gathered inputs must be
        transportable; tiny calls stay inline like tiny dynamic tasks.
        Level tasks live in ``_level_outstanding`` (never ``_inflight``
        / ``_outstanding``): the sweep barrier owns their completion.
        """
        total = 0
        for node, _nid, _run, inputs in call.members:
            plan = node.src_plan
            if plan is None or plan.graph_id in self._master_only_graphs:
                return False
            if not self._ship_mask(plan)[node.src_slot]:
                return False
            t = self._values_ship_bytes(inputs)
            if t < 0:
                return False
            total += t
        if total < self._ship_min:
            return False
        seg, descs = _encode_lists([m[3] for m in call.members],
                                   self._arena.acquire, self._pinned_desc)
        plan_table: list = []
        plan_index: dict = {}
        rows = []
        for (node, _nid, _run, _inputs), row in zip(call.members, descs):
            plan = node.src_plan
            idx = plan_index.get(plan)
            if idx is None:
                idx = plan_index[plan] = len(plan_table)
                plan_table.append(self._plan_ref(plan))
            rows.append((idx, node.src_slot, row))
        fused = call.sig is not None
        tid = next(self._task_seq)
        self._level_outstanding[tid] = (call, seg)
        self._shipped_tasks += 1
        self._send_task(("t", tid, self._stamp, tuple(plan_table),
                         tuple(rows), "b" if fused else "s", fused),
                        barrier=True)
        return True

    def _match_level_item(self, item):
        if type(item) is not tuple or not item:
            return None
        kind = item[0]
        if kind == "t-done":
            entry = self._level_outstanding.pop(item[1], None)
            if entry is None:
                return None
            call, seg = entry
            if seg is not None:
                self._arena.release(seg)
            _, _, wid, seg_name, out_descs = item
            try:
                outputs_list = _decode_lists(
                    out_descs, self._resolve_result_seg, copy=True)
            except Exception as exc:  # noqa: BLE001
                return call, None, exc
            finally:
                if seg_name is not None:
                    self._recycle_qs[wid].put(seg_name)
            return call, outputs_list, None
        if kind == "t-err":
            entry = self._level_outstanding.pop(item[1], None)
            if entry is None:
                return None
            call, seg = entry
            if seg is not None:
                self._arena.release(seg)
            exc = item[2]
            if not isinstance(exc, EngineError):
                # match the serial sweep's wrapping of kernel errors
                exc = self._wrap_error(exc, call.members[0][0].op)
            return call, None, exc
        if kind == "t-noplan":
            entry = self._level_outstanding.pop(item[1], None)
            if entry is None:
                return None
            call, seg = entry
            if seg is not None:
                self._arena.release(seg)
            # worker lacks the graph (created after the fork): run the
            # call inline and stop shipping that graph
            self._master_only_graphs.add(item[2])
            self._inline_tasks += 1
            from .level_plan import execute_level_call
            try:
                return call, execute_level_call(call), None
            except Exception as exc:  # noqa: BLE001
                return call, None, exc
        return None

    def _pinned_desc(self, arr: np.ndarray):
        """Descriptor for a pinned (persistently resident) array.

        Large arrays shipped repeatedly — weights read once per frame —
        are written to a dedicated segment once and referenced by
        descriptor afterwards.  Keyed by object identity with a strong
        reference (the id stays valid, and the runtime's variable store
        replaces arrays instead of mutating them, so the pinned bytes
        cannot go stale — kernels must not mutate their inputs, which
        in-process engines already rely on).
        """
        if arr.nbytes < self.PIN_MIN_BYTES:
            return None
        key = id(arr)
        hit = self._pinned.get(key)
        if hit is not None:
            return hit[1]
        if len(self._pinned) >= self.PIN_CAP:
            return None
        if arr.flags.c_contiguous:
            src, order = arr, "C"
        elif arr.flags.f_contiguous:
            src, order = arr.T, "F"
        else:
            return None
        seg = _Segment(size=max(src.nbytes, 1), create=True)
        if src.nbytes:
            dst = np.frombuffer(seg.buf, dtype=src.dtype, count=src.size)
            np.copyto(dst, src.reshape(-1))
        desc = ("nd", seg.name, 0, arr.dtype.str, arr.shape, order)
        self._pinned[key] = (arr, desc)
        self._pinned_segs.append(seg)
        return desc

    # -- completions ----------------------------------------------------------

    def _resolve_result_seg(self, name: str) -> _Segment:
        seg = self._result_segs.get(name)
        if seg is None:
            seg = self._result_segs[name] = _Segment(name=name)
        return seg

    def _apply(self, item) -> None:
        kind = item[0]
        if (kind in ("t-done", "t-err", "t-noplan")
                and item[1] in self._level_outstanding):
            # straggler from a sweep barrier the session error aborted:
            # recover the transport segments and drop the result
            call, seg = self._level_outstanding.pop(item[1])
            if seg is not None:
                self._arena.release(seg)
            if kind == "t-done" and item[3] is not None:
                self._recycle_qs[item[2]].put(item[3])
            return
        if kind == "t-done":
            self._apply_done(item)
        elif kind == "t-err":
            self._apply_worker_error(item)
        elif kind == "t-noplan":
            self._apply_noplan(item)
        else:
            super()._apply(item)

    def _pop_task(self, tid: int):
        payload, extra, seg = self._outstanding.pop(tid)
        if seg is not None:
            self._arena.release(seg)
        return payload, extra

    def _apply_done(self, item) -> None:
        _, tid, wid, seg_name, out_descs = item
        payload, extra = self._pop_task(tid)
        try:
            outputs_list = _decode_lists(out_descs, self._resolve_result_seg,
                                         copy=True)
        except Exception as exc:
            op = (payload.op if isinstance(payload, Instance)
                  else payload.instances[0].op)
            super()._apply(("error", op, exc))
            return
        finally:
            if seg_name is not None:
                # outputs copied out (or abandoned): let the worker
                # reuse its result segment
                self._recycle_qs[wid].put(seg_name)
        if isinstance(payload, Instance):
            super()._apply(("single", payload, outputs_list[0]))
        else:
            super()._apply(("bucket", payload, outputs_list, extra))

    def _apply_worker_error(self, item) -> None:
        _, tid, exc = item
        entry = self._outstanding.pop(tid, None)
        if entry is None:
            # bootstrap failure: no task attached, fail the session
            err = (exc if isinstance(exc, EngineError)
                   else EngineError(str(exc)))
            self._set_error(err, None)
            return
        payload, extra, seg = entry
        if seg is not None:
            self._arena.release(seg)
        op = (payload.op if isinstance(payload, Instance)
              else payload.instances[0].op)
        super()._apply(("error", op, exc))

    def _apply_noplan(self, item) -> None:
        # the worker has no graph for this task (created after the
        # fork): run it inline and stop shipping that graph
        _, tid, gid = item
        payload, extra = self._pop_task(tid)
        self._master_only_graphs.add(gid)
        self._inline_tasks += 1
        super()._apply(self._execute_task(payload, extra))

    # -- worker process -------------------------------------------------------

    def _worker_main(self, wid: int, tasks, results, recycle) -> None:
        """Forked worker: decode descriptors, run kernels, encode back.

        Never touches master state: the engine object it sees is a fork
        snapshot used only for the runtime reference in pure kernels'
        ``ctx`` (which they ignore by contract) and the config.
        """
        if registry_version() != self._stamp:
            # bootstrap invariant: the fork happened on the stamping
            # thread immediately after the stamp, so any mismatch means
            # worker-side plan caches would be stale from birth
            results.put(("t-err", -1, EngineError(
                "procpool worker bootstrapped with a stale op registry "
                f"(worker at version {registry_version()}, master "
                f"stamped {self._stamp})")))
            return
        arena = _Arena()
        attached: dict[str, _Segment] = {}

        def resolve(name: str) -> _Segment:
            seg = attached.get(name)
            if seg is None:
                seg = attached[name] = _Segment(name=name)
            return seg

        ctx = ExecContext(self.runtime, None, False)
        plans: dict = {}
        try:
            while True:
                msg = tasks.get()
                if msg == _STOP_TOKEN:
                    return
                while True:  # recycle feed: reclaim returned segments
                    try:
                        arena.release_name(recycle.get_nowait())
                    except queue.Empty:
                        break
                if msg[0] == "tm":  # coalesced wavefront chunk
                    for m in msg[1]:
                        self._worker_task(m, wid, results, arena, resolve,
                                          ctx, plans)
                else:
                    self._worker_task(msg, wid, results, arena, resolve,
                                      ctx, plans)
        finally:
            for seg in attached.values():
                seg.close()
            arena.destroy()

    def _worker_task(self, msg, wid, results, arena, resolve, ctx,
                     plans) -> None:
        _, tid, stamp, plan_table, members, kind, fused = msg
        seg = None
        try:
            if stamp != registry_version():
                raise EngineError(
                    "op registry mutated after procpool start: worker "
                    "plans are stale (restart the session to pick up "
                    "new registrations)")
            resolved = []
            for gid, op_ids in plan_table:
                plan = plans.get((gid, op_ids))
                if plan is None:
                    graph = graph_by_id(gid)
                    if graph is None or graph.num_operations <= op_ids[-1]:
                        results.put(("t-noplan", tid, gid))
                        return
                    plan = plan_for(graph, op_ids)
                    plans[(gid, op_ids)] = plan
                resolved.append(plan)
            inputs_list = _decode_lists([m[2] for m in members], resolve,
                                        copy=False)
            if kind == "s":
                pidx, slot, _ = members[0]
                plan = resolved[pidx]
                outputs_list = [plan.defs[slot].kernel(
                    plan.ops[slot], inputs_list[0], ctx)]
            else:
                ops, defs = [], []
                for pidx, slot, _ in members:
                    plan = resolved[pidx]
                    ops.append(plan.ops[slot])
                    defs.append(plan.defs[slot])
                if fused:
                    outputs_list = defs[0].batched_kernel(
                        ops, inputs_list, [ctx] * len(ops))
                    if len(outputs_list) != len(ops):
                        raise EngineError(
                            f"batched kernel of {ops[0].op_type} returned "
                            f"{len(outputs_list)} results for "
                            f"{len(ops)} members")
                else:
                    outputs_list = [
                        d.kernel(op, inputs, ctx)
                        for d, op, inputs in zip(defs, ops, inputs_list)]
            seg, out_descs = _encode_lists(outputs_list, arena.acquire)
            reply = ("t-done", tid, wid,
                     seg.name if seg is not None else None, out_descs)
            # a pickling failure inside the queue's feeder thread would
            # silently drop the message and hang the master; verify here
            pickle.dumps(reply)
            results.put(reply)
        except Exception as exc:  # noqa: BLE001 - shipped to the master
            if seg is not None:
                arena.release(seg)
            results.put(("t-err", tid, _picklable_exc(exc)))


if "fork" in mp.get_all_start_methods():
    register_executor("procpool", ProcPoolEngine)
