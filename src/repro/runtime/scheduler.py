"""The scheduler core: one frame-lifecycle engine, pluggable executors.

The paper's central capability — recursion-aware scheduling (frame
spawning over compiled :class:`~repro.runtime.plan.FramePlan` slot
arrays, cross-instance dynamic micro-batching, selective caching of
forward values) — is a *framework* property, independent of how kernels
are ultimately executed.  This module makes that layering explicit:

* :class:`SchedulerCore` owns everything the execution backends used to
  duplicate: frame spawn/seed/complete, the ready-queue and
  :class:`~repro.runtime.batching.Coalescer` integration points,
  selective-cache store decisions, serving admission
  (``begin_serving`` / ``submit_root`` / ``drain`` / ``end_serving``),
  error wrapping, and :class:`~repro.runtime.stats.RunStats`
  accounting.

* **Executor backends** subclass it and implement only the execution
  mechanics — a clock (``now``), deferred callbacks
  (``post_continuation``), async-return posting (``finish_async``),
  ``run``, and the dispatch loop that takes ready instances to kernels:

  - ``"event"`` — :class:`~repro.runtime.engine.EventEngine`, the
    deterministic virtual-time discrete-event simulator;
  - ``"threaded"`` — :class:`~repro.runtime.threaded.ThreadedEngine`,
    wall-clock thread-pool workers that both schedule and execute;
  - ``"workerpool"`` — :class:`~repro.runtime.workerpool
    .WorkerPoolEngine`, a wall-clock backend with one centralized
    scheduling master and a kernel pool that executes independent
    fused buckets concurrently.

The split follows Cortex (Fegade et al.) and the static-dataflow
recursion work (see PAPERS.md): scheduling decisions for recursive
models are made once, in one place, and every backend inherits them —
values, gradients and (for the event engine) virtual-time results are
bit-identical across backends.  See ARCHITECTURE.md for the layer
diagram and the "how to add an executor" recipe.

Registry: backends self-register under a name (:func:`register_executor`)
and :class:`~repro.runtime.session.Session` /
:class:`~repro.harness.runners.RunnerConfig` resolve ``engine="..."``
through :func:`resolve_executor`; :func:`available_executors` lists the
registered names (the cross-executor equivalence tests and the bench
provenance stamps iterate it).

Locking contract: ``_master_lock`` is ``None`` on single-threaded
executors (the event engine) and an ``RLock`` on multi-threaded ones.
``_complete_instance`` and ``_start_frame`` mutate master state and are
*lock-free by design*: every entry point either holds the lock already
(worker completions, starters, ``submit_root``) or runs on the only
thread that touches frames.  ``submit_root`` and ``_complete_batch``
take the lock themselves when one exists.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.graph.graph import Graph, Operation
from repro.graph.registry import ExecContext
from repro.graph.sparse import IndexedSlices
from repro.graph.tensor import Tensor

from .batching import (BatchPolicy, Coalescer, resolve_batching,
                       value_signature)
from .cost_model import CostModel, testbed_cpu
from .plan import FramePlan, plan_for, plan_for_fetches
from .stats import RunStats

__all__ = ["SchedulerCore", "Frame", "Instance", "EngineError",
           "should_store", "seed_frame", "collect_cache_entries",
           "prune_cancelled", "register_executor", "resolve_executor",
           "available_executors"]


class EngineError(RuntimeError):
    """An error raised while executing a graph, annotated with op context."""


def densify(value):
    """Fetch-boundary conversion: sparse gradients leave the runtime as
    the dense tensors callers expect (``IndexedSlices`` is an internal
    value representation, bit-identical to the dense gradient)."""
    if isinstance(value, IndexedSlices):
        return value.to_dense()
    return value


def _values_bytes(outputs) -> int:
    """Byte estimate of one slot's output list (live-bytes accounting)."""
    total = 0
    for v in outputs:
        nb = getattr(v, "nbytes", None)
        if nb is not None:
            total += nb
    return total


def should_store(frame, op_id: int, out_idx: int) -> bool:
    """Selective caching: after differentiation each body graph knows
    which forward values its backward body looks up.  The scheduler core
    consults the plan's precomputed ``store_masks`` on the hot path; this
    is the reference predicate those masks bake in (kept for tests and
    out-of-plan callers)."""
    cache_filter = getattr(frame.graph, "cache_filter", None)
    return cache_filter is None or (op_id, out_idx) in cache_filter


def seed_frame(frame: "Frame", complete_instance: Callable,
               push: Callable) -> None:
    """Seed a fresh frame: complete bound placeholders, enqueue ready ops.

    Shared by every executor (the only difference is the ready sink) so
    the spawn semantics — bindings complete in op-id order exactly like
    the pre-plan engines, bindings outside a pruned op set are ignored,
    zero-dep ops enqueue in slot order — cannot diverge between them.
    """
    plan = frame.plan
    pending = frame.pending
    bindings = frame.bindings
    if bindings:
        if len(bindings) == 1:
            # the common spawn shape: a single bound input
            op_id, value = next(iter(bindings.items()))
            slot = plan.index_of.get(op_id)
            if slot is not None:
                pending[slot] = -1
                complete_instance(Instance(plan.ops[slot], frame, slot),
                                  [value])
        else:
            index_of = plan.index_of
            for op_id in sorted(bindings):
                slot = index_of.get(op_id)
                if slot is None:
                    continue
                pending[slot] = -1
                complete_instance(Instance(plan.ops[slot], frame, slot),
                                  [bindings[op_id]])
    for slot in plan.zero_dep_slots:
        if pending[slot] == 0:
            pending[slot] = -1
            push(Instance(plan.ops[slot], frame, slot))


def prune_cancelled(bucket) -> bool:
    """Drop members of cancelled request trees from a popped bucket.

    Shared by every executor's bucket-execution path: a bucket may have
    been filled before its members' root was cancelled (or popped from
    the coalescer concurrently with ``cancel_root``'s discard), so the
    flush filters again.  Returns True when live members remain.
    """
    instances = bucket.instances
    for inst in instances:
        if inst.frame.root.cancelled:
            break
    else:
        return bool(instances)
    keep = [i for i, inst in enumerate(instances)
            if not inst.frame.root.cancelled]
    bucket.instances = [instances[i] for i in keep]
    bucket.inputs = [bucket.inputs[i] for i in keep]
    return bool(keep)


def collect_cache_entries(members, outputs_list) -> list:
    """The record-set of one fused batch as ``store_many`` entries.

    Shared by every executor's batch-completion path so the set of
    cached values (and its bulk-write layout) cannot diverge between
    them.
    """
    entries = []
    for inst, outputs in zip(members, outputs_list):
        frame = inst.frame
        if frame.record:
            mask = frame.plan.store_masks[inst.slot]
            graph_id = frame.plan.graph_id
            op_id = inst.op.id
            for i, value in enumerate(outputs):
                if mask[i]:
                    entries.append((frame.key, graph_id, op_id, i, value))
    return entries


class Frame:
    """One activation of a graph (the whole run, or one SubGraph call).

    Per-frame state is dense over the plan's slot numbering: ``values``
    holds each slot's output list (None until produced), ``pending`` the
    remaining-producer counters (-1 once dispatched or bound).
    """

    __slots__ = ("plan", "graph", "key", "depth", "record", "bindings",
                 "values", "pending", "remaining", "on_complete", "owner",
                 "ctx", "root", "cancelled", "release_counts",
                 "rec_profiles")

    def __init__(self, plan: FramePlan, bindings: dict, key: tuple,
                 depth: int, record: bool, on_complete: Callable,
                 owner: Optional["Instance"]):
        self.plan = plan
        self.graph = plan.graph
        self.key = key
        self.depth = depth
        self.record = record
        self.bindings = bindings
        self.values: list = [None] * plan.num_slots
        self.pending: list = list(plan.dep_counts)
        self.remaining = plan.num_slots
        self.on_complete = on_complete
        self.owner = owner  # parent Instance (None for the root frame)
        self.ctx = None  # lazily-built ExecContext, shared by this
        # frame's kernel invocations (runtime/frame/record are fixed)
        #: the depth-0 ancestor; only the root's ``cancelled`` flag is
        #: ever consulted, so cancelling one root retires its whole tree
        self.root = owner.frame.root if owner is not None else self
        self.cancelled = False
        #: per-slot consumer-edge countdown for eager value release
        #: (None disables release for this frame); set by ``_make_frame``
        #: from the plan's memoized pin-aware counts
        self.release_counts: Optional[list] = None
        #: partial-compilation profile map for this frame's call sites:
        #: op id -> (s_rec, subtree profile) for Invoke sites, or
        #: ("cond", s_rec, children) under a lone Cond op id.  None on
        #: frames without attached profiles (the overwhelming default).
        self.rec_profiles: Optional[dict] = None

    def value_of(self, tensor: Tensor):
        return self.values[self.plan.index_of[tensor.op.id]][tensor.index]

    def values_at(self, locs) -> list:
        """Gather ``(op_id, output_index)`` locations from this frame.

        The spawn starters' completion callbacks use this with the
        SubGraph's cached ``output_locs``, so the frame storage layout
        is encapsulated here next to :meth:`value_of`.
        """
        values = self.values
        index_of = self.plan.index_of
        return [values[index_of[op_id]][i] for op_id, i in locs]

    def exec_context(self, runtime) -> ExecContext:
        """The frame's (memoized) kernel execution context."""
        ctx = self.ctx
        if ctx is None:
            ctx = self.ctx = ExecContext(runtime, self, self.record)
        return ctx


class Instance:
    """A schedulable (operation, frame) pair.

    ``slot`` is the op's dense index in the frame's plan; ``sig``
    memoizes the batch signature so an instance requeued after a partial
    bucket flush never recomputes it, and ``seq`` its first ready-queue
    arrival order (assigned by the depth-priority queue) so a requeue
    preserves the original tie-break position.
    """

    __slots__ = ("op", "frame", "slot", "sig", "seq")

    def __init__(self, op: Operation, frame: Frame, slot: int):
        self.op = op
        self.frame = frame
        self.slot = slot
        self.sig = None
        self.seq = None


class _LevelRun:
    """Handle for a root admitted through the compiled level-plan path.

    Plays the :class:`Frame` role in the admission bookkeeping — the
    server holds it, ``cancel_root`` flips it, ``drain`` waits on it —
    without any frame machinery: a compiled root spawns no frames.
    ``prefix`` is the root cache key; every compiled frame's key is
    ``prefix + suffix`` with the suffixes baked into the LevelPlan, so
    cache entries and accumulator order keys match the dynamic path
    bit-for-bit.
    """

    #: duck-type marker consulted by ``_cancel_root_locked``
    is_level_run = True
    is_subtree = False
    #: fetch-boundary behavior: root fetches leave the runtime dense
    densify_fetches = True

    __slots__ = ("lp", "prefix", "feed", "fetch_locs", "on_complete",
                 "cancelled", "done", "node_values", "ctxs")

    def __init__(self, lp, prefix: tuple, feed: dict, fetch_list,
                 on_complete: Optional[Callable]):
        self.lp = lp
        self.prefix = prefix
        self.feed = feed
        self.fetch_locs = [(lp.root_node_of[t.op.id], t.index)
                           for t in fetch_list]
        self.on_complete = on_complete
        self.cancelled = False
        self.done = False
        self.node_values = None
        self.ctxs = None


class _SubtreeRun:
    """One recursive subtree executed as a compiled sub-sweep.

    The partial-compilation handle: a dynamic spine frame's Invoke
    starter launches it instead of spawning a child frame tree, and its
    boundary values return through ``finish_async`` exactly like a
    dynamic child's ``on_complete`` — raw (no densify), so sparse
    gradients cross the boundary bit-identically.  ``prefix`` is the
    dynamic ``child_key`` the child frame would have had, so cache
    entries and accumulator order keys match the dynamic path.
    """

    is_level_run = True
    is_subtree = True
    densify_fetches = False

    __slots__ = ("lp", "prefix", "feed", "fetch_locs", "inst", "done",
                 "node_values", "ctxs")

    def __init__(self, lp, prefix: tuple, feed: dict, subgraph, inst):
        self.lp = lp
        self.prefix = prefix
        self.feed = feed
        self.fetch_locs = [(lp.root_node_of[op_id], i)
                           for op_id, i in subgraph.output_locs]
        self.inst = inst
        self.done = False
        self.node_values = None
        self.ctxs = None

    @property
    def cancelled(self):
        return self.inst.frame.root.cancelled


class _FifoReady(deque):
    """FIFO ready queue: a deque subclass so push/pop/len stay C-level."""

    __slots__ = ()

    push = deque.append
    pop = deque.popleft


class _DepthPriorityReady:
    """Deeper frames first — the paper's suggested priority policy.

    First-push order breaks depth ties (instances are pushed the moment
    they become ready, so the counter reproduces global ready order);
    the seq is memoized on the instance so a straggler requeued by a
    partial bucket flush keeps its original position.
    """

    __slots__ = ("_q", "_seq")

    def __init__(self):
        self._q: list[tuple[int, int, Instance]] = []
        self._seq = itertools.count()

    def push(self, inst: Instance) -> None:
        seq = inst.seq
        if seq is None:
            seq = inst.seq = next(self._seq)
        heapq.heappush(self._q, (-inst.frame.depth, seq, inst))

    def pop(self) -> Instance:
        return heapq.heappop(self._q)[2]

    def __len__(self) -> int:
        return len(self._q)


class _MemoryBudgetReady:
    """FIFO below the memory budget, deepest-first above it.

    Every push threads one shared ``[instance, served]`` entry through
    both internal orders (a FIFO deque and a depth-priority heap); each
    ``pop`` consults the core's live-bytes pressure and serves from the
    matching order, lazily discarding entries the other order already
    served.  Under pressure the engine thus finishes deep subtrees —
    draining live frames and their retained values — before fanning out
    new breadth; no work is dropped and the executed-op *set* is
    unchanged, only its order.
    """

    __slots__ = ("_core", "_fifo", "_heap", "_seq", "_pushes", "_len")

    def __init__(self, core: "SchedulerCore"):
        self._core = core
        self._fifo: deque = deque()
        self._heap: list = []
        self._seq = itertools.count()
        self._pushes = itertools.count()  # heap tiebreak for requeues
        self._len = 0

    def push(self, inst: Instance) -> None:
        seq = inst.seq
        if seq is None:
            seq = inst.seq = next(self._seq)
        entry = [inst, False]
        self._fifo.append(entry)
        heapq.heappush(self._heap,
                       (-inst.frame.depth, seq, next(self._pushes), entry))
        self._len += 1

    def pop(self) -> Instance:
        if self._len == 0:
            raise IndexError("pop from an empty ready queue")
        self._len -= 1
        if self._core._over_budget():
            heap = self._heap
            while True:
                entry = heapq.heappop(heap)[3]
                if not entry[1]:
                    entry[1] = True
                    return entry[0]
        fifo = self._fifo
        while True:
            entry = fifo.popleft()
            if not entry[1]:
                entry[1] = True
                return entry[0]

    def __len__(self) -> int:
        return self._len

    #: deque-compatible aliases so the wall-clock masters can drop this
    #: queue in where they use a plain deque
    append = push
    popleft = pop


def _unconfigured_push(inst) -> None:
    raise EngineError("executor has no active session (run/begin_serving "
                      "must configure the ready sink before frames start)")


class SchedulerCore:
    """Frame-lifecycle scheduler shared by every executor backend.

    Owns the recursion-aware scheduling semantics — frame spawn/seed/
    complete over :class:`~repro.runtime.plan.FramePlan` slot arrays,
    coalescer signatures and flush decisions, selective-cache stores,
    serving admission, error wrapping and stats accounting — while the
    backend supplies the clock and the kernel-execution mechanics.

    Args:
        runtime: the :class:`~repro.runtime.session.Runtime` providing
            variables, accumulators and the backprop cache.
        num_workers: worker count (virtual workers for the event engine,
            threads for the wall-clock backends).
        cost_model: virtual-time cost model; defaults to the CPU testbed.
        record: cache forward values of recursive frames (training mode).
        scheduler: "fifo" (paper default) or "depth" priority (the
            event engine honors it; wall-clock backends are FIFO).
        max_depth: recursion guard.
        batching: coalesce same-signature ready ops across frames into
            fused vectorized kernel calls (cross-instance micro-batching).
            ``True`` uses the fixed flush policy, ``"adaptive"`` the
            per-signature :class:`~repro.runtime.batching.AdaptiveBatchPolicy`.
        batch_policy: bucket capacity / flush policy when batching.
        memory_budget: soft live-bytes cap (bytes); under pressure the
            event engine's dispatch prefers completing deep subtrees
            over breadth-first fan-out (work is reordered, never shed).
            Defaults to ``batch_policy.memory_budget``.
        track_live_bytes: maintain the live-bytes estimate (and its
            peak in ``RunStats``) even without a budget.
    """

    #: True when the backend runs on a simulated clock (the event
    #: engine): the server then schedules arrivals at virtual instants
    #: and drives the simulation through ``drain`` instead of waiting on
    #: wall time.
    virtual_clock = False

    def __init__(self, runtime, num_workers: int = 1,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 memory_budget: Optional[int] = None,
                 track_live_bytes: bool = False):
        self.runtime = runtime
        self.num_workers = max(1, num_workers)
        self.cost_model = cost_model or testbed_cpu()
        self.record = record
        self.scheduler = scheduler
        self.max_depth = max_depth
        self.batching, batch_policy = resolve_batching(batching, batch_policy)
        self.batch_policy = batch_policy or BatchPolicy()
        self.memory_budget = (memory_budget if memory_budget is not None
                              else self.batch_policy.memory_budget)
        #: live-bytes accounting is hot-path work, so it only runs when a
        #: budget needs the pressure signal or a caller asked to measure
        self._track_live = (self.memory_budget is not None
                            or track_live_bytes)
        self._live_bytes = 0
        self.stats = RunStats()
        #: master-state mutex (None on single-threaded executors); see
        #: the module docstring for the locking contract.
        self._master_lock: Optional[threading.RLock] = None
        #: condition against the master lock, notified when a root frame
        #: completes (wall-clock executors create it for ``drain``).
        self._roots_cv: Optional[threading.Condition] = None
        self._open_roots = 0
        self._push_ready: Callable = _unconfigured_push
        self._coalescer: Optional[Coalescer] = None
        self._error: Optional[Exception] = None
        self._error_listener: Optional[Callable] = None
        #: True once the error listener has been invoked (wall-clock
        #: backends deliver at failure time; drain must not re-deliver).
        self._error_delivered = False
        #: sticky copy of a raised session error: failed roots never
        #: complete, so a repeat drain() must raise again, not hang.
        self._fatal_error: Optional[Exception] = None
        self._serve_wall0 = 0.0
        #: compiled roots admitted but not yet executed (level-plan path)
        self._pending_level_runs: list = []
        #: True while a thread is inside the level-flush loop; late
        #: admissions just append and the running flush picks them up
        self._level_flushing = False
        #: set by backends that defer sweep flushes to their master loop
        #: (workerpool/procpool — a starter-context flush would execute
        #: sweeps under the master lock, inverting the barrier's order)
        self._level_flush_wanted = False
        #: depth bucket for canonical profiles (None = exact profiles);
        #: mirrored from the batch policy so every admission sees it
        self._level_canon_depth = getattr(self.batch_policy,
                                          "level_canon_depth", None)
        #: one-shot stash: _try_level_run parks the root's site map here
        #: for the dynamic root frame _make_frame is about to build
        self._root_site_map: Optional[dict] = None

    # -- Executor interface ---------------------------------------------------
    #
    # The mechanics a backend must implement.  ``now`` is the backend
    # clock (virtual or wall); ``post_continuation`` defers a callback
    # (loop iterations); ``finish_async`` posts an async op's return
    # once its child frame(s) completed; ``run`` executes one fixed
    # fetch set to completion.  The serving hooks (`_start_serving`,
    # `_drain_events`, `_stamp_clock`, `_stop_serving`, `_admitted`)
    # back the shared begin_serving/submit_root/drain/end_serving
    # implementations below.

    @property
    def now(self) -> float:
        raise NotImplementedError

    def post_continuation(self, delay: float, fn: Callable) -> None:
        raise NotImplementedError

    def finish_async(self, inst: Instance, outputs: list) -> None:
        raise NotImplementedError

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any],
            shape_profile=None) -> tuple[list, RunStats]:
        raise NotImplementedError

    def _start_serving(self) -> None:
        """Initialize session state (and start workers, if any)."""
        raise NotImplementedError

    def _drain_events(self) -> None:
        """Run/await all admitted work (event loop or quiescence wait)."""
        raise NotImplementedError

    def _stamp_clock(self, stats: RunStats) -> None:
        """Record the backend clock's elapsed serving time on ``stats``."""
        raise NotImplementedError

    def _stop_serving(self) -> None:
        """Tear down the serving session (stop workers, stamp clocks)."""

    def _admitted(self) -> None:
        """Hook: a root was admitted from a (possibly foreign) thread."""

    # -- frame lifecycle ------------------------------------------------------

    def spawn_frame(self, subgraph, bindings: dict, key: tuple, depth: int,
                    on_complete: Callable, owner: Optional[Instance]) -> Frame:
        """Start executing a SubGraph body as a new frame (paper step 4)."""
        if depth > self.max_depth:
            raise EngineError(
                f"recursion limit exceeded (depth {depth}); "
                "check the base case of your recursive SubGraph")
        graph = subgraph.graph
        record = self.record and not getattr(graph, "is_backward_body", False)
        frame = self._make_frame(plan_for(graph), bindings, key=key,
                                 depth=depth, record=record,
                                 on_complete=on_complete, owner=owner,
                                 pin_locs=subgraph.output_locs)
        self._start_frame(frame)
        return frame

    def _make_frame(self, plan: FramePlan, bindings, key, depth, record,
                    on_complete, owner, pin_locs=None) -> Frame:
        frame = Frame(plan, bindings, key, depth, record, on_complete, owner)
        if depth == 0 and self._root_site_map is not None:
            # partial compilation: _try_level_run parked the root's
            # per-call-site profile map for this dynamic spine frame
            frame.rec_profiles = self._root_site_map
            self._root_site_map = None
        if pin_locs is not None and not record:
            # recording frames keep every slot alive for the backward
            # pass's cache reads; eager release only applies otherwise
            frame.release_counts = list(plan.release_counts(pin_locs))
        self.stats.frames_created += 1
        if depth > self.stats.max_frame_depth:
            self.stats.max_frame_depth = depth
        return frame

    def _over_budget(self) -> bool:
        """Is estimated live scratch above the configured budget?"""
        budget = self.memory_budget
        if budget is None:
            return False
        return (self._live_bytes
                + self.runtime.accumulators.retained_bytes) > budget

    def _start_frame(self, frame: Frame) -> None:
        seed_frame(frame, self._complete_instance, self._push_ready)

    def _complete_instance(self, inst: Instance, outputs: list,
                           store: bool = True) -> None:
        """Record an instance's outputs, resolve dependents, finish frames.

        Mutates master state: on locking executors every entry point
        (worker completion paths, starters, ``submit_root``, seeding)
        already holds the master lock when this runs.

        Cancelled request trees quiesce here: a completion belonging to
        a cancelled root is dropped — no dependents are pushed, the
        frame never reaches ``remaining == 0``, so ``on_complete`` never
        fires.  This single chokepoint covers every completion path
        (sync kernels, fused batches, async returns) on all executors.
        """
        frame = inst.frame
        if frame.root.cancelled:
            return
        plan = frame.plan
        slot = inst.slot
        if len(outputs) != plan.n_outputs[slot]:
            op = inst.op
            raise EngineError(
                f"kernel of {op.name} ({op.op_type}) returned {len(outputs)} "
                f"values, expected {op.num_outputs}")
        frame.values[slot] = outputs
        track = self._track_live
        if track:
            scratch = plan.scratch_slots
            live = self._live_bytes
            if scratch[slot]:
                live += _values_bytes(outputs)
                self._live_bytes = live
            live += self.runtime.accumulators.retained_bytes
            if live > self.stats.peak_live_bytes:
                self.stats.peak_live_bytes = live
        if store and frame.record:
            mask = plan.store_masks[slot]
            for i, value in enumerate(outputs):
                if mask[i]:
                    self.runtime.cache.store(frame.key, plan.graph_id,
                                             inst.op.id, i, value)
        consumers = plan.consumer_slots[slot]
        if consumers:
            pending = frame.pending
            push = self._push_ready
            for consumer_slot in consumers:
                count = pending[consumer_slot]
                if count == 1:
                    pending[consumer_slot] = -1
                    push(Instance(plan.ops[consumer_slot], frame,
                                  consumer_slot))
                else:
                    pending[consumer_slot] = count - 1
        release = frame.release_counts
        if release is not None:
            # the inputs this op consumed were gathered at dispatch, so
            # a producer slot whose last consumer edge just completed
            # can drop its outputs now; pinned slots sit at -1 forever
            values = frame.values
            for src, _ in plan.input_locs[slot]:
                n = release[src] - 1
                release[src] = n
                if n == 0 and values[src] is not None:
                    if track and plan.scratch_slots[src]:
                        self._live_bytes -= _values_bytes(values[src])
                    values[src] = None
            if release[slot] == 0 and values[slot] is not None:
                if track and plan.scratch_slots[slot]:
                    self._live_bytes -= _values_bytes(values[slot])
                values[slot] = None
        frame.remaining -= 1
        if frame.remaining == 0:
            frame.on_complete(frame)
            if track:
                # whatever the frame still holds (pinned outputs, or the
                # whole list on recording frames) dies with the frame
                scratch = plan.scratch_slots
                freed = 0
                for i, v in enumerate(frame.values):
                    if v is not None and scratch[i]:
                        freed += _values_bytes(v)
                self._live_bytes -= freed

    def _complete_batch(self, members: list, outputs_list: list) -> None:
        """Scatter a fused batch's results; one bulk store for the cache.

        The bulk cache write happens outside the master lock (the
        :class:`~repro.core.cache.ValueCache` has its own shard locks);
        the scatter-back takes the lock once for the whole bucket.
        """
        entries = collect_cache_entries(members, outputs_list)
        if entries:
            self.runtime.cache.store_many(entries)
        lock = self._master_lock
        if lock is None:
            for inst, outputs in zip(members, outputs_list):
                self._complete_instance(inst, outputs, store=False)
        else:
            with lock:
                for inst, outputs in zip(members, outputs_list):
                    self._complete_instance(inst, outputs, store=False)

    # -- batching integration -------------------------------------------------

    @staticmethod
    def _batch_signature_of(inst: Instance, inputs: list, prefix) -> tuple:
        """The instance's full batch signature (memoized on the instance
        so a straggler requeued by a partial flush never recomputes it)."""
        signature = inst.sig
        if signature is None:
            signature = inst.sig = prefix + (value_signature(inputs),)
        return signature

    def _bucket_fused(self, bucket) -> bool:
        """Flush decision: run the fused kernel, or fall back to scalars."""
        return len(bucket) >= self._coalescer.policy.min_batch_for(
            bucket.signature)

    @staticmethod
    def _check_batch_result(bucket, outputs_list) -> None:
        if len(outputs_list) != len(bucket):
            raise EngineError(
                f"batched kernel of {bucket.op_type} returned "
                f"{len(outputs_list)} results for {len(bucket)} members")

    def _spawn_async_bucket(self, bucket, fused: bool) -> None:
        """Fused (or straggler) frame spawn on a wall-clock backend: run
        every member's starter under the master lock, accounting one
        ``note_batch`` when fused else per-member ``note_op``.  The
        event engine has its own path (starters run at virtual
        completion instants with the fused overhead charged up front).
        Exceptions propagate to the caller's failure handler.
        """
        with self._master_lock:
            for inst, inputs in zip(bucket.instances, bucket.inputs):
                # re-checked under the lock: a cancel may land between
                # the caller's prune (outside the lock) and the spawn
                if inst.frame.root.cancelled:
                    continue
                inst.frame.plan.starters[inst.slot](self, inst, inputs)
            if fused:
                self.stats.note_batch(bucket.op_type, len(bucket), 0.0,
                                      bucket.signature)
            else:
                for inst in bucket.instances:
                    self.stats.note_op(inst.op.op_type, 0.0)

    # -- serving admission ----------------------------------------------------
    #
    # ``run`` executes one fixed fetch set to completion.  The serving
    # path (:class:`repro.runtime.server.RecursiveServer`) instead keeps
    # the executor alive across requests: ``begin_serving`` opens a
    # persistent session, ``submit_root`` injects a new root instance
    # into the *live* ready queue (so its ops interleave — and fuse —
    # with whatever is already in flight), and ``drain`` runs/awaits the
    # backend until every admitted root has completed.  Clock and stats
    # accumulate across the whole serving session.

    def begin_serving(self, error_listener: Optional[Callable] = None) -> None:
        """Enter persistent serving mode (clears any previous run state).

        ``error_listener`` (optional) is called once, outside the master
        lock, if any kernel raises — root frames in flight at that point
        will never complete, so the server must fail their requests.
        On the single-threaded event engine errors surface from
        ``drain()``, which invokes the listener before raising.
        """
        self._open_roots = 0
        self._error_listener = None
        self._error_delivered = False
        self._fatal_error = None
        self._pending_level_runs = []
        self._level_flushing = False
        self._level_flush_wanted = False
        self._root_site_map = None
        self._start_serving()
        self._serve_wall0 = time.perf_counter()
        self._error_listener = error_listener

    def submit_root(self, graph: Graph, fetches: Sequence[Tensor],
                    feed_map: dict[int, Any], key: tuple,
                    on_complete: Callable, shape_profile=None) -> Frame:
        """Admit a new root instance into the live ready queue.

        The fetch set's reachable ops become a fresh depth-0 frame whose
        ready ops join the one shared queue — inner operations of the new
        request coalesce with in-flight requests' ops exactly like
        sibling recursive calls.  ``on_complete`` receives the fetch
        values (in ``fetches`` order) when the root frame finishes.
        The pruned root plan is memoized per fetch set, so repeat
        requests skip the reachability walk entirely.  Thread-safe on
        locking executors (admission takes the master lock).

        ``shape_profile`` (per-call-site tree shapes, in op-id order)
        routes the root through the compiled level-plan fast path when
        it is eligible (:mod:`repro.runtime.level_plan`): no frames are
        spawned, and concurrent same-profile roots share one wavefront.
        Ineligible roots fall back to the dynamic path below, counted in
        ``RunStats.level_plan_fallbacks``.
        """
        fetch_list = list(fetches)
        plan = plan_for_fetches(graph, {t.op for t in fetch_list})
        site_map = None
        if shape_profile is not None:
            handle = self._try_submit_level_root(
                graph, plan, fetch_list, feed_map, key, on_complete,
                shape_profile)
            if isinstance(handle, dict):
                # spine root: run dynamically with the per-call-site
                # profile map attached, compiled sub-sweeps per subtree
                site_map = handle
            elif handle is not None:
                return handle
        pins = tuple((t.op.id, t.index) for t in fetch_list)

        def frame_done(frame):
            values = [densify(frame.value_of(t)) for t in fetch_list]
            self._open_roots -= 1
            on_complete(values)
            cv = self._roots_cv
            if cv is not None:
                cv.notify_all()

        lock = self._master_lock
        if lock is None:
            self._open_roots += 1
            frame = self._make_frame(plan, feed_map, key=key, depth=0,
                                     record=False, on_complete=frame_done,
                                     owner=None, pin_locs=pins)
            if site_map is not None:
                frame.rec_profiles = site_map
            self._start_frame(frame)
        else:
            with lock:
                self._open_roots += 1
                frame = self._make_frame(plan, feed_map, key=key, depth=0,
                                         record=False, on_complete=frame_done,
                                         owner=None, pin_locs=pins)
                if site_map is not None:
                    frame.rec_profiles = site_map
                self._start_frame(frame)
        self._admitted()
        return frame

    # -- compiled level-plan path ---------------------------------------------
    #
    # When the caller knows the tree shape at admission, the recursion
    # lowers to a fixed wavefront schedule (repro.runtime.level_plan).
    # The scheduler owns the admission/merge/complete bookkeeping so all
    # backends share it; the event engine overrides the two small hooks
    # (`_schedule_level_flush`, `_execute_level_group`) to run the sweep
    # at virtual instants with modeled cost.

    def _root_profile_map(self, plan, profiles):
        """Map root Invoke op ids to their per-call-site sub-profiles.

        The spine-admission precondition: every root call site targets
        one shared recursive SubGraph and the profile count matches.
        Returns ``{op.id: (s_rec, profile)}`` or None.
        """
        invokes = [op for op in plan.ops if op.op_type == "Invoke"]
        if not invokes or len(invokes) != len(profiles):
            return None
        s_rec = invokes[0].attrs["subgraph"]
        for op in invokes[1:]:
            if op.attrs["subgraph"] is not s_rec:
                return None
        return {op.id: (s_rec, prof)
                for op, prof in zip(invokes, profiles)}

    def _resolve_level_profile(self, plan, shape_profile):
        """Classify an admission profile for the compiled tier.

        ``("full", profiles)``  — fully determined and within the canon
        depth bucket (or canonicalization off): compile the whole root,
        exactly the pre-canonicalization behavior.
        ``("spine", site_map)`` — holes (undetermined subtrees) or a
        tree deeper than ``level_canon_depth``: run the root dynamically
        and launch compiled sub-sweeps per determined subtree of depth
        ≤ the canon bucket, so many distinct shapes share the small
        canonical plan set.
        ``("dynamic", None)``   — profile unusable; plain fallback.
        """
        from .level_plan import _profile_depth, _profile_has_holes
        try:
            profiles = tuple(shape_profile)
        except TypeError:
            return "dynamic", None
        holes = any(_profile_has_holes(p) for p in profiles)
        canon = self._level_canon_depth
        too_deep = (canon is not None
                    and any(not _profile_has_holes(p)
                            and _profile_depth(p) > canon
                            for p in profiles))
        if not holes and not too_deep:
            return "full", profiles
        site_map = self._root_profile_map(plan, profiles)
        if site_map is not None:
            return "spine", site_map
        return "dynamic", None

    def _try_level_run(self, graph, fetch_list, feed_map, shape_profile):
        """One-shot compiled execution for ``run()``.

        Returns ``(values, modeled_cost)`` on a hit, None on fallback.
        The run's key prefix is the root key ``()``, so cache entries
        and accumulator order keys are bit-identical to the dynamic
        path.  Errors propagate to the caller like dynamic ``run``.
        A spine-mode profile (holes / canonicalized depth) returns None
        after parking the site map for the dynamic root frame.
        """
        from .level_plan import execute_level_plan, level_plan_for
        self._root_site_map = None
        plan = plan_for_fetches(graph, {t.op for t in fetch_list})
        mode, resolved = self._resolve_level_profile(plan, shape_profile)
        if mode == "dynamic":
            self.stats.level_plan_fallbacks += 1
            return None
        if mode == "spine":
            self.stats.level_plan_partial_roots += 1
            self._root_site_map = resolved
            return None
        lp = level_plan_for(graph, plan, resolved, self.record,
                            stats=self.stats)
        if lp is None or lp.max_depth > self.max_depth:
            self.stats.level_plan_fallbacks += 1
            return None
        try:
            run = _LevelRun(lp, (), feed_map, fetch_list, None)
        except KeyError:
            self.stats.level_plan_fallbacks += 1
            return None
        self.stats.level_plan_hits += 1
        values = execute_level_plan(self, lp, [run])[0]
        return values, self.cost_model.level_plan_cost(lp, 1)

    def _try_submit_level_root(self, graph, plan, fetch_list, feed_map,
                               key, on_complete, shape_profile):
        """Serving-mode admission onto the compiled path.

        Returns a ``_LevelRun`` handle on a full compiled hit, the root
        site-map *dict* for spine-mode profiles (the caller builds a
        dynamic frame and attaches it), or None for plain fallback.
        """
        from .level_plan import level_plan_for
        lock = self._master_lock
        mode, resolved = self._resolve_level_profile(plan, shape_profile)
        if mode == "spine":
            if lock is None:
                self.stats.level_plan_partial_roots += 1
            else:
                with lock:
                    self.stats.level_plan_partial_roots += 1
            return resolved
        lp = None
        if mode == "full":
            lp = level_plan_for(graph, plan, resolved, self.record,
                                stats=self.stats)
        eligible = lp is not None and lp.max_depth <= self.max_depth
        run = None
        if eligible:
            try:
                run = _LevelRun(lp, key, feed_map, fetch_list, on_complete)
            except KeyError:  # fetch outside the compiled root plan
                run = None
        if run is None:
            if lock is None:
                self.stats.level_plan_fallbacks += 1
            else:
                with lock:
                    self.stats.level_plan_fallbacks += 1
            return None
        if lock is None:
            self.stats.level_plan_hits += 1
            self._open_roots += 1
            self._pending_level_runs.append(run)
        else:
            with lock:
                self.stats.level_plan_hits += 1
                self._open_roots += 1
                self._pending_level_runs.append(run)
        self._schedule_level_flush()
        self._admitted()
        return run

    def _attach_child_profiles(self, frame: Frame, s_rec, children) -> None:
        """Thread sub-profiles one level down a dynamic spine frame.

        Called by the async starters right after ``spawn_frame`` (safe:
        starters hold the master lock on every backend, or run on the
        single event thread).  Invoke sites of ``s_rec`` in plan slot
        order zip with ``children``; a body with no direct sites and
        exactly one Cond stashes the children under the Cond op id for
        the branch frame.  On any mismatch nothing attaches and the
        subtree silently stays dynamic.
        """
        from .plan import rec_invoke_sites
        if children is None:
            # fully undetermined subtree: no profiles to thread — the
            # whole subtree runs dynamically
            return
        sites, lone_cond = rec_invoke_sites(frame.plan, s_rec)
        if sites:
            if len(sites) == len(children):
                frame.rec_profiles = {
                    op_id: (s_rec, child)
                    for op_id, child in zip(sites, children)}
        elif lone_cond is not None:
            frame.rec_profiles = {lone_cond: ("cond", s_rec, children)}

    def _spawn_profiled_child(self, inst: Instance, subgraph, bindings,
                              key, profile) -> bool:
        """Try to run one recursive subtree as a compiled sub-sweep.

        The partial-compilation launch point, called from the Invoke
        starter of a frame carrying ``rec_profiles``.  Returns False —
        the caller spawns a dynamic child frame instead — when the
        subtree still has holes, is deeper than the canon bucket
        (intentional decomposition, not a fallback), or fails to
        compile (counted per-subtree in ``level_plan_fallbacks``).
        """
        from .level_plan import (_profile_depth, _profile_has_holes,
                                 level_plan_for)
        if _profile_has_holes(profile):
            return False
        canon = self._level_canon_depth
        if canon is not None and _profile_depth(profile) > canon:
            return False
        graph = subgraph.graph
        lp = level_plan_for(graph, plan_for(graph), profile, self.record,
                            stats=self.stats, subtree=subgraph)
        if lp is None or lp.max_depth > self.max_depth - inst.frame.depth:
            self.stats.level_plan_fallbacks += 1
            return False
        run = _SubtreeRun(lp, key, bindings, subgraph, inst)
        self._pending_level_runs.append(run)
        self.stats.level_plan_subtree_runs += 1
        self._schedule_level_flush()
        return True

    def _schedule_level_flush(self) -> None:
        """Arrange for pending compiled roots to execute.  Base backends
        flush immediately on the admitting thread; the event engine
        defers to an event at the current virtual instant so
        same-instant arrivals merge into one wavefront."""
        self._flush_level_runs()

    def _flush_level_runs(self) -> None:
        """Drain ``_pending_level_runs``, batching same-plan runs.

        Single-flusher discipline: the thread that wins the
        ``_level_flushing`` flag loops until the pending list is empty
        — the emptiness check and the flag clear happen in the same
        locked section, so an admission racing with the final check
        either lands in the observed batch or finds the flag down and
        flushes itself.  Reentrant admissions (a completion callback
        submitting the next request) append and return immediately; the
        outer loop picks them up.
        """
        lock = self._master_lock
        if lock is None:
            if self._level_flushing:
                return
            self._level_flushing = True
            try:
                while self._pending_level_runs:
                    batch = self._pending_level_runs
                    self._pending_level_runs = []
                    self._run_level_batch(batch)
            finally:
                self._level_flushing = False
            return
        with lock:
            if self._level_flushing:
                return
            self._level_flushing = True
        while True:
            with lock:
                batch = self._pending_level_runs
                if not batch:
                    self._level_flushing = False
                    return
                self._pending_level_runs = []
            try:
                self._run_level_batch(batch)
            except BaseException:
                with lock:
                    self._level_flushing = False
                raise

    def _run_level_batch(self, batch) -> None:
        groups: dict = {}
        for run in batch:
            groups.setdefault(id(run.lp), (run.lp, []))[1].append(run)
        for lp, runs in groups.values():
            self._execute_level_group(lp, runs)

    def _execute_level_group(self, lp, runs) -> None:
        """Execute one merged wavefront sweep and complete its runs."""
        from .level_plan import execute_level_plan
        try:
            results = execute_level_plan(self, lp, runs)
        except Exception as exc:  # noqa: BLE001 - session failure path
            self._fail_level(exc)
            return
        for run, values in zip(runs, results):
            if values is not None:
                self._complete_level_run(run, values)

    def _execute_level_calls(self, lp, calls, entries, hist) -> None:
        """Run one level's prepared kernel calls.  The base implementation
        executes serially on the calling thread; pool-backed executors
        override it to fan independent calls out to their workers with a
        per-level completion barrier (completions always happen here on
        the master, in original call order)."""
        from .level_plan import complete_level_call, execute_level_call
        for call in calls:
            complete_level_call(self, lp, call, execute_level_call(call),
                                entries, hist)

    def _complete_level_run(self, run, values) -> None:
        """Retire one compiled root (mirrors the dynamic ``frame_done``:
        bookkeeping and the completion callback under the master lock)."""
        if run.is_subtree:
            # sub-sweep boundary: hand the subtree outputs to the parent
            # Invoke instance exactly like a dynamic child frame's
            # on_complete (finish_async takes its own locks as needed)
            run.done = True
            self.finish_async(run.inst, values)
            return
        lock = self._master_lock
        if lock is None:
            if run.cancelled or run.done:
                return
            run.done = True
            self._open_roots -= 1
            run.on_complete(values)
            return
        with lock:
            if run.cancelled or run.done:
                return
            run.done = True
            self._open_roots -= 1
            run.on_complete(values)
            cv = self._roots_cv
            if cv is not None:
                cv.notify_all()

    def _fail_level(self, exc: Exception) -> None:
        """Fail the serving session from the compiled path (one shot)."""
        err = exc if isinstance(exc, EngineError) else EngineError(str(exc))
        if err is not exc:
            err.__cause__ = exc
        lock = self._master_lock
        if lock is None:
            if self._error is None:
                self._error = err
            return  # single-threaded: drain() delivers + raises
        listener = None
        with lock:
            if self._error is None:
                self._error = err
                listener = self._error_listener
                self._error_delivered = listener is not None
            done = getattr(self, "_done", None)
            if done is not None:
                done.set()
            if self._roots_cv is not None:
                self._roots_cv.notify_all()
        if listener is not None:
            listener(err)

    def cancel_root(self, frame: Frame) -> bool:
        """Retire a root frame mid-flight (request cancellation/timeout).

        Marks the tree cancelled, evicts its pending coalescer-bucket
        members, and releases the root from ``_open_roots`` so ``drain``
        does not wait for it.  Ready-queue instances and kernels already
        executing are dropped lazily: dispatch loops skip cancelled
        instances and :meth:`_complete_instance` discards their
        completions, so the tree quiesces without new work.  The frame's
        plan slots and values become garbage the moment the caller drops
        its references (nothing pins a cancelled frame).

        Returns False — and does nothing — when the root already
        completed or was already cancelled: completion and cancellation
        race atomically under the master lock, exactly one wins.
        """
        lock = self._master_lock
        if lock is None:
            return self._cancel_root_locked(frame)
        with lock:
            return self._cancel_root_locked(frame)

    def _cancel_root_locked(self, frame: Frame) -> bool:
        if getattr(frame, "is_level_run", False):
            # compiled-path handle: no frame tree, no coalescer state —
            # the executing sweep drops it at the next level boundary
            if frame.cancelled or frame.done:
                return False
            frame.cancelled = True
            self._open_roots -= 1
            cv = self._roots_cv
            if cv is not None:
                cv.notify_all()
            return True
        root = frame.root
        if root.cancelled or root.remaining == 0:
            return False
        root.cancelled = True
        self._open_roots -= 1
        if self._coalescer is not None:
            self._coalescer.discard_root(root)
        cv = self._roots_cv
        if cv is not None:
            cv.notify_all()
        return True

    def drain(self) -> RunStats:
        """Complete all admitted work (and, on the event engine, all
        scheduled arrivals); returns the session-cumulative stats.
        Raises the engine error if the session failed."""
        self._drain_events()
        # stats reflect the session as far as it got, error or not
        stats = self.stats
        self._stamp_clock(stats)
        stats.wall_time = time.perf_counter() - self._serve_wall0
        stats.cache_stores = self.runtime.cache.stores
        stats.cache_lookups = self.runtime.cache.lookups
        if self._error is not None:
            error, self._error = self._error, None
            self._fatal_error = error
            if self._error_listener is not None and not self._error_delivered:
                # let the server fail outstanding tickets before we raise
                self._error_listener(error)
            raise error
        if self._fatal_error is not None and self._open_roots:
            # repeat drain after a failure: the outstanding roots will
            # never complete, so re-raise instead of waiting forever
            raise self._fatal_error
        return stats

    def end_serving(self) -> RunStats:
        """Leave serving mode (stops workers, if any; returns stats)."""
        self._stop_serving()
        return self.stats

    # -- errors ---------------------------------------------------------------

    @staticmethod
    def _wrap_error(exc: Exception, op: Operation) -> EngineError:
        err = EngineError(
            f"error executing {op.name} ({op.op_type}) in graph "
            f"{op.graph.name}: {exc}")
        err.__cause__ = exc
        return err

    # -- wall-clock serving helpers (shared by the threaded backends) ---------

    def _wait_for_roots(self) -> None:
        """Block until every admitted root completed (or the session
        failed — including a failure already raised by an earlier
        drain).  Short waits keep the caller responsive to the SIGALRM
        test watchdog."""
        with self._roots_cv:
            while (self._open_roots and self._error is None
                   and self._fatal_error is None):
                self._roots_cv.wait(0.05)

    def _stamp_wall_clock(self, stats: RunStats) -> None:
        stats.virtual_time = time.perf_counter() - self._serve_wall0


# -- executor registry --------------------------------------------------------

_EXECUTORS: dict[str, type] = {}
#: modules whose import registers the built-in backends.  In practice
#: ``repro.runtime.__init__`` imports all three eagerly (they are public
#: API), so this list is a guarantee, not the common path: it keeps
#: ``resolve_executor``/``available_executors`` correct under any import
#: order without creating an import cycle in this module.  A new
#: built-in backend must appear here *and* in the package ``__init__``;
#: third-party backends need neither (importing their module runs their
#: ``register_executor`` call).
_BUILTIN_MODULES = ("repro.runtime.engine", "repro.runtime.threaded",
                    "repro.runtime.workerpool", "repro.runtime.procpool")


def register_executor(name: str, cls: type, *, replace: bool = False) -> None:
    """Register an executor backend under ``name``.

    ``Session(engine=name)`` / ``RunnerConfig(engine=name)`` construct
    the class with the shared :class:`SchedulerCore` keyword signature.
    Re-registering a different class under a taken name requires
    ``replace=True``.
    """
    if not replace and name in _EXECUTORS and _EXECUTORS[name] is not cls:
        raise ValueError(f"executor {name!r} already registered "
                         f"({_EXECUTORS[name].__name__})")
    _EXECUTORS[name] = cls


def _load_builtins() -> None:
    import importlib
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def resolve_executor(name: str) -> type:
    """The executor class registered under ``name`` (raises ValueError)."""
    _load_builtins()
    try:
        return _EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered executors: "
            f"{', '.join(sorted(_EXECUTORS))}") from None


def available_executors() -> list[str]:
    """Sorted names of every registered executor backend."""
    _load_builtins()
    return sorted(_EXECUTORS)
