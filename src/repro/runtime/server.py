"""Streaming request server over the recursive engines (continuous batching).

The paper's recursive model makes serving "just" many concurrent root
``InvokeOp`` instances — but driving them in rigid *waves* (admit N
requests, wait for all N, admit the next N) starves the coalescer at
every wave tail: as the last stragglers of a wave finish, the ready queue
empties out and fused batch widths collapse exactly when new requests are
already waiting.  :class:`RecursiveServer` replaces the wave driver with
the standard serving-systems fix, **continuous batching**: requests are
admitted into an engine that is already executing, so a fresh root
instance's operations join the live ready queue and fuse with in-flight
requests' work immediately.

Components:

* :class:`RequestTicket` — the per-request completion future.  Carries
  the admission timeline (``arrival_time`` → ``admit_time`` →
  ``complete_time``) from which time-in-queue and time-in-engine derive.
* :class:`RecursiveServer` — request queue + admission control.  At most
  ``max_in_flight`` root instances execute concurrently; at most
  ``queue_cap`` requests may wait (beyond that, arrivals are rejected —
  the backpressure signal).  ``admission="continuous"`` admits whenever a
  slot frees; ``admission="wave"`` reproduces the legacy wave-synchronized
  driver (a full wave is admitted only once the engine is empty), kept as
  the baseline the benchmarks compare against.
* :exc:`ServerOverloaded` — raised from a rejected ticket's ``result()``.

The server runs on either engine through the engines' shared
incremental-admission API (``begin_serving`` / ``submit_root`` /
``drain`` / ``end_serving``):

* **event engine** — the whole serving session is simulated in virtual
  time.  Arrivals are scheduled with ``submit(..., at=t)``; admission
  decisions and completions happen inside the event loop at the proper
  virtual instants, and ``drain()`` runs the simulation to exhaustion.
  Fully deterministic: a fixed request stream yields bit-identical
  results *and* identical virtual-time latencies run over run.
* **threaded engine** — wall-clock serving on live worker threads.
  ``submit`` may be called from any thread while kernels execute;
  ``drain()`` blocks until the queue and the engine are empty.

If the engine batches with a policy exposing ``note_queue_depth`` (the
:class:`~repro.runtime.batching.QueueAwareBatchPolicy`), the server
reports queue occupancy on every enqueue/admit so flush timeouts tighten
when the queue is shallow and widen under load.

Per-request values are **bit-identical** to a one-shot ``Session.run`` of
the same fetches: admission changes only *when* operations execute, never
what they compute (the micro-batching scatter-back guarantee).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Optional

from repro.graph.tensor import Tensor

from .stats import RunStats

__all__ = ["RecursiveServer", "RequestTicket", "ServerOverloaded"]


class ServerOverloaded(RuntimeError):
    """A request was rejected because the server queue was at its cap."""


class RequestTicket:
    """Completion future of one submitted request.

    Times are engine-clock seconds (virtual under the event engine,
    wall-clock under the threaded engine):

    * ``arrival_time`` — the request entered the server queue;
    * ``admit_time`` — it was admitted into the engine as a root instance;
    * ``complete_time`` — its root frame finished.

    ``queue_time`` / ``engine_time`` / ``latency`` derive from those;
    ``value`` holds the fetch results (matching the structure passed to
    ``submit``), or ``error`` the failure.
    """

    __slots__ = ("request_id", "fetches", "feed_map", "single",
                 "arrival_time", "admit_time", "complete_time", "value",
                 "error", "rejected", "_server", "_done")

    def __init__(self, request_id: int, fetches: list, feed_map: dict,
                 single: bool, server: "RecursiveServer"):
        self.request_id = request_id
        self.fetches = fetches
        self.feed_map = feed_map
        self.single = single
        self.arrival_time: Optional[float] = None
        self.admit_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.value: Any = None
        self.error: Optional[Exception] = None
        self.rejected = False
        self._server = server
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def queue_time(self) -> Optional[float]:
        """Seconds spent waiting for admission (arrival -> admit)."""
        if self.arrival_time is None or self.admit_time is None:
            return None
        return self.admit_time - self.arrival_time

    @property
    def engine_time(self) -> Optional[float]:
        """Seconds spent executing in the engine (admit -> complete)."""
        if self.admit_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.admit_time

    @property
    def latency(self) -> Optional[float]:
        """End-to-end seconds (arrival -> complete)."""
        if self.arrival_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.arrival_time

    def result(self, timeout: Optional[float] = None):
        """Block until this request completes; return (or raise) it.

        On the event engine an unfinished ticket triggers a ``drain()``
        of the server — virtual time cannot pass without running the
        simulation.
        """
        if not self._done.is_set():
            self._server._wait_for(self, timeout)
        if not self._done.is_set():
            raise TimeoutError(
                f"request {self.request_id} not complete after {timeout}s")
        if self.error is not None:
            raise self.error
        return self.value

    def _finish(self) -> None:
        self._done.set()


class RecursiveServer:
    """A streaming request server over one :class:`~repro.runtime
    .session.Session`'s engine.

    Args:
        session: the session whose graph/engine serve the requests.  The
            server takes over the engine (persistent serving mode); using
            ``session.run`` concurrently is unsupported.
        max_in_flight: admission cap — at most this many root instances
            execute concurrently in the engine.
        queue_cap: backpressure cap — at most this many requests may wait
            in the server queue *beyond the free in-flight slots*;
            arrivals past that are *rejected* (the ticket's ``result()``
            raises :exc:`ServerOverloaded`).  ``None`` means unbounded.
        admission: ``"continuous"`` (default) admits a queued request the
            moment an in-flight slot frees; ``"wave"`` admits
            ``max_in_flight`` requests at a time and only when the engine
            is completely empty — the legacy wave-synchronized behaviour,
            kept as the comparison baseline.
        keep_tickets: retain every completed ticket on the server (the
            benchmarking drivers read them back via :attr:`tickets`).
            Pass ``False`` for a long-lived server so completed requests
            — their feeds and result values — are dropped once their
            owners hold the only reference; per-request *latency samples*
            still accrue in :attr:`stats`.
    """

    def __init__(self, session, *, max_in_flight: int = 16,
                 queue_cap: Optional[int] = None,
                 admission: str = "continuous", keep_tickets: bool = True):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if queue_cap is not None and queue_cap < 1:
            raise ValueError("queue_cap must be >= 1 (or None for unbounded)")
        if admission not in ("continuous", "wave"):
            raise ValueError(f"unknown admission mode {admission!r}; "
                             "expected \"continuous\" or \"wave\"")
        self._session = session
        self._engine = session._engine
        self._graph = session.graph
        self._virtual = bool(getattr(self._engine, "virtual_clock", False))
        self.max_in_flight = max_in_flight
        self.queue_cap = queue_cap
        self.admission = admission
        self.keep_tickets = keep_tickets
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque[RequestTicket] = deque()
        self._in_flight = 0
        self._completed = 0
        self._rejected = 0
        self._next_id = itertools.count()
        self._tickets: list[RequestTicket] = []
        self._outstanding: dict[int, RequestTicket] = {}
        self._pump_scheduled = False
        self._fatal: Optional[Exception] = None
        self._closed = False
        session.runtime.cache.clear()
        self._engine.begin_serving(error_listener=self._on_engine_error)

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> RunStats:
        """Session-cumulative engine stats (includes request latencies)."""
        return self._engine.stats

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def tickets(self) -> list:
        """All tickets in submission order (served and rejected)."""
        with self._lock:
            return list(self._tickets)

    # -- submission ----------------------------------------------------------

    def submit(self, fetches, feed_dict: Optional[dict] = None, *,
               at: Optional[float] = None) -> RequestTicket:
        """Enqueue one request; returns its completion future.

        ``fetches``/``feed_dict`` follow ``Session.run`` semantics
        (a Tensor or a sequence of Tensors, placeholder feeds).  ``at``
        (event engine only) schedules the *arrival* at an absolute
        virtual time — the open-loop arrival hook; without it the request
        arrives at the engine's current clock.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        single = isinstance(fetches, Tensor)
        fetch_list = [fetches] if single else list(fetches)
        self._session._check_fetches(fetch_list)
        feed_map = self._session._build_feed_map(feed_dict or {})
        ticket = RequestTicket(next(self._next_id), fetch_list, feed_map,
                               single, self)
        with self._lock:
            if self.keep_tickets:
                self._tickets.append(ticket)
            self._outstanding[ticket.request_id] = ticket
        if at is not None:
            if not self._virtual:
                raise ValueError("scheduled arrivals (at=...) require the "
                                 "event engine; wall-clock backends serve "
                                 "in real time")
            self._engine.schedule(at, lambda: self._arrive(ticket))
        else:
            self._arrive(ticket)
        return ticket

    def drain(self) -> RunStats:
        """Complete everything submitted so far; return cumulative stats.

        Event engine: runs the simulation (arrivals, admissions,
        execution, completions) to exhaustion.  Threaded engine: blocks
        until the request queue and the engine are both empty.  Raises
        the engine error if the session failed.
        """
        if self._virtual:
            stats = self._engine.drain()
            if self._fatal is not None:
                raise self._fatal
            return stats
        with self._cond:
            while self._fatal is None and (self._queue or self._in_flight):
                # short waits keep the main thread responsive to the
                # SIGALRM test watchdog
                self._cond.wait(0.05)
            if self._fatal is not None:
                raise self._fatal
        return self._engine.stats

    def close(self) -> None:
        """Drain (unless already failed) and stop the serving session."""
        if self._closed:
            return
        try:
            if self._fatal is None:
                self.drain()
        finally:
            self._closed = True
            self._engine.end_serving()

    def __enter__(self) -> "RecursiveServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------
    #
    # Lock discipline (threaded engine): completions arrive under the
    # ENGINE lock (frame.on_complete) and then take the server lock, so
    # the server must never hold its own lock while acquiring the engine
    # lock — _pump snapshots its admission decision under the server
    # lock, releases it, and only then calls engine.submit_root.

    def _arrive(self, ticket: RequestTicket) -> None:
        ticket.arrival_time = self._engine.now
        schedule_pump = False
        with self._cond:
            if self._fatal is not None:
                ticket.error = self._fatal
                self._outstanding.pop(ticket.request_id, None)
                ticket._finish()
                self._cond.notify_all()
                return
            # the cap bounds requests that will actually *wait*: free
            # in-flight slots extend it, so an idle server never rejects
            free_slots = max(0, self.max_in_flight - self._in_flight)
            if (self.queue_cap is not None
                    and len(self._queue) >= self.queue_cap + free_slots):
                ticket.rejected = True
                ticket.error = ServerOverloaded(
                    f"request {ticket.request_id} rejected: queue at cap "
                    f"({self.queue_cap})")
                self._rejected += 1
                self._outstanding.pop(ticket.request_id, None)
                self._engine.stats.note_rejected()
                ticket._finish()
                self._cond.notify_all()
                return
            self._queue.append(ticket)
            self._note_queue_depth_locked()
            if self._virtual:
                # Defer admission to a same-instant event: simultaneous
                # arrivals (a burst, a busy Poisson tick) all enqueue
                # before the first admission decision, so a wave admits
                # its full width and a continuous burst fills every
                # in-flight slot before any of their ops dispatch.
                schedule_pump = not self._pump_scheduled
                self._pump_scheduled = True
        if not self._virtual:
            self._pump()
        elif schedule_pump:
            self._engine.schedule(self._engine.now, self._scheduled_pump)

    def _scheduled_pump(self) -> None:
        with self._lock:
            self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        """Admit queued requests while admission control allows it."""
        while True:
            with self._lock:
                if self._fatal is not None or not self._queue:
                    return
                if self.admission == "wave":
                    if self._in_flight > 0:
                        return
                    count = min(self.max_in_flight, len(self._queue))
                else:
                    if self._in_flight >= self.max_in_flight:
                        return
                    count = 1
                admitted = [self._queue.popleft() for _ in range(count)]
                self._in_flight += count
                self._note_queue_depth_locked()
            for ticket in admitted:
                # set admit_time before submission: a trivial root frame
                # may complete synchronously inside submit_root
                ticket.admit_time = self._engine.now
                feed_map, ticket.feed_map = ticket.feed_map, None
                self._engine.submit_root(
                    self._graph, ticket.fetches, feed_map,
                    (f"req{ticket.request_id}",),
                    lambda values, t=ticket: self._request_done(t, values))

    def _request_done(self, ticket: RequestTicket, values: list) -> None:
        ticket.complete_time = self._engine.now
        ticket.value = values[0] if ticket.single else values
        with self._cond:
            self._in_flight -= 1
            self._completed += 1
            self._outstanding.pop(ticket.request_id, None)
            self._engine.stats.note_ticket(ticket)
            ticket._finish()
            self._cond.notify_all()
        self._pump()

    def _on_engine_error(self, error: Exception) -> None:
        """Engine kernel failure: fail every request still outstanding."""
        with self._cond:
            if self._fatal is None:
                self._fatal = error
            for ticket in self._outstanding.values():
                if not ticket.done:
                    ticket.error = error
                    ticket._finish()
            self._outstanding.clear()
            self._queue.clear()
            self._cond.notify_all()

    def _note_queue_depth_locked(self) -> None:
        """Feed queue occupancy to a queue-aware flush policy, if any."""
        policy = getattr(self._engine, "batch_policy", None)
        note = getattr(policy, "note_queue_depth", None)
        if note is not None:
            cap = self.queue_cap or 4 * self.max_in_flight
            note(len(self._queue), cap)

    def _wait_for(self, ticket: RequestTicket,
                  timeout: Optional[float]) -> None:
        if self._virtual:
            try:
                self._engine.drain()
            except Exception:
                # the drain error listener already failed the tickets;
                # result() surfaces this ticket's recorded error
                if not ticket.done:
                    raise
            return
        ticket._done.wait(timeout)
