"""Streaming request server over the recursive engines (continuous batching).

The paper's recursive model makes serving "just" many concurrent root
``InvokeOp`` instances — but driving them in rigid *waves* (admit N
requests, wait for all N, admit the next N) starves the coalescer at
every wave tail: as the last stragglers of a wave finish, the ready queue
empties out and fused batch widths collapse exactly when new requests are
already waiting.  :class:`RecursiveServer` replaces the wave driver with
the standard serving-systems fix, **continuous batching**: requests are
admitted into an engine that is already executing, so a fresh root
instance's operations join the live ready queue and fuse with in-flight
requests' work immediately.

On top of continuous admission the server is **SLO-aware**:

* requests carry an optional ``deadline`` (absolute engine time) or
  ``timeout`` (relative), a ``priority`` and a ``tenant``;
* admission order is earliest-deadline-first (``order="edf"``, the
  default — with no deadlines or priorities it degrades to exact FIFO
  by submission order) inside per-tenant lanes served by weighted fair
  queueing (virtual-time WFQ over ``tenant_weights``); ``order="fifo"``
  keeps the blind baseline the benchmarks compare against;
* overload is shed by *predicted cost* (``shedding="cost"``): each
  request's engine cost is estimated at arrival from its root
  :class:`~repro.runtime.plan.FramePlan` op counts
  (:meth:`~repro.runtime.cost_model.CostModel.plan_cost`), scaled by
  the caller's ``size_hint`` (e.g. tree nodes) and an EWMA calibration
  from observed completions — a request whose deadline is infeasible
  given the predicted backlog, or that would push the queued cost past
  ``queue_cost_cap``, is rejected up front instead of timing out after
  consuming resources.  ``shedding="cap"`` keeps the blind queue-depth
  cap;
* enforced deadlines (``enforce_deadlines=True``) *cancel* requests
  that miss them — queued requests are dropped, in-flight requests have
  their root frame retired in the scheduler core
  (:meth:`~repro.runtime.scheduler.SchedulerCore.cancel_root`): ready
  ops are skipped, pending coalescer-bucket members evicted, and the
  tree quiesces without producing further work, on all three executor
  backends.  :meth:`RequestTicket.cancel` gives clients the same lever.

Components:

* :class:`RequestTicket` — the per-request completion future.  Carries
  the admission timeline (``arrival_time`` → ``admit_time`` →
  ``complete_time``) from which time-in-queue and time-in-engine derive.
* :class:`RecursiveServer` — request queue + admission control.  At most
  ``max_in_flight`` root instances execute concurrently; waiting
  requests are bounded by ``queue_cap`` (depth) or ``queue_cost_cap``
  (predicted engine seconds) — beyond that, arrivals are rejected (the
  backpressure signal).
* :exc:`ServerOverloaded` / :exc:`RequestCancelled` /
  :exc:`DeadlineExceeded` — raised from the ticket's ``result()``.

The serving-admission state machine (arrive → queue/shed → admit →
complete/cancel) and the full lock-ordering rules between server,
scheduler core and executors are documented in ARCHITECTURE.md.  The
short form of the lock discipline: completions and cancellations enter
server code *under the engine's master lock*, so the server never holds
its own lock while calling into engine-side code — admission decisions,
policy notifications and frame cancellations are snapshotted under the
server lock and executed after releasing it.

The server runs on any registered executor through the shared
incremental-admission API (``begin_serving`` / ``submit_root`` /
``cancel_root`` / ``drain`` / ``end_serving``):

* **event engine** — the whole serving session is simulated in virtual
  time.  Arrivals are scheduled with ``submit(..., at=t)``; admission
  decisions, deadline expiries and completions happen inside the event
  loop at the proper virtual instants, and ``drain()`` runs the
  simulation to exhaustion.  Fully deterministic: a fixed request
  stream yields bit-identical results *and* identical virtual-time
  latencies run over run.  (Enforced deadlines post one simulation
  event per deadline-carrying request; an expiry after completion is a
  no-op.)
* **wall-clock engines** — ``submit`` may be called from any thread
  while kernels execute; deadlines are enforced by daemon timers;
  ``drain()`` blocks until the queue and the engine are empty.

If the engine batches with a policy exposing ``note_queue_depth`` /
``note_deadline_slack`` (the
:class:`~repro.runtime.batching.QueueAwareBatchPolicy`), the server
reports queue occupancy and the most urgent queued deadline's slack on
every enqueue/admit, so flush timeouts tighten when the queue is
shallow or a deadline looms and widen under load.

Per-request values are **bit-identical** to a one-shot ``Session.run``
of the same fetches: admission changes only *when* operations execute,
never what they compute (the micro-batching scatter-back guarantee) —
and cancelling requests does not perturb surviving requests' values.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Optional

from repro.graph.tensor import Tensor

from .plan import plan_for_fetches
from .stats import RunStats

__all__ = ["RecursiveServer", "RequestTicket", "ServerOverloaded",
           "RequestCancelled", "DeadlineExceeded"]

_INF = float("inf")

#: EWMA smoothing for the observed/predicted cost calibration ratio
_CALIBRATION_ALPHA = 0.2


class ServerOverloaded(RuntimeError):
    """A request was shed at admission (queue cap or predicted cost)."""


class RequestCancelled(RuntimeError):
    """A request was cancelled by the client before completing."""


class DeadlineExceeded(RuntimeError):
    """A request was dropped by deadline enforcement."""


class RequestTicket:
    """Completion future of one submitted request.

    Times are engine-clock seconds (virtual under the event engine,
    wall-clock under the threaded engines):

    * ``arrival_time`` — the request entered the server queue;
    * ``admit_time`` — it was admitted into the engine as a root instance;
    * ``complete_time`` — its root frame finished.

    ``queue_time`` / ``engine_time`` / ``latency`` derive from those;
    ``value`` holds the fetch results (matching the structure passed to
    ``submit``), or ``error`` the failure.  ``deadline``, ``priority``,
    ``tenant`` and ``predicted_cost`` echo the admission metadata;
    ``rejected`` / ``cancelled`` / ``timed_out`` say how a request that
    produced no value left the server (see :attr:`status`).
    """

    __slots__ = ("request_id", "fetches", "feed_map", "single",
                 "arrival_time", "admit_time", "complete_time", "value",
                 "error", "rejected", "cancelled", "timed_out", "deadline",
                 "priority", "tenant", "size_hint", "predicted_cost",
                 "shape_profile", "frame", "_base_cost", "_rel_timeout",
                 "_admitted", "_cancel_requested", "_queued", "_dequeued",
                 "_timer", "_server", "_done")

    def __init__(self, request_id: int, fetches: list, feed_map: dict,
                 single: bool, server: "RecursiveServer"):
        self.request_id = request_id
        self.fetches = fetches
        self.feed_map = feed_map
        self.single = single
        self.arrival_time: Optional[float] = None
        self.admit_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.value: Any = None
        self.error: Optional[Exception] = None
        self.rejected = False
        self.cancelled = False
        self.timed_out = False
        self.deadline: Optional[float] = None
        self.priority = 0
        self.tenant: Optional[str] = None
        self.size_hint = 1
        self.predicted_cost = 0.0
        #: per-call-site tree shapes routing this request through the
        #: compiled level-plan fast path (None: dynamic path)
        self.shape_profile = None
        self._base_cost = 0.0
        #: the admitted root Frame (set under the server lock after
        #: submit_root returns; the cancellation handle)
        self.frame = None
        self._rel_timeout: Optional[float] = None
        self._admitted = False
        self._cancel_requested: Optional[str] = None
        self._queued = False
        self._dequeued = False
        self._timer: Optional[threading.Timer] = None
        self._server = server
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def status(self) -> str:
        """``submitted``/``queued``/``running`` while pending, then one
        of ``done``, ``failed``, ``rejected``, ``cancelled``,
        ``timed_out``."""
        if not self._done.is_set():
            if self._admitted:
                return "running"
            return "queued" if self._queued else "submitted"
        if self.rejected:
            return "rejected"
        if self.timed_out:
            return "timed_out"
        if self.cancelled:
            return "cancelled"
        return "done" if self.error is None else "failed"

    @property
    def queue_time(self) -> Optional[float]:
        """Seconds spent waiting for admission (arrival -> admit)."""
        if self.arrival_time is None or self.admit_time is None:
            return None
        return self.admit_time - self.arrival_time

    @property
    def engine_time(self) -> Optional[float]:
        """Seconds spent executing in the engine (admit -> complete)."""
        if self.admit_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.admit_time

    @property
    def latency(self) -> Optional[float]:
        """End-to-end seconds (arrival -> complete)."""
        if self.arrival_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.arrival_time

    def cancel(self) -> bool:
        """Cancel this request; returns True when the cancellation won.

        A queued request is dropped immediately; an in-flight request's
        root frame is retired in the scheduler core (its remaining work
        is skipped and its pending batch-bucket members evicted).
        Returns False when the request already finished — a completion
        and a cancellation race atomically, exactly one wins.  A
        cancelled ticket's ``result()`` raises :exc:`RequestCancelled`.
        """
        return self._server._cancel(self)

    def result(self, timeout: Optional[float] = None):
        """Block until this request completes; return (or raise) it.

        On the event engine an unfinished ticket triggers a ``drain()``
        of the server — virtual time cannot pass without running the
        simulation, so a ``timeout`` is rejected there (ValueError).
        """
        if not self._done.is_set():
            self._server._wait_for(self, timeout)
        if not self._done.is_set():
            raise TimeoutError(
                f"request {self.request_id} not complete after {timeout}s")
        if self.error is not None:
            raise self.error
        return self.value

    def _finish(self) -> None:
        timer, self._timer = self._timer, None
        if timer is not None:
            timer.cancel()
        self._done.set()


class _TenantLane:
    """One tenant's pending-request heap plus its WFQ virtual time."""

    __slots__ = ("heap", "vtime", "weight")

    def __init__(self, weight: float, vtime: float):
        self.heap: list = []
        self.vtime = vtime
        self.weight = weight


class _RequestQueue:
    """The server's waiting room: per-tenant EDF/FIFO heaps under
    weighted fair queueing.

    * within a tenant, requests order by ``(-priority, deadline,
      submission id)`` (``order="edf"``) or submission id alone
      (``order="fifo"``) — so with no deadlines or priorities EDF *is*
      FIFO;
    * across tenants, virtual-time WFQ: serving a request advances its
      tenant's virtual time by ``predicted_cost / weight``, and the
      lane with the least virtual time is served next, so over time each
      tenant's share of served cost is proportional to its weight.  A
      tenant going idle forfeits unused share (its lane is dropped and
      rejoins at the current virtual clock).

    Cancelled/timed-out tickets are removed lazily: ``discard`` marks
    the ticket and fixes the counters, the heap entry is skipped when it
    surfaces.  ``total_cost`` tracks the predicted engine cost of the
    live queue for the cost-shedding admission check.
    """

    __slots__ = ("order", "_weights", "_lanes", "_len", "total_cost",
                 "_vclock")

    def __init__(self, order: str, tenant_weights: Optional[dict] = None):
        self.order = order
        self._weights = dict(tenant_weights or {})
        self._lanes: dict = {}
        self._len = 0
        self.total_cost = 0.0
        self._vclock = 0.0

    def _key(self, ticket: RequestTicket) -> tuple:
        if self.order == "edf":
            deadline = ticket.deadline
            return (-ticket.priority,
                    deadline if deadline is not None else _INF,
                    ticket.request_id)
        return (ticket.request_id,)

    def push(self, ticket: RequestTicket) -> None:
        lane = self._lanes.get(ticket.tenant)
        if lane is None:
            weight = float(self._weights.get(ticket.tenant, 1.0))
            lane = self._lanes[ticket.tenant] = _TenantLane(weight,
                                                            self._vclock)
        heapq.heappush(lane.heap, (self._key(ticket), ticket))
        ticket._queued = True
        self._len += 1
        self.total_cost += ticket.predicted_cost

    @staticmethod
    def _live_head(lane: _TenantLane) -> Optional[RequestTicket]:
        heap = lane.heap
        while heap and heap[0][1]._dequeued:
            heapq.heappop(heap)
        return heap[0][1] if heap else None

    def pop(self) -> Optional[RequestTicket]:
        best_name = best_lane = None
        for name, lane in self._lanes.items():
            if self._live_head(lane) is None:
                continue
            if best_lane is None or lane.vtime < best_lane.vtime:
                best_name, best_lane = name, lane
        if best_lane is None:
            return None
        ticket = heapq.heappop(best_lane.heap)[1]
        ticket._queued = False
        self._len -= 1
        self.total_cost -= ticket.predicted_cost
        self._vclock = best_lane.vtime
        best_lane.vtime += (max(ticket.predicted_cost, 1e-12)
                            / best_lane.weight)
        if not best_lane.heap:
            del self._lanes[best_name]
        return ticket

    def discard(self, ticket: RequestTicket) -> None:
        """Lazily remove a queued ticket (cancellation/timeout)."""
        if not ticket._queued:
            return
        ticket._queued = False
        ticket._dequeued = True
        self._len -= 1
        self.total_cost -= ticket.predicted_cost

    def nearest_deadline(self) -> Optional[float]:
        """The tightest deadline among the lane heads (a flush-pressure
        hint for the batch policy; with mixed priorities a deadline
        deeper in a lane may be tighter — close enough for a timer)."""
        best = None
        for lane in self._lanes.values():
            head = self._live_head(lane)
            if head is not None and head.deadline is not None:
                if best is None or head.deadline < best:
                    best = head.deadline
        return best

    def clear(self) -> None:
        self._lanes.clear()
        self._len = 0
        self.total_cost = 0.0

    def __len__(self) -> int:
        return self._len


class RecursiveServer:
    """A streaming request server over one :class:`~repro.runtime
    .session.Session`'s engine.

    Args:
        session: the session whose graph/engine serve the requests.  The
            server takes over the engine (persistent serving mode); using
            ``session.run`` concurrently is unsupported.
        max_in_flight: admission cap — at most this many root instances
            execute concurrently in the engine.
        queue_cap: backpressure cap — at most this many requests may wait
            in the server queue *beyond the free in-flight slots*;
            arrivals past that are *rejected* (the ticket's ``result()``
            raises :exc:`ServerOverloaded`).  ``None`` means unbounded.
        admission: ``"continuous"`` (default) admits a queued request the
            moment an in-flight slot frees; ``"wave"`` admits
            ``max_in_flight`` requests at a time and only when the engine
            is completely empty — the legacy wave-synchronized behaviour,
            kept as the comparison baseline.
        keep_tickets: retain every completed ticket on the server (the
            benchmarking drivers read them back via :attr:`tickets`).
            Pass ``False`` for a long-lived server so completed requests
            — their feeds and result values — are dropped once their
            owners hold the only reference; per-request *latency samples*
            still accrue in :attr:`stats` (bounded by its reservoir).
        order: ``"edf"`` (default) — earliest-deadline-first within
            priority classes; degrades to exact FIFO when no request
            carries a deadline or priority.  ``"fifo"`` — blind
            submission order, the benchmark baseline.
        shedding: ``"cap"`` (default) — reject arrivals by queue depth
            (``queue_cap``).  ``"cost"`` — reject by *predicted* cost:
            a request is shed when its deadline is infeasible against
            the predicted backlog, or when admitting it would push the
            queued predicted cost past ``queue_cost_cap``.  A request
            that would be admitted immediately (a free in-flight slot,
            no queue) is never shed by the cost cap.
        queue_cost_cap: bound on the live queue's total predicted engine
            cost (seconds) under ``shedding="cost"``; ``None`` disables
            the cost cap (feasibility shedding still applies).
        capacity_factor: the backlog-drain rate assumed by the
            feasibility check — roughly "how many predicted-cost seconds
            complete per engine second"; defaults to ``max_in_flight``
            (requests served concurrently).  The EWMA cost calibration
            (observed ``engine_time`` / predicted) absorbs constant
            estimation error over time; see :attr:`cost_scale`.
        tenant_weights: WFQ weight per tenant name (default 1.0 each);
            tenants not listed get weight 1.0.
        enforce_deadlines: when True (default), a request that reaches
            its deadline is dropped — timed out in the queue, or
            *cancelled mid-flight* (its root frame retired in the
            scheduler core).  When False, deadlines only order admission
            and score goodput.
    """

    def __init__(self, session, *, max_in_flight: int = 16,
                 queue_cap: Optional[int] = None,
                 admission: str = "continuous", keep_tickets: bool = True,
                 order: str = "edf", shedding: str = "cap",
                 queue_cost_cap: Optional[float] = None,
                 capacity_factor: Optional[float] = None,
                 tenant_weights: Optional[dict] = None,
                 enforce_deadlines: bool = True):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if queue_cap is not None and queue_cap < 1:
            raise ValueError("queue_cap must be >= 1 (or None for unbounded)")
        if admission not in ("continuous", "wave"):
            raise ValueError(f"unknown admission mode {admission!r}; "
                             "expected \"continuous\" or \"wave\"")
        if order not in ("edf", "fifo"):
            raise ValueError(f"unknown order {order!r}; "
                             "expected \"edf\" or \"fifo\"")
        if shedding not in ("cap", "cost"):
            raise ValueError(f"unknown shedding mode {shedding!r}; "
                             "expected \"cap\" or \"cost\"")
        if queue_cost_cap is not None and queue_cost_cap <= 0:
            raise ValueError("queue_cost_cap must be positive (or None)")
        if capacity_factor is not None and capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive (or None)")
        self._session = session
        self._engine = session._engine
        self._graph = session.graph
        self._virtual = bool(getattr(self._engine, "virtual_clock", False))
        self.max_in_flight = max_in_flight
        self.queue_cap = queue_cap
        self.admission = admission
        self.keep_tickets = keep_tickets
        self.order = order
        self.shedding = shedding
        self.queue_cost_cap = queue_cost_cap
        self.capacity_factor = (float(capacity_factor)
                                if capacity_factor is not None
                                else float(max_in_flight))
        self.enforce_deadlines = enforce_deadlines
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue = _RequestQueue(order, tenant_weights)
        self._in_flight = 0
        self._inflight_cost = 0.0
        self._completed = 0
        self._rejected = 0
        self._cancelled = 0
        self._timed_out = 0
        #: submits registered but not yet arrived (closes the
        #: submit/close race window: drain waits for these too)
        self._arriving = 0
        self._next_id = itertools.count()
        self._tickets: list[RequestTicket] = []
        self._outstanding: dict[int, RequestTicket] = {}
        self._pump_scheduled = False
        self._fatal: Optional[Exception] = None
        self._closed = False
        #: per-root-plan static cost (plan -> engine seconds per frame)
        self._plan_costs: dict = {}
        #: EWMA calibration: observed engine_time / predicted cost
        self._cost_scale = 1.0
        policy = getattr(self._engine, "batch_policy", None)
        self._policy_note_depth = getattr(policy, "note_queue_depth", None)
        self._policy_note_slack = getattr(policy, "note_deadline_slack",
                                          None)
        session.runtime.cache.clear()
        self._engine.begin_serving(error_listener=self._on_engine_error)

    # -- introspection -------------------------------------------------------

    @property
    def stats(self) -> RunStats:
        """Session-cumulative engine stats (includes request latencies)."""
        return self._engine.stats

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def cancelled(self) -> int:
        with self._lock:
            return self._cancelled

    @property
    def timed_out(self) -> int:
        with self._lock:
            return self._timed_out

    @property
    def cost_scale(self) -> float:
        """Current EWMA cost-calibration factor (1.0 until the first
        completion feeds back an observed/predicted ratio)."""
        with self._lock:
            return self._cost_scale

    @property
    def tickets(self) -> list:
        """All tickets in submission order (served and rejected)."""
        with self._lock:
            return list(self._tickets)

    # -- submission ----------------------------------------------------------

    def submit(self, fetches, feed_dict: Optional[dict] = None, *,
               at: Optional[float] = None, deadline: Optional[float] = None,
               timeout: Optional[float] = None, priority: int = 0,
               tenant: Optional[str] = None,
               size_hint: Optional[int] = None,
               shape_profile=None) -> RequestTicket:
        """Enqueue one request; returns its completion future.

        ``fetches``/``feed_dict`` follow ``Session.run`` semantics
        (a Tensor or a sequence of Tensors, placeholder feeds).  ``at``
        (event engine only) schedules the *arrival* at an absolute
        virtual time — the open-loop arrival hook; without it the request
        arrives at the engine's current clock.

        SLO metadata (all optional):

        * ``deadline`` — absolute engine-clock completion deadline;
          ``timeout`` — the same, relative to the arrival instant
          (mutually exclusive).  Deadlines order EDF admission, score
          goodput, and (``enforce_deadlines``) drop the request when
          reached.
        * ``priority`` — higher admits first regardless of deadline
          (EDF order applies within a priority class).
        * ``tenant`` — fair-queueing lane (see ``tenant_weights``).
        * ``size_hint`` — expected number of recursive frames (e.g.
          ``tree.num_nodes``); multiplies the root plan's static cost in
          the admission-time prediction.
        * ``shape_profile`` — per-call-site tree shapes (in op-id
          order, e.g. ``TreeBatch.profiles``): eligible requests take
          the compiled level-plan fast path, and concurrent
          same-profile requests merge into one wavefront; ineligible
          ones fall back to the dynamic path transparently.  Profiles
          with ``None`` holes — or any profile when the session sets
          ``level_canon_depth`` — admit a dynamic root spine that
          launches compiled sub-sweeps per determined subtree, so
          heavy-tailed shape streams share a small canonical plan set
          (``RunStats.level_plan_cache_hit_rate``).
        """
        if deadline is not None and timeout is not None:
            raise ValueError("pass deadline= (absolute) or timeout= "
                             "(relative), not both")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        single = isinstance(fetches, Tensor)
        fetch_list = [fetches] if single else list(fetches)
        self._session._check_fetches(fetch_list)
        feed_map = self._session._build_feed_map(feed_dict or {})
        ticket = RequestTicket(next(self._next_id), fetch_list, feed_map,
                               single, self)
        ticket.deadline = deadline
        ticket._rel_timeout = timeout
        ticket.priority = priority
        ticket.tenant = tenant
        ticket.size_hint = max(1, int(size_hint)) if size_hint else 1
        ticket.shape_profile = shape_profile
        ticket._base_cost = self._base_cost(fetch_list, ticket.size_hint)
        ticket.predicted_cost = ticket._base_cost * self._cost_scale
        with self._lock:
            # closed-check under the lock: close() flips the flag under
            # the same lock, so a submit that passes here is registered
            # (_arriving) before close's drain reads the counters
            if self._closed:
                raise RuntimeError("server is closed")
            if self.keep_tickets:
                self._tickets.append(ticket)
            self._outstanding[ticket.request_id] = ticket
            self._arriving += 1
        if at is not None:
            if not self._virtual:
                raise ValueError("scheduled arrivals (at=...) require the "
                                 "event engine; wall-clock backends serve "
                                 "in real time")
            self._engine.schedule(at, lambda: self._arrive(ticket))
        else:
            self._arrive(ticket)
        return ticket

    def drain(self) -> RunStats:
        """Complete everything submitted so far; return cumulative stats.

        Event engine: runs the simulation (arrivals, admissions,
        execution, completions) to exhaustion.  Wall-clock engines:
        block until pending arrivals, the request queue and the engine
        are all empty.  Raises the engine error if the session failed.
        """
        if self._virtual:
            stats = self._engine.drain()
            if self._fatal is not None:
                raise self._fatal
            return stats
        with self._cond:
            while self._fatal is None and (self._arriving or self._queue
                                           or self._in_flight):
                # short waits keep the main thread responsive to the
                # SIGALRM test watchdog
                self._cond.wait(0.05)
            if self._fatal is not None:
                raise self._fatal
        return self._engine.stats

    def close(self) -> None:
        """Stop accepting requests, drain, and end the serving session.

        The closed flag flips under the server lock *before* the drain,
        so a racing ``submit`` either registered first (its request is
        drained normally) or raises cleanly — it can never slip into a
        torn-down engine.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            if self._fatal is None:
                self.drain()
        finally:
            self._engine.end_serving()

    def __enter__(self) -> "RecursiveServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- internals -----------------------------------------------------------
    #
    # Lock discipline (wall-clock engines): completions arrive under the
    # ENGINE master lock (frame.on_complete) and then take the server
    # lock, so the server must never hold its own lock while acquiring
    # the engine lock — _pump snapshots its admission decision under the
    # server lock, releases it, and only then calls engine.submit_root;
    # batch-policy notifications are likewise snapshotted under the lock
    # and delivered outside it; cancel paths call engine.cancel_root
    # before taking the server lock.  See ARCHITECTURE.md.

    def _base_cost(self, fetch_list: list, size_hint: int) -> float:
        """Uncalibrated engine-cost estimate: root-plan op costs scaled
        by the expected frame count.  ``predicted_cost`` multiplies this
        by the EWMA calibration (observed ``engine_time`` per unit of
        base) so constant model error washes out after a few dozen
        completions."""
        plan = plan_for_fetches(self._graph, {t.op for t in fetch_list})
        base = self._plan_costs.get(plan)
        if base is None:
            base = self._plan_costs[plan] = \
                self._engine.cost_model.plan_cost(plan)
        return base * size_hint

    def _arrive(self, ticket: RequestTicket) -> None:
        ticket.arrival_time = self._engine.now
        if ticket._rel_timeout is not None:
            ticket.deadline = ticket.arrival_time + ticket._rel_timeout
        schedule_pump = False
        snapshot = None
        with self._cond:
            self._arriving -= 1
            if ticket.done:
                # cancelled before its scheduled arrival fired
                self._cond.notify_all()
                return
            if self._fatal is not None:
                ticket.error = self._fatal
                self._outstanding.pop(ticket.request_id, None)
                ticket._finish()
                self._cond.notify_all()
                return
            reason = self._shed_reason_locked(ticket)
            if reason is not None:
                ticket.rejected = True
                ticket.error = ServerOverloaded(
                    f"request {ticket.request_id} rejected: {reason}")
                self._rejected += 1
                self._outstanding.pop(ticket.request_id, None)
                self._engine.stats.note_rejected()
                ticket._finish()
                self._cond.notify_all()
                return
            self._queue.push(ticket)
            snapshot = self._policy_snapshot_locked()
            if self._virtual:
                # Defer admission to a same-instant event: simultaneous
                # arrivals (a burst, a busy Poisson tick) all enqueue
                # before the first admission decision, so a wave admits
                # its full width and a continuous burst fills every
                # in-flight slot before any of their ops dispatch.
                schedule_pump = not self._pump_scheduled
                self._pump_scheduled = True
        self._notify_policy(snapshot)
        self._arm_deadline(ticket)
        if not self._virtual:
            self._pump()
        elif schedule_pump:
            self._engine.schedule(self._engine.now, self._scheduled_pump)

    def _shed_reason_locked(self,
                            ticket: RequestTicket) -> Optional[str]:
        """Admission control: why this arrival must be shed (or None).

        Both modes extend their cap by the free in-flight slots, so an
        idle server never rejects a request it could start immediately.
        """
        free_slots = max(0, self.max_in_flight - self._in_flight)
        if self.shedding == "cap":
            if (self.queue_cap is not None
                    and len(self._queue) >= self.queue_cap + free_slots):
                return f"queue at cap ({self.queue_cap})"
            return None
        # cost-predicted shedding
        backlog = self._queue.total_cost + self._inflight_cost
        if ticket.deadline is not None:
            # feasibility: optimistic completion estimate assuming the
            # predicted backlog drains at capacity_factor ahead of it
            finish = (self._engine.now + backlog / self.capacity_factor
                      + ticket.predicted_cost)
            if finish > ticket.deadline:
                return (f"deadline infeasible (predicted finish "
                        f"{finish:.6f} > deadline {ticket.deadline:.6f})")
        if (self.queue_cost_cap is not None
                and len(self._queue) >= free_slots
                and self._queue.total_cost + ticket.predicted_cost
                > self.queue_cost_cap):
            return (f"queued predicted cost at cap "
                    f"({self.queue_cost_cap:.6f}s)")
        return None

    def _arm_deadline(self, ticket: RequestTicket) -> None:
        if not self.enforce_deadlines or ticket.deadline is None \
                or ticket.done:
            return
        if self._virtual:
            self._engine.schedule(ticket.deadline,
                                  lambda: self._deadline_expired(ticket))
        else:
            delay = max(0.0, ticket.deadline - self._engine.now)
            timer = threading.Timer(delay, self._deadline_expired, (ticket,))
            timer.daemon = True
            ticket._timer = timer
            timer.start()

    def _scheduled_pump(self) -> None:
        with self._lock:
            self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        """Admit queued requests while admission control allows it."""
        while True:
            snapshot = None
            with self._lock:
                if self._fatal is not None or not len(self._queue):
                    return
                if self.admission == "wave":
                    if self._in_flight > 0:
                        return
                    count = min(self.max_in_flight, len(self._queue))
                else:
                    if self._in_flight >= self.max_in_flight:
                        return
                    count = 1
                admitted = []
                for _ in range(count):
                    ticket = self._queue.pop()
                    if ticket is None:
                        break
                    ticket._admitted = True
                    self._inflight_cost += ticket.predicted_cost
                    admitted.append(ticket)
                if not admitted:
                    return
                self._in_flight += len(admitted)
                snapshot = self._policy_snapshot_locked()
            self._notify_policy(snapshot)
            for ticket in admitted:
                # set admit_time before submission: a trivial root frame
                # may complete synchronously inside submit_root
                ticket.admit_time = self._engine.now
                feed_map, ticket.feed_map = ticket.feed_map, None
                # pass the kwarg only when set: keeps the positional call
                # shape for executors (and test doubles) that predate it
                kwargs = ({"shape_profile": ticket.shape_profile}
                          if ticket.shape_profile is not None else {})
                frame = self._engine.submit_root(
                    self._graph, ticket.fetches, feed_map,
                    (f"req{ticket.request_id}",),
                    lambda values, t=ticket: self._request_done(t, values),
                    **kwargs)
                with self._lock:
                    ticket.frame = frame
                    pending = ticket._cancel_requested
                if pending is not None:
                    # a cancel/expiry landed between admission and the
                    # frame handle becoming available: honor it now
                    self._finish_inflight_cancel(
                        ticket, frame, timed_out=(pending == "timeout"))

    def _request_done(self, ticket: RequestTicket, values: list) -> None:
        ticket.complete_time = self._engine.now
        ticket.value = values[0] if ticket.single else values
        with self._cond:
            self._in_flight -= 1
            self._inflight_cost -= ticket.predicted_cost
            self._completed += 1
            self._outstanding.pop(ticket.request_id, None)
            self._engine.stats.note_ticket(ticket)
            self._calibrate_locked(ticket)
            ticket._finish()
            self._cond.notify_all()
        self._pump()

    def _calibrate_locked(self, ticket: RequestTicket) -> None:
        """Fold one completion into the EWMA cost calibration.

        The observation is the *uncalibrated* ratio (observed engine
        time over base estimate), so the EWMA converges to the mean
        ratio instead of compounding its own previous corrections — a
        multiplicative self-referencing update is unstable under
        heavy-tailed tree sizes.
        """
        engine_time = ticket.engine_time
        if not engine_time or ticket._base_cost <= 0.0:
            return
        ratio = engine_time / ticket._base_cost
        ratio = min(1e4, max(1e-4, ratio))
        self._cost_scale = ((1.0 - _CALIBRATION_ALPHA) * self._cost_scale
                            + _CALIBRATION_ALPHA * ratio)

    # -- cancellation / deadlines --------------------------------------------

    def _cancel(self, ticket: RequestTicket) -> bool:
        with self._cond:
            if ticket.done or self._fatal is not None:
                return False
            if not ticket._admitted:
                # queued (or not yet arrived): drop it right here
                self._queue.discard(ticket)
                self._finish_dropped_locked(ticket, timed_out=False)
                return True
            frame = ticket.frame
            if frame is None:
                # admitted but submit_root has not returned the frame
                # handle yet: _pump honors the request when it does
                ticket._cancel_requested = "cancel"
                return True
        return self._finish_inflight_cancel(ticket, frame, timed_out=False)

    def _deadline_expired(self, ticket: RequestTicket) -> None:
        """Deadline enforcement (event-loop callback or daemon timer)."""
        with self._cond:
            if ticket.done or self._fatal is not None:
                return
            if not ticket._admitted:
                self._queue.discard(ticket)
                self._finish_dropped_locked(ticket, timed_out=True)
                return
            frame = ticket.frame
            if frame is None:
                ticket._cancel_requested = "timeout"
                return
        self._finish_inflight_cancel(ticket, frame, timed_out=True)

    def _finish_inflight_cancel(self, ticket: RequestTicket, frame,
                                timed_out: bool) -> bool:
        """Retire an in-flight request's root frame; False if completion
        won the race (engine lock decides, see cancel_root)."""
        if not self._engine.cancel_root(frame):
            return False
        with self._cond:
            if ticket.done:
                return False
            self._in_flight -= 1
            self._inflight_cost -= ticket.predicted_cost
            self._finish_dropped_locked(ticket, timed_out=timed_out)
        self._pump()
        return True

    def _finish_dropped_locked(self, ticket: RequestTicket,
                               timed_out: bool) -> None:
        """Finish a ticket that will produce no value (under the lock)."""
        if timed_out:
            ticket.timed_out = True
            self._timed_out += 1
            self._engine.stats.note_timed_out()
            ticket.error = DeadlineExceeded(
                f"request {ticket.request_id} missed its deadline "
                f"(deadline {ticket.deadline:.6f}, "
                f"now {self._engine.now:.6f})")
        else:
            ticket.cancelled = True
            self._cancelled += 1
            self._engine.stats.note_cancelled()
            ticket.error = RequestCancelled(
                f"request {ticket.request_id} cancelled")
        self._outstanding.pop(ticket.request_id, None)
        ticket._finish()
        self._cond.notify_all()

    # -- engine-side notifications -------------------------------------------

    def _on_engine_error(self, error: Exception) -> None:
        """Engine kernel failure: fail every request still outstanding."""
        with self._cond:
            if self._fatal is None:
                self._fatal = error
            for ticket in self._outstanding.values():
                if not ticket.done:
                    ticket.error = error
                    ticket._finish()
            self._outstanding.clear()
            self._queue.clear()
            self._cond.notify_all()

    def _policy_snapshot_locked(self) -> Optional[tuple]:
        """Snapshot queue state for the batch policy under the lock;
        the notification itself happens outside it (lock discipline)."""
        if self._policy_note_depth is None \
                and self._policy_note_slack is None:
            return None
        slack = None
        if self._policy_note_slack is not None:
            nearest = self._queue.nearest_deadline()
            if nearest is not None:
                slack = nearest - self._engine.now
        return (len(self._queue), slack)

    def _notify_policy(self, snapshot: Optional[tuple]) -> None:
        """Feed queue occupancy / deadline pressure to a queue-aware
        flush policy — outside the server lock: policy state lives on
        the engine side of the lock-ordering fence."""
        if snapshot is None:
            return
        depth, slack = snapshot
        if self._policy_note_depth is not None:
            cap = self.queue_cap or 4 * self.max_in_flight
            self._policy_note_depth(depth, cap)
        if self._policy_note_slack is not None:
            self._policy_note_slack(slack)

    def _wait_for(self, ticket: RequestTicket,
                  timeout: Optional[float]) -> None:
        if self._virtual:
            if timeout is not None:
                raise ValueError(
                    "result(timeout=...) is unsupported on the "
                    "virtual-clock event engine: virtual time only "
                    "advances by running the simulation, so a wall-clock "
                    "timeout cannot be honored — result() drains the "
                    "whole simulation instead.  Call result() without a "
                    "timeout, or submit(..., timeout=) to bound the "
                    "request in virtual time.")
            try:
                self._engine.drain()
            except Exception:
                # the drain error listener already failed the tickets;
                # result() surfaces this ticket's recorded error
                if not ticket.done:
                    raise
            return
        ticket._done.wait(timeout)
