"""Sessions and the runtime that hosts state.

A :class:`Runtime` owns everything that outlives a single graph execution:
the variable store, the gradient accumulators, and the backpropagation
value cache.  A :class:`Session` executes fetches against a graph with a
chosen engine configuration (worker count, cost model, scheduling policy,
training/inference mode).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.cache import ValueCache
from repro.graph import dtypes
from repro.graph.graph import Graph, get_default_graph
from repro.graph.tensor import Tensor

from .batching import AdaptiveBatchPolicy, BatchPolicy, resolve_batching
from .cost_model import CostModel, testbed_cpu
from .scheduler import resolve_executor
from .stats import RunStats
from .variables import GradientAccumulator, VariableStore

__all__ = ["Runtime", "Session", "default_runtime", "reset_default_runtime"]


class Runtime:
    """Holds variables, gradient accumulators and the backprop cache."""

    def __init__(self):
        self.variables = VariableStore()
        self.accumulators = GradientAccumulator()
        self.cache = ValueCache()
        self.trainables: list = []

    def register_trainable(self, variable) -> None:
        self.trainables.append(variable)

    def trainable_variables(self) -> list:
        return list(self.trainables)


_default_runtime: Optional[Runtime] = None


def default_runtime() -> Runtime:
    """The process-wide runtime used when none is passed explicitly."""
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = Runtime()
    return _default_runtime


def reset_default_runtime() -> Runtime:
    """Replace the default runtime (test isolation)."""
    global _default_runtime
    _default_runtime = Runtime()
    return _default_runtime


class Session:
    """Executes graphs: ``session.run(fetches, feed_dict)``.

    Args:
        graph: the graph to execute (defaults to the current default graph).
        runtime: state container (defaults to the process-wide runtime).
        num_workers: virtual worker threads (the paper's testbed used 36).
        cost_model: virtual-time cost model (defaults to the CPU testbed).
        record: training mode — record forward values of recursive frames
            into the backprop cache.  Runs that execute backward ops
            (InvokeGrad etc.) require ``record=True``.
        scheduler: "fifo" (paper default) or "depth" priority scheduling.
        engine: executor backend name, resolved through the executor
            registry (:mod:`repro.runtime.scheduler`): "event" for the
            deterministic virtual-time backend, "threaded" for the
            wall-clock thread-pool backend, "workerpool" for the
            centralized-master backend with a concurrent kernel pool —
            plus any backend registered via ``register_executor``.
        batching: fuse same-signature ready ops from concurrent frames
            into vectorized kernel calls (cross-instance dynamic
            micro-batching, :mod:`repro.runtime.batching`).  ``True``
            uses the fixed :class:`~repro.runtime.batching.BatchPolicy`;
            ``"adaptive"`` selects the per-signature
            :class:`~repro.runtime.batching.AdaptiveBatchPolicy`, whose
            tuned state persists across ``run`` calls.  Batching covers
            the training path too: backward frame spawns, gradient-body
            kernels and ``CacheLookup`` value-cache reads all coalesce.
            Values are bit-identical to unbatched execution.
        batch_policy: bucket capacity / flush policy when batching.
        memory_budget: soft cap (bytes) on estimated live scratch
            values; under pressure dispatch prefers finishing deep
            subtrees over breadth-first fan-out (reorders work, never
            sheds it).  Values stay bit-identical.
        track_live_bytes: maintain the live-bytes estimate (and its
            ``RunStats.peak_live_bytes`` peak) even without a budget.
        level_canon_depth: profile-canonicalization depth for the
            compiled level-plan tier (``None`` = one compiled plan per
            distinct shape profile).  With an integer ``d``, compiled
            plans are capped at subtrees of node depth <= ``d`` — deeper
            or partially-determined profiles run a dynamic root spine
            with compiled sub-sweeps per determined subtree, bounding
            the compile-cache footprint on heavy-tailed shape streams
            (``RunStats.level_plan_cache_hit_rate``).  Shorthand for
            setting the field on ``batch_policy``.
    """

    def __init__(self, graph: Optional[Graph] = None,
                 runtime: Optional[Runtime] = None, num_workers: int = 1,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", engine: str = "event",
                 max_depth: int = 5000, batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 memory_budget: Optional[int] = None,
                 track_live_bytes: bool = False,
                 level_canon_depth: Optional[int] = None):
        self.graph = graph or get_default_graph()
        self.runtime = runtime or default_runtime()
        if level_canon_depth is not None:
            if batch_policy is None:
                batch_policy = BatchPolicy(
                    level_canon_depth=level_canon_depth)
            else:
                batch_policy.level_canon_depth = level_canon_depth
                # revalidate: direct attribute set skips __post_init__
                if level_canon_depth < 1:
                    raise ValueError(
                        "level_canon_depth must be >= 1 (or None)")
        executor_cls = resolve_executor(engine)
        self._engine = executor_cls(self.runtime, num_workers=num_workers,
                                    cost_model=cost_model, record=record,
                                    scheduler=scheduler, max_depth=max_depth,
                                    batching=batching,
                                    batch_policy=batch_policy,
                                    memory_budget=memory_budget,
                                    track_live_bytes=track_live_bytes)
        self.last_stats: Optional[RunStats] = None

    def run(self, fetches, feed_dict: Optional[dict] = None,
            record: Optional[bool] = None, batching: Optional[bool] = None,
            shape_profile=None):
        """Execute the graph until ``fetches`` are produced.

        ``fetches`` may be a Tensor or a list/tuple of Tensors; the return
        value matches that structure.  ``feed_dict`` maps placeholder
        tensors to numpy-compatible values.  ``record`` and ``batching``
        override the session-level modes for this call onward.

        ``shape_profile`` — per-call-site tree shape signatures in
        op-id order (``TreeBatch.profiles`` for the tree models) —
        enables the compiled level-plan fast path
        (:mod:`repro.runtime.level_plan`): eligible roots execute as a
        fixed pre-bucketed wavefront schedule, bit-identical to the
        dynamic path; ineligible ones fall back transparently
        (``last_stats.level_plan_fallbacks``).  Profiles with ``None``
        holes (undetermined subtrees, e.g. behind a data-dependent
        ``cond``) — or any profile when the session sets
        ``level_canon_depth`` — run partially compiled: a dynamic root
        spine launches compiled sub-sweeps for each fully-determined
        subtree (``last_stats.level_plan_subtree_runs``).
        """
        single = isinstance(fetches, Tensor)
        fetch_list = [fetches] if single else list(fetches)
        self._check_fetches(fetch_list)
        feed_map = self._build_feed_map(feed_dict or {})
        if record is not None:
            self._engine.record = record
        if batching is not None:
            # keep an existing adaptive policy: its tuned per-signature
            # state persists across run calls
            current = (self._engine.batch_policy
                       if isinstance(self._engine.batch_policy,
                                     AdaptiveBatchPolicy) else None)
            self._engine.batching, policy = resolve_batching(batching,
                                                             current)
            if policy is not None:
                self._engine.batch_policy = policy
        self.runtime.cache.clear()
        if shape_profile is None:
            # keep the positional call shape for third-party executors
            # that predate the shape_profile keyword
            values, stats = self._engine.run(self.graph, fetch_list, feed_map)
        else:
            values, stats = self._engine.run(self.graph, fetch_list, feed_map,
                                             shape_profile=shape_profile)
        self.last_stats = stats
        return values[0] if single else values

    def serve(self, *, max_in_flight: int = 16,
              queue_cap: Optional[int] = None,
              admission: str = "continuous", keep_tickets: bool = True,
              order: str = "edf", shedding: str = "cap",
              queue_cost_cap: Optional[float] = None,
              capacity_factor: Optional[float] = None,
              tenant_weights: Optional[dict] = None,
              enforce_deadlines: bool = True):
        """Enter persistent serving mode; returns a
        :class:`~repro.runtime.server.RecursiveServer`.

        Where :meth:`run` executes one fixed fetch set to completion, a
        server keeps the engine alive and admits requests *into the
        running engine* (continuous batching): each ``server.submit``
        becomes a root instance whose operations join — and fuse with —
        the live ready queue.  ``max_in_flight`` caps concurrent root
        instances, ``queue_cap`` bounds the waiting queue (arrivals
        beyond it are rejected — backpressure), and ``admission`` selects
        continuous or legacy wave-synchronized admission.  Per-request
        values are bit-identical to :meth:`run` on the same fetches.

        SLO knobs (see :class:`~repro.runtime.server.RecursiveServer`):
        ``order`` picks EDF or FIFO admission, ``shedding`` picks
        queue-depth or cost-predicted load shedding (``queue_cost_cap``,
        ``capacity_factor``), ``tenant_weights`` configures weighted
        fair queueing across tenants, and ``enforce_deadlines`` cancels
        requests that miss their deadline — dropping them from the queue
        or unwinding their in-flight frames.

        The server owns the engine until ``server.close()``; interleaving
        ``session.run`` with an open server is unsupported.  Usable as a
        context manager::

            with session.serve(max_in_flight=8) as server:
                tickets = [server.submit(logits, feed) for feed in feeds]
                server.drain()
        """
        from .server import RecursiveServer
        return RecursiveServer(self, max_in_flight=max_in_flight,
                               queue_cap=queue_cap, admission=admission,
                               keep_tickets=keep_tickets, order=order,
                               shedding=shedding,
                               queue_cost_cap=queue_cost_cap,
                               capacity_factor=capacity_factor,
                               tenant_weights=tenant_weights,
                               enforce_deadlines=enforce_deadlines)

    def _check_fetches(self, fetch_list: Sequence[Tensor]) -> None:
        for t in fetch_list:
            if not isinstance(t, Tensor):
                raise TypeError(f"fetch {t!r} is not a Tensor")
            if t.graph is not self.graph:
                raise ValueError(
                    f"fetch {t.name} belongs to graph {t.graph.name}, "
                    f"session runs {self.graph.name}")

    def _build_feed_map(self, feed_dict: dict) -> dict[int, Any]:
        feed_map: dict[int, Any] = {}
        for key, value in feed_dict.items():
            if not isinstance(key, Tensor):
                raise TypeError(f"feed key {key!r} is not a Tensor")
            if key.graph is not self.graph:
                raise ValueError(
                    f"feed {key.name} belongs to a different graph")
            if key.op.op_type != "Placeholder":
                raise ValueError(f"can only feed placeholders, got "
                                 f"{key.op.op_type} {key.name}")
            feed_map[key.op.id] = dtypes.as_value(value, key.dtype)
        return feed_map
