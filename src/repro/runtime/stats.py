"""Execution statistics collected by the engines.

Besides per-op and per-batch accounting, :class:`RunStats` tracks
*per-request* latency for the serving path
(:mod:`repro.runtime.server`): every completed request contributes a
``(time-in-queue, time-in-engine)`` sample, and
:meth:`RunStats.latency_summary` reduces the samples to p50/p95/p99
percentiles for the queue, engine and total components.  Times are
engine-clock seconds — virtual seconds under the event engine, wall-clock
seconds under the threaded engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunStats", "percentile"]

#: the percentile levels latency_summary reports ("p99.9" needs the
#: long-tail soak sample sizes to be meaningful; short runs clamp to max)
LATENCY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def _percentile_sorted(data: list, q: float) -> float:
    """``q``-th percentile of an already-sorted non-empty sample."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not data:
        raise ValueError("percentile of an empty sample")
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lower = int(rank)
    frac = rank - lower
    if frac == 0.0:
        return data[lower]
    return data[lower] + frac * (data[lower + 1] - data[lower])


def percentile(values, q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    Matches numpy's default (``method="linear"``): for ``n`` sorted samples
    the rank of percentile ``q`` is ``(q / 100) * (n - 1)``, interpolating
    between the neighbouring order statistics.  Pure-python so the serving
    percentile math is unit-testable against hand-computed values.
    """
    return _percentile_sorted(sorted(float(v) for v in values), q)


def _component_summary(samples: list) -> dict:
    data = sorted(float(v) for v in samples)   # one sort per component
    out = {f"p{int(q) if q == int(q) else q}": _percentile_sorted(data, q)
           for q in LATENCY_PERCENTILES}
    out["mean"] = sum(data) / len(data)
    out["max"] = data[-1]
    return out


@dataclass
class RunStats:
    """Statistics for one ``Session.run`` call.

    ``virtual_time`` is the simulated makespan in seconds under the engine's
    cost model and worker count; ``wall_time`` is host wall-clock time.
    """

    virtual_time: float = 0.0
    wall_time: float = 0.0
    ops_executed: int = 0
    frames_created: int = 0
    max_concurrency: int = 0
    max_frame_depth: int = 0
    per_type_count: dict = field(default_factory=dict)
    per_type_time: dict = field(default_factory=dict)
    cache_stores: int = 0
    cache_lookups: int = 0
    #: fused micro-batch kernel calls (dynamic cross-instance batching)
    batches: int = 0
    #: operations that executed as members of a fused batch
    batched_ops: int = 0
    #: largest fused batch observed
    max_batch: int = 0
    #: fused kernel calls keyed by op type
    batch_count_by_type: dict = field(default_factory=dict)
    #: per-signature flush-width histograms: signature -> {width: count}.
    #: A signature is the coalescer bucketing key (op type, batch attrs,
    #: input shapes/dtypes); ``None`` signatures fall back to the op type.
    #: This is the observability surface for the adaptive flush policy —
    #: see :func:`repro.harness.reporting.format_batch_histogram`.
    batch_width_hist: dict = field(default_factory=dict)
    #: roots admitted through the compiled level-plan fast path
    #: (:mod:`repro.runtime.level_plan`)
    level_plan_hits: int = 0
    #: roots that carried a shape profile but fell back to dynamic
    #: execution (ineligible graph shape, depth cap, stale plan)
    level_plan_fallbacks: int = 0
    #: roots admitted as a dynamic spine with compiled sub-sweeps (the
    #: partial-compilation / canonicalization path — not fallbacks)
    level_plan_partial_roots: int = 0
    #: recursive subtrees executed as compiled sub-sweeps
    level_plan_subtree_runs: int = 0
    #: compiled-plan memo probes that found a valid plan (or a memoized
    #: ineligible verdict) — the canonicalization hit-rate numerator
    level_plan_cache_hits: int = 0
    #: memo probes that had to compile (or re-verify a stale plan)
    level_plan_cache_misses: int = 0
    #: wall-clock milliseconds spent inside level-plan compilation
    level_plan_compile_ms: float = 0.0
    #: plan-memo entries evicted by the LRU caps
    level_plan_evictions: int = 0
    #: per-level fused-dispatch width histograms for compiled sweeps:
    #: level index -> {width: count}.  The compiled-path analogue of
    #: ``batch_width_hist`` — see
    #: :func:`repro.harness.reporting.format_level_histogram`.
    level_width_hist: dict = field(default_factory=dict)
    #: high-water mark of the engine's live-bytes estimate — slot output
    #: values currently held by in-flight frames/sweeps plus gradient
    #: bytes retained by the accumulators.  Maintained only when the
    #: engine has a ``memory_budget`` or ``track_live_bytes=True``.
    peak_live_bytes: int = 0
    #: process peak RSS (MiB) sampled at reporting time — see
    #: :func:`repro.harness.reporting.peak_rss_mb`.  Unlike the
    #: live-bytes estimate this is sticky: the OS high-water mark never
    #: decreases within a process.
    peak_rss_mb: float = 0.0
    #: requests completed through a serving session
    requests: int = 0
    #: requests rejected by admission control (queue-depth cap, or the
    #: cost-predicted shedding path)
    rejected_requests: int = 0
    #: requests cancelled by the client while queued or in flight
    cancelled_requests: int = 0
    #: requests dropped by deadline enforcement (queued or in flight)
    timed_out_requests: int = 0
    #: deadline-carrying requests that did not complete by their
    #: deadline: every timed-out request plus every late completion.
    #: ``goodput_requests`` = completions inside their deadline.
    deadline_misses: int = 0
    #: per-request time spent waiting in the server's request queue
    queue_times: list = field(default_factory=list)
    #: per-request time spent executing in the engine (admit -> complete)
    engine_times: list = field(default_factory=list)
    #: cap on retained latency samples — beyond it note_request reservoir-
    #: samples (deterministically), so a long-lived server's stats stay
    #: bounded while the percentiles remain representative.  Benchmarks
    #: and tests stay far below the cap and keep exact samples.
    max_latency_samples: int = 65536

    def note_request(self, queue_time: float, engine_time: float) -> None:
        """Record one served request's queue-time/engine-time split.

        Bounded: once ``max_latency_samples`` pairs are retained, new
        samples displace a pseudo-random (deterministic, Algorithm-R
        style) slot with probability ``cap / requests``, keeping memory
        constant for open-ended serving sessions.
        """
        self.requests += 1
        if len(self.queue_times) < self.max_latency_samples:
            self.queue_times.append(queue_time)
            self.engine_times.append(engine_time)
            return
        # Knuth multiplicative hash of the request counter: a
        # deterministic stand-in for Algorithm R's random draw
        slot = ((self.requests * 2654435761) & 0x7FFFFFFF) % self.requests
        if slot < self.max_latency_samples:
            self.queue_times[slot] = queue_time
            self.engine_times[slot] = engine_time

    def note_ticket(self, ticket) -> None:
        """Record one completed request straight from its ticket timeline.

        ``ticket`` is any object with the
        :class:`~repro.runtime.server.RequestTicket` timeline surface
        (``queue_time`` = arrival → admit, ``engine_time`` = admit →
        complete).  This is the single point where the ticket timeline
        feeds the latency samples — the server and the serving harness
        both plumb per-request accounting through it instead of
        extracting the component times themselves.

        Deadline accounting rides along: a ticket carrying a
        ``deadline`` that completed past it counts as a deadline miss
        (late completions and timed-out requests together make up
        ``deadline_misses``).
        """
        self.note_request(ticket.queue_time, ticket.engine_time)
        deadline = getattr(ticket, "deadline", None)
        if deadline is not None and ticket.complete_time > deadline:
            self.deadline_misses += 1

    def note_rejected(self) -> None:
        """Record one request shed at admission (cap or predicted cost).

        Rejected requests contribute *no* latency samples: the latency
        distribution describes served requests only.
        """
        self.rejected_requests += 1

    def note_cancelled(self) -> None:
        """Record one client-cancelled request (no latency sample)."""
        self.cancelled_requests += 1

    def note_timed_out(self) -> None:
        """Record one request dropped by deadline enforcement.

        Counts as a deadline miss; contributes no latency sample.
        """
        self.timed_out_requests += 1
        self.deadline_misses += 1

    @property
    def goodput_requests(self) -> int:
        """Completions that made their deadline (deadline-free requests
        count: an absent SLO cannot be missed)."""
        return self.requests - (self.deadline_misses
                                - self.timed_out_requests)

    @property
    def request_latencies(self) -> list:
        """End-to-end latency (queue + engine) per completed request."""
        return [q + e for q, e in zip(self.queue_times, self.engine_times)]

    def latency_summary(self) -> dict:
        """p50/p95/p99/mean/max for queue, engine and total latency.

        Returns ``{"requests": n, "queue": {...}, "engine": {...},
        "total": {...}}`` (empty dict when no requests completed); each
        component maps ``p50``/``p95``/``p99``/``mean``/``max`` to
        engine-clock seconds.
        """
        if not self.requests:
            return {}
        return {"requests": self.requests,
                "rejected": self.rejected_requests,
                "cancelled": self.cancelled_requests,
                "timed_out": self.timed_out_requests,
                "deadline_misses": self.deadline_misses,
                "goodput": self.goodput_requests,
                "queue": _component_summary(self.queue_times),
                "engine": _component_summary(self.engine_times),
                "total": _component_summary(self.request_latencies)}

    def note_op(self, op_type: str, cost: float) -> None:
        # hot path (once per scalar instance): try/except beats .get once
        # the op type has been seen, which is every call but the first
        self.ops_executed += 1
        try:
            self.per_type_count[op_type] += 1
            self.per_type_time[op_type] += cost
        except KeyError:
            self.per_type_count[op_type] = 1
            self.per_type_time[op_type] = cost

    def note_batch(self, op_type: str, size: int, cost: float,
                   signature=None) -> None:
        """Record one fused kernel call executing ``size`` operations."""
        self.ops_executed += size
        self.per_type_count[op_type] = (self.per_type_count.get(op_type, 0)
                                        + size)
        self.per_type_time[op_type] = (self.per_type_time.get(op_type, 0.0)
                                       + cost)
        self.batches += 1
        self.batched_ops += size
        self.max_batch = max(self.max_batch, size)
        self.batch_count_by_type[op_type] = (
            self.batch_count_by_type.get(op_type, 0) + 1)
        hist = self.batch_width_hist.setdefault(
            signature if signature is not None else op_type, {})
        hist[size] = hist.get(size, 0) + 1

    def width_histogram_by_type(self) -> dict:
        """Aggregate the per-signature histograms by op type.

        Signature keys are tuples whose first element is the op type;
        plain-string keys (op type fallback) aggregate under themselves.
        Returns ``{op_type: {width: count}}``.
        """
        merged: dict = {}
        for key, hist in self.batch_width_hist.items():
            op_type = key[0] if isinstance(key, tuple) else key
            into = merged.setdefault(op_type, {})
            for width, count in hist.items():
                into[width] = into.get(width, 0) + count
        return merged

    @property
    def batch_efficiency(self) -> float:
        """Mean members per fused kernel call (0.0 when nothing batched)."""
        return self.batched_ops / self.batches if self.batches else 0.0

    @property
    def level_plan_cache_hit_rate(self) -> float:
        """Compiled-plan memo hit rate — the canonicalization /
        amortization measurement (0.0 before any probe)."""
        probes = self.level_plan_cache_hits + self.level_plan_cache_misses
        return self.level_plan_cache_hits / probes if probes else 0.0

    def merge(self, other: "RunStats") -> None:
        """Accumulate another run's stats into this one (harness use)."""
        self.virtual_time += other.virtual_time
        self.wall_time += other.wall_time
        self.ops_executed += other.ops_executed
        self.frames_created += other.frames_created
        self.max_concurrency = max(self.max_concurrency,
                                   other.max_concurrency)
        self.max_frame_depth = max(self.max_frame_depth,
                                   other.max_frame_depth)
        self.requests += other.requests
        self.rejected_requests += other.rejected_requests
        self.cancelled_requests += other.cancelled_requests
        self.timed_out_requests += other.timed_out_requests
        self.deadline_misses += other.deadline_misses
        self.queue_times.extend(other.queue_times)
        self.engine_times.extend(other.engine_times)
        if len(self.queue_times) > self.max_latency_samples:
            # re-establish the retention bound (evenly-strided
            # downsample, pairs kept aligned) so note_request's
            # reservoir replacement stays reachable for every slot
            step = len(self.queue_times) / self.max_latency_samples
            keep = [int(i * step) for i in range(self.max_latency_samples)]
            self.queue_times = [self.queue_times[i] for i in keep]
            self.engine_times = [self.engine_times[i] for i in keep]
        self.batches += other.batches
        self.batched_ops += other.batched_ops
        self.max_batch = max(self.max_batch, other.max_batch)
        for k, v in other.batch_count_by_type.items():
            self.batch_count_by_type[k] = (self.batch_count_by_type.get(k, 0)
                                           + v)
        for sig, hist in other.batch_width_hist.items():
            into = self.batch_width_hist.setdefault(sig, {})
            for width, count in hist.items():
                into[width] = into.get(width, 0) + count
        self.level_plan_hits += other.level_plan_hits
        self.level_plan_fallbacks += other.level_plan_fallbacks
        self.level_plan_partial_roots += other.level_plan_partial_roots
        self.level_plan_subtree_runs += other.level_plan_subtree_runs
        self.level_plan_cache_hits += other.level_plan_cache_hits
        self.level_plan_cache_misses += other.level_plan_cache_misses
        self.level_plan_compile_ms += other.level_plan_compile_ms
        self.level_plan_evictions += other.level_plan_evictions
        self.peak_live_bytes = max(self.peak_live_bytes,
                                   other.peak_live_bytes)
        self.peak_rss_mb = max(self.peak_rss_mb, other.peak_rss_mb)
        for level, hist in other.level_width_hist.items():
            into = self.level_width_hist.setdefault(level, {})
            for width, count in hist.items():
                into[width] = into.get(width, 0) + count
        for k, v in other.per_type_count.items():
            self.per_type_count[k] = self.per_type_count.get(k, 0) + v
        for k, v in other.per_type_time.items():
            self.per_type_time[k] = self.per_type_time.get(k, 0.0) + v

    def summary(self) -> str:
        lines = [
            f"virtual_time={self.virtual_time * 1e3:.3f} ms  "
            f"wall_time={self.wall_time * 1e3:.3f} ms",
            f"ops={self.ops_executed}  frames={self.frames_created}  "
            f"max_concurrency={self.max_concurrency}  "
            f"max_depth={self.max_frame_depth}",
        ]
        if self.batches:
            lines.append(
                f"batches={self.batches}  batched_ops={self.batched_ops}  "
                f"mean_batch={self.batch_efficiency:.1f}  "
                f"max_batch={self.max_batch}")
        if self.peak_live_bytes:
            lines.append(
                f"peak_live_bytes={self.peak_live_bytes}"
                f" ({self.peak_live_bytes / 2**20:.1f} MiB)")
        if (self.level_plan_hits or self.level_plan_fallbacks
                or self.level_plan_partial_roots):
            fused = sum(count for hist in self.level_width_hist.values()
                        for count in hist.values())
            lines.append(
                f"level_plan_hits={self.level_plan_hits}  "
                f"level_plan_fallbacks={self.level_plan_fallbacks}  "
                f"level_dispatches={fused}")
            if self.level_plan_partial_roots or self.level_plan_subtree_runs:
                lines.append(
                    f"level_partial_roots={self.level_plan_partial_roots}  "
                    f"level_subtree_runs={self.level_plan_subtree_runs}")
        if self.level_plan_cache_hits or self.level_plan_cache_misses:
            lines.append(
                f"level_compile_cache hit_rate="
                f"{self.level_plan_cache_hit_rate:.3f} "
                f"(hits={self.level_plan_cache_hits} "
                f"misses={self.level_plan_cache_misses} "
                f"evictions={self.level_plan_evictions})  "
                f"compile={self.level_plan_compile_ms:.2f} ms")
        if self.requests:
            lat = self.latency_summary()["total"]
            lines.append(
                f"requests={self.requests}  rejected="
                f"{self.rejected_requests}  "
                f"latency p50={lat['p50'] * 1e3:.3f} ms  "
                f"p95={lat['p95'] * 1e3:.3f} ms  "
                f"p99={lat['p99'] * 1e3:.3f} ms")
            if (self.cancelled_requests or self.timed_out_requests
                    or self.deadline_misses):
                lines.append(
                    f"cancelled={self.cancelled_requests}  "
                    f"timed_out={self.timed_out_requests}  "
                    f"deadline_misses={self.deadline_misses}  "
                    f"goodput={self.goodput_requests}")
        top = sorted(self.per_type_time.items(), key=lambda kv: -kv[1])[:8]
        for op_type, t in top:
            lines.append(f"  {op_type:<22} n={self.per_type_count[op_type]:<7}"
                         f" t={t * 1e3:.3f} ms")
        return "\n".join(lines)
