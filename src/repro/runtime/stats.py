"""Execution statistics collected by the engines."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Statistics for one ``Session.run`` call.

    ``virtual_time`` is the simulated makespan in seconds under the engine's
    cost model and worker count; ``wall_time`` is host wall-clock time.
    """

    virtual_time: float = 0.0
    wall_time: float = 0.0
    ops_executed: int = 0
    frames_created: int = 0
    max_concurrency: int = 0
    max_frame_depth: int = 0
    per_type_count: dict = field(default_factory=dict)
    per_type_time: dict = field(default_factory=dict)
    cache_stores: int = 0
    cache_lookups: int = 0

    def note_op(self, op_type: str, cost: float) -> None:
        self.ops_executed += 1
        self.per_type_count[op_type] = self.per_type_count.get(op_type, 0) + 1
        self.per_type_time[op_type] = (self.per_type_time.get(op_type, 0.0)
                                       + cost)

    def merge(self, other: "RunStats") -> None:
        """Accumulate another run's stats into this one (harness use)."""
        self.virtual_time += other.virtual_time
        self.wall_time += other.wall_time
        self.ops_executed += other.ops_executed
        self.frames_created += other.frames_created
        self.max_concurrency = max(self.max_concurrency,
                                   other.max_concurrency)
        self.max_frame_depth = max(self.max_frame_depth,
                                   other.max_frame_depth)
        for k, v in other.per_type_count.items():
            self.per_type_count[k] = self.per_type_count.get(k, 0) + v
        for k, v in other.per_type_time.items():
            self.per_type_time[k] = self.per_type_time.get(k, 0.0) + v

    def summary(self) -> str:
        lines = [
            f"virtual_time={self.virtual_time * 1e3:.3f} ms  "
            f"wall_time={self.wall_time * 1e3:.3f} ms",
            f"ops={self.ops_executed}  frames={self.frames_created}  "
            f"max_concurrency={self.max_concurrency}  "
            f"max_depth={self.max_frame_depth}",
        ]
        top = sorted(self.per_type_time.items(), key=lambda kv: -kv[1])[:8]
        for op_type, t in top:
            lines.append(f"  {op_type:<22} n={self.per_type_count[op_type]:<7}"
                         f" t={t * 1e3:.3f} ms")
        return "\n".join(lines)
