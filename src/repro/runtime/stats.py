"""Execution statistics collected by the engines."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunStats"]


@dataclass
class RunStats:
    """Statistics for one ``Session.run`` call.

    ``virtual_time`` is the simulated makespan in seconds under the engine's
    cost model and worker count; ``wall_time`` is host wall-clock time.
    """

    virtual_time: float = 0.0
    wall_time: float = 0.0
    ops_executed: int = 0
    frames_created: int = 0
    max_concurrency: int = 0
    max_frame_depth: int = 0
    per_type_count: dict = field(default_factory=dict)
    per_type_time: dict = field(default_factory=dict)
    cache_stores: int = 0
    cache_lookups: int = 0
    #: fused micro-batch kernel calls (dynamic cross-instance batching)
    batches: int = 0
    #: operations that executed as members of a fused batch
    batched_ops: int = 0
    #: largest fused batch observed
    max_batch: int = 0
    #: fused kernel calls keyed by op type
    batch_count_by_type: dict = field(default_factory=dict)
    #: per-signature flush-width histograms: signature -> {width: count}.
    #: A signature is the coalescer bucketing key (op type, batch attrs,
    #: input shapes/dtypes); ``None`` signatures fall back to the op type.
    #: This is the observability surface for the adaptive flush policy —
    #: see :func:`repro.harness.reporting.format_batch_histogram`.
    batch_width_hist: dict = field(default_factory=dict)

    def note_op(self, op_type: str, cost: float) -> None:
        self.ops_executed += 1
        self.per_type_count[op_type] = self.per_type_count.get(op_type, 0) + 1
        self.per_type_time[op_type] = (self.per_type_time.get(op_type, 0.0)
                                       + cost)

    def note_batch(self, op_type: str, size: int, cost: float,
                   signature=None) -> None:
        """Record one fused kernel call executing ``size`` operations."""
        self.ops_executed += size
        self.per_type_count[op_type] = (self.per_type_count.get(op_type, 0)
                                        + size)
        self.per_type_time[op_type] = (self.per_type_time.get(op_type, 0.0)
                                       + cost)
        self.batches += 1
        self.batched_ops += size
        self.max_batch = max(self.max_batch, size)
        self.batch_count_by_type[op_type] = (
            self.batch_count_by_type.get(op_type, 0) + 1)
        hist = self.batch_width_hist.setdefault(
            signature if signature is not None else op_type, {})
        hist[size] = hist.get(size, 0) + 1

    def width_histogram_by_type(self) -> dict:
        """Aggregate the per-signature histograms by op type.

        Signature keys are tuples whose first element is the op type;
        plain-string keys (op type fallback) aggregate under themselves.
        Returns ``{op_type: {width: count}}``.
        """
        merged: dict = {}
        for key, hist in self.batch_width_hist.items():
            op_type = key[0] if isinstance(key, tuple) else key
            into = merged.setdefault(op_type, {})
            for width, count in hist.items():
                into[width] = into.get(width, 0) + count
        return merged

    @property
    def batch_efficiency(self) -> float:
        """Mean members per fused kernel call (0.0 when nothing batched)."""
        return self.batched_ops / self.batches if self.batches else 0.0

    def merge(self, other: "RunStats") -> None:
        """Accumulate another run's stats into this one (harness use)."""
        self.virtual_time += other.virtual_time
        self.wall_time += other.wall_time
        self.ops_executed += other.ops_executed
        self.frames_created += other.frames_created
        self.max_concurrency = max(self.max_concurrency,
                                   other.max_concurrency)
        self.max_frame_depth = max(self.max_frame_depth,
                                   other.max_frame_depth)
        self.batches += other.batches
        self.batched_ops += other.batched_ops
        self.max_batch = max(self.max_batch, other.max_batch)
        for k, v in other.batch_count_by_type.items():
            self.batch_count_by_type[k] = (self.batch_count_by_type.get(k, 0)
                                           + v)
        for sig, hist in other.batch_width_hist.items():
            into = self.batch_width_hist.setdefault(sig, {})
            for width, count in hist.items():
                into[width] = into.get(width, 0) + count
        for k, v in other.per_type_count.items():
            self.per_type_count[k] = self.per_type_count.get(k, 0) + v
        for k, v in other.per_type_time.items():
            self.per_type_time[k] = self.per_type_time.get(k, 0.0) + v

    def summary(self) -> str:
        lines = [
            f"virtual_time={self.virtual_time * 1e3:.3f} ms  "
            f"wall_time={self.wall_time * 1e3:.3f} ms",
            f"ops={self.ops_executed}  frames={self.frames_created}  "
            f"max_concurrency={self.max_concurrency}  "
            f"max_depth={self.max_frame_depth}",
        ]
        if self.batches:
            lines.append(
                f"batches={self.batches}  batched_ops={self.batched_ops}  "
                f"mean_batch={self.batch_efficiency:.1f}  "
                f"max_batch={self.max_batch}")
        top = sorted(self.per_type_time.items(), key=lambda kv: -kv[1])[:8]
        for op_type, t in top:
            lines.append(f"  {op_type:<22} n={self.per_type_count[op_type]:<7}"
                         f" t={t * 1e3:.3f} ms")
        return "\n".join(lines)
