"""Wall-clock thread-pool executor backend (``engine="threaded"``).

The frame lifecycle lives in :class:`~repro.runtime.scheduler
.SchedulerCore`; this backend contributes only the wall-clock execution
mechanics: a pool of ``threading`` workers that pull ready instances
from one shared queue, execute kernels *outside* the master lock (so
numpy work can overlap), and report completions back under it.  It
matches the :class:`~repro.runtime.engine.EventEngine` scheduling
semantics exactly (same frames, same ready-queue discipline, same async
control flow) but reports host wall-clock time instead of virtual time
— used to validate that the virtual-time backend computes identical
values, and to demonstrate the architecture on real threads.

Dynamic micro-batching (``batching=True`` / ``"adaptive"``): batchable
ready operations are offered to the shared
:class:`~repro.runtime.batching.Coalescer` instead of executing
immediately.  A bucket flushes when it is full, when the worker that
filed it finds the ready queue empty (wavefront drained), or — since
real threads cannot see the future — when a worker's idle ``get`` times
out after ``BatchPolicy.flush_timeout`` seconds, which bounds how long
a partially-filled bucket can defer its members and rules out deadlock
(per-signature deadlines come from the policy; expiry pops an amortized
O(1) deadline heap).  Training batches too: fused ``InvokeGrad``
buckets run every member's starter under the master lock, batched
``CacheLookup`` kernels issue one bulk sharded-cache read outside it,
and a fused batch's recorded values are stored through one bulk write.

Serving (continuous batching): ``begin_serving`` keeps the worker pool
alive across requests so a :class:`~repro.runtime.server.RecursiveServer`
can admit root instances into the live ready queue from any thread
(``submit_root``); completion flows through per-root callbacks and
``end_serving`` stops the pool.  See :mod:`repro.runtime.server`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor

from .batching import BatchPolicy, Coalescer
from .cost_model import CostModel
from .plan import plan_for_fetches
from .scheduler import (EngineError, Instance, SchedulerCore, densify,
                        prune_cancelled, register_executor)
from .stats import RunStats

__all__ = ["ThreadedEngine"]

_SENTINEL = object()


class ThreadedEngine(SchedulerCore):
    """Thread-pool executor with the Figure-4 master/worker structure.

    ``scheduler="depth"`` is accepted for interface parity but the
    worker queue is FIFO; see :class:`~repro.runtime.scheduler
    .SchedulerCore` for the shared knobs.
    """

    def __init__(self, runtime, num_workers: int = 4,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 memory_budget: Optional[int] = None,
                 track_live_bytes: bool = False):
        # the budget's deep-first *reordering* needs a centralized
        # dispatch point, which this backend's free-running workers do
        # not have; eager slot release and live-bytes tracking apply
        super().__init__(runtime, num_workers=num_workers,
                         cost_model=cost_model, record=record,
                         scheduler=scheduler, max_depth=max_depth,
                         batching=batching, batch_policy=batch_policy,
                         memory_budget=memory_budget,
                         track_live_bytes=track_live_bytes)

    # -- SchedulerCore executor hooks ----------------------------------------

    @property
    def now(self) -> float:
        return time.perf_counter()

    def post_continuation(self, delay: float, fn: Callable) -> None:
        # Wall-clock mode does not simulate overheads; run immediately.
        fn()

    def finish_async(self, inst: Instance, outputs: list) -> None:
        with self._master_lock:
            self._complete_instance(inst, outputs)

    def _start_serving(self) -> None:
        self._begin_session()
        self._serve_workers = [threading.Thread(target=self._worker,
                                                daemon=True)
                               for _ in range(self.num_workers)]
        for w in self._serve_workers:
            w.start()

    def _drain_events(self) -> None:
        self._wait_for_roots()

    def _stamp_clock(self, stats: RunStats) -> None:
        self._stamp_wall_clock(stats)

    def _stop_serving(self) -> None:
        for _ in self._serve_workers:
            self._queue.put(_SENTINEL)
        for w in self._serve_workers:
            w.join()
        self._serve_workers = []
        self.stats.wall_time = time.perf_counter() - self._serve_wall0
        self.stats.virtual_time = self.stats.wall_time

    # -- run ------------------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any],
            shape_profile=None) -> tuple[list, RunStats]:
        wall0 = time.perf_counter()
        self._begin_session()
        if shape_profile is not None:
            hit = self._try_level_run(graph, list(fetches), feed_map,
                                      shape_profile)
            if hit is not None:
                values, _ = hit
                self.stats.wall_time = time.perf_counter() - wall0
                self.stats.virtual_time = self.stats.wall_time
                self.stats.cache_stores = self.runtime.cache.stores
                self.stats.cache_lookups = self.runtime.cache.lookups
                return values, self.stats
        plan = plan_for_fetches(graph, {t.op for t in fetches})

        def root_done(frame):
            self._done.set()

        with self._master_lock:
            root = self._make_frame(plan, feed_map, key=ROOT_KEY, depth=0,
                                    record=False, on_complete=root_done,
                                    owner=None,
                                    pin_locs=tuple((t.op.id, t.index)
                                                   for t in fetches))
            self._start_frame(root)
            if root.remaining == 0:
                self._done.set()

        workers = [threading.Thread(target=self._worker, daemon=True)
                   for _ in range(self.num_workers)]
        for w in workers:
            w.start()
        self._done.wait()
        for _ in workers:
            self._queue.put(_SENTINEL)
        for w in workers:
            w.join()
        if self._error is not None:
            raise self._error
        values = [densify(root.value_of(t)) for t in fetches]
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.virtual_time = self.stats.wall_time
        return values, self.stats

    # -- internals ------------------------------------------------------------

    def _begin_session(self) -> None:
        """Fresh master state: lock, work queue, coalescer, stats."""
        self._master_lock = threading.RLock()
        self._roots_cv = threading.Condition(self._master_lock)
        self._queue: queue.Queue = queue.Queue()
        self._push_ready = self._queue.put
        self._done = threading.Event()
        self._error = None
        self._error_listener = None
        self._error_delivered = False
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self._live_bytes = 0
        self._pending_level_runs = []
        self._level_flushing = False
        self._level_flush_wanted = False
        self._root_site_map = None
        self.stats = RunStats()

    def _execute_level_group(self, lp, runs) -> None:
        # Sweeps flush on the admitting thread (a submit_root caller, or
        # a worker running an Invoke starter) while free-running workers
        # mutate stats and frame state concurrently: serialize the sweep
        # itself under the master lock (reentrant for the starter case)
        # and leave completion/failure to the base paths, which manage
        # the lock themselves.
        from .level_plan import execute_level_plan
        try:
            with self._master_lock:
                results = execute_level_plan(self, lp, runs)
        except Exception as exc:  # noqa: BLE001 - session failure path
            self._fail_level(exc)
            return
        for run, values in zip(runs, results):
            if values is not None:
                self._complete_level_run(run, values)

    def _worker(self) -> None:
        while True:
            if self._coalescer is None:
                inst = self._queue.get()
            else:
                try:
                    inst = self._queue.get(
                        timeout=self.batch_policy.flush_timeout)
                except queue.Empty:
                    # No new ready work within the flush timeout: release
                    # any bucket that has aged past the policy's deadline.
                    # This is the liveness guarantee — once the queue goes
                    # quiet, a held bucket waits at most ~flush_timeout
                    # (one idle poll) before some worker expires it.
                    with self._master_lock:
                        bucket = self._coalescer.pop_expired(
                            time.perf_counter())
                    if bucket is not None:
                        self._run_bucket(bucket)
                    continue
            if inst is _SENTINEL:
                return
            if self._error is not None or self._fatal_error is not None:
                # failed session (including one whose error a drain()
                # already raised): never resume doomed work
                continue
            if inst.frame.root.cancelled:
                # request cancelled while the instance sat in the queue
                continue
            op = inst.op
            frame = inst.frame
            plan = frame.plan
            slot = inst.slot
            definition = plan.defs[slot]
            try:
                values = frame.values
                inputs = [values[s][i] for s, i in plan.input_locs[slot]]
                if self._coalescer is not None:
                    # async ops batch too (fused frame spawns) when they
                    # carry a batched-async registration
                    prefix = plan.sig_prefixes[slot]
                    if prefix is not None:
                        signature = self._batch_signature_of(inst, inputs,
                                                             prefix)
                        self._offer_to_batch(signature, inst, inputs)
                        continue
                if definition.is_async:
                    with self._master_lock:
                        plan.starters[slot](self, inst, inputs)
                else:
                    # benign race: two workers may build the frame's
                    # context concurrently; ExecContext is stateless
                    ctx = frame.ctx or frame.exec_context(self.runtime)
                    outputs = definition.kernel(op, inputs, ctx)
                    with self._master_lock:
                        self._complete_instance(inst, outputs)
                with self._master_lock:
                    self.stats.note_op(op.op_type, 0.0)
            except Exception as exc:
                self._fail(op, exc)

    def _fail(self, op, exc: Exception) -> None:
        listener = None
        with self._master_lock:
            if self._error is None:
                self._error = self._wrap_error(exc, op)
                listener = self._error_listener
                self._error_delivered = listener is not None
            self._done.set()
            if self._roots_cv is not None:
                self._roots_cv.notify_all()
        if listener is not None:
            # outside the master lock: the serving error listener takes
            # the server's own lock to fail pending requests
            listener(self._error)

    # -- micro-batching --------------------------------------------------------

    def _offer_to_batch(self, signature, inst: Instance,
                        inputs: list) -> None:
        """File a batchable ready op; flush when full or queue drained."""
        with self._master_lock:
            full = self._coalescer.offer(signature, inst, inputs,
                                         time.perf_counter())
        if full is not None:
            self._run_bucket(full)
            return
        if self._queue.empty():
            # current wavefront drained: flush rather than sit on work
            with self._master_lock:
                bucket = self._coalescer.pop()
            if bucket is not None:
                self._run_bucket(bucket)

    def _run_bucket(self, bucket) -> None:
        """Execute one bucket: fused kernel outside the lock, then scatter."""
        if not prune_cancelled(bucket):
            return
        first = bucket.instances[0]
        definition = first.frame.plan.defs[first.slot]
        ops = [inst.op for inst in bucket.instances]
        with self._master_lock:  # the policy's state is lock-guarded
            fused = self._bucket_fused(bucket)
        try:
            if definition.is_async:
                # starters mutate master state: the shared fused-spawn
                # path runs them under the lock like the scalar path
                self._spawn_async_bucket(bucket, fused)
                return
            if not fused:
                outputs_list = []
                for inst, inputs in zip(bucket.instances, bucket.inputs):
                    ctx = (inst.frame.ctx
                           or inst.frame.exec_context(self.runtime))
                    outputs_list.append(definition.kernel(inst.op, inputs,
                                                          ctx))
            else:
                ctxs = [inst.frame.ctx
                        or inst.frame.exec_context(self.runtime)
                        for inst in bucket.instances]
                outputs_list = definition.batched_kernel(ops, bucket.inputs,
                                                         ctxs)
                self._check_batch_result(bucket, outputs_list)
            self._complete_batch(bucket.instances, outputs_list)
            with self._master_lock:
                if fused:
                    self.stats.note_batch(bucket.op_type, len(bucket), 0.0,
                                          bucket.signature)
                else:
                    for inst in bucket.instances:
                        self.stats.note_op(inst.op.op_type, 0.0)
        except Exception as exc:
            self._fail(ops[0], exc)


register_executor("threaded", ThreadedEngine)
