"""Wall-clock engine: a real thread pool behind the same execution model.

Matches :class:`~repro.runtime.engine.EventEngine` semantics exactly (same
frames, same ready-queue discipline, same async control flow) but executes
kernels on ``threading`` workers and reports host wall-clock time instead
of virtual time.  Used to validate that the virtual-time engine computes
identical values, and to demonstrate the architecture on real threads.

Master state (frames, dependency counters) is guarded by one re-entrant
lock; kernels run outside the lock so numpy work can overlap.

Dynamic micro-batching (``batching=True`` / ``"adaptive"``): batchable
ready operations are offered to a shared
:class:`~repro.runtime.batching.Coalescer` instead of executing
immediately.  A bucket flushes when it is full, when the worker that filed
it finds the ready queue empty (wavefront drained), or — since real
threads cannot see the future — when a worker's idle ``get`` times out
after ``BatchPolicy.flush_timeout`` seconds, which bounds how long a
partially-filled bucket can defer its members and rules out deadlock
(per-signature deadlines come from the policy; expiry pops an amortized
O(1) deadline heap).  Training batches too: fused ``InvokeGrad`` buckets
run every member's starter under the master lock, batched ``CacheLookup``
kernels issue one bulk sharded-cache read outside it, and a fused batch's
recorded values are stored through one bulk write.

Serving (continuous batching): ``begin_serving`` keeps the worker pool
alive across requests so a :class:`~repro.runtime.server.RecursiveServer`
can admit root instances into the live ready queue from any thread
(``submit_root``); completion flows through per-root callbacks and
``end_serving`` stops the pool.  See :mod:`repro.runtime.server`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor

from .batching import (BatchPolicy, Coalescer, resolve_batching,
                       value_signature)
from .cost_model import CostModel, testbed_cpu
from .engine import (EngineError, Frame, Instance, collect_cache_entries,
                     seed_frame)
from .plan import FramePlan, plan_for, plan_for_fetches
from .stats import RunStats

__all__ = ["ThreadedEngine"]

_SENTINEL = object()


class ThreadedEngine:
    """Thread-pool execution with the Figure-4 master/worker structure."""

    def __init__(self, runtime, num_workers: int = 4,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 max_depth: int = 5000, batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None):
        self.runtime = runtime
        self.num_workers = max(1, num_workers)
        self.cost_model = cost_model or testbed_cpu()
        self.record = record
        self.max_depth = max_depth
        self.batching, batch_policy = resolve_batching(batching, batch_policy)
        self.batch_policy = batch_policy or BatchPolicy()

    # The async-op starters call these three methods plus ``spawn_frame``;
    # the interface is shared with EventEngine.

    @property
    def now(self) -> float:
        return time.perf_counter()

    def post_continuation(self, delay: float, fn: Callable) -> None:
        # Wall-clock mode does not simulate overheads; run immediately.
        fn()

    def finish_async(self, inst: Instance, outputs: list) -> None:
        self._complete_instance(inst, outputs)

    def spawn_frame(self, subgraph, bindings: dict, key: tuple, depth: int,
                    on_complete: Callable, owner: Optional[Instance]) -> Frame:
        if depth > self.max_depth:
            raise EngineError(
                f"recursion limit exceeded (depth {depth}); "
                "check the base case of your recursive SubGraph")
        graph = subgraph.graph
        record = self.record and not getattr(graph, "is_backward_body", False)
        frame = self._make_frame(plan_for(graph), bindings, key, depth,
                                 record, on_complete, owner)
        self._start_frame(frame)
        return frame

    # -- serving mode: incremental root admission -----------------------------
    #
    # The wall-clock counterpart of EventEngine's serving API: workers
    # stay alive across requests, ``submit_root`` may be called from any
    # thread while kernels are executing (admission takes the master
    # lock), and completion flows through per-root callbacks instead of
    # one done-event.  A server (:class:`repro.runtime.server
    # .RecursiveServer`) owns the request queue and calls ``end_serving``
    # to stop the pool.

    def begin_serving(self, error_listener: Optional[Callable] = None) -> None:
        """Start the worker pool for a persistent serving session.

        ``error_listener`` (optional) is called once, outside the master
        lock, if any kernel raises — root frames in flight at that point
        will never complete, so the server must fail their requests.
        """
        self._lock = threading.RLock()
        self._queue = queue.Queue()
        self._done = threading.Event()
        self._error = None
        self._error_listener = error_listener
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self.stats = RunStats()
        self._serve_wall0 = time.perf_counter()
        self._serve_workers = [threading.Thread(target=self._worker,
                                                daemon=True)
                               for _ in range(self.num_workers)]
        for w in self._serve_workers:
            w.start()

    def submit_root(self, graph: Graph, fetches: Sequence[Tensor],
                    feed_map: dict[int, Any], key: tuple,
                    on_complete: Callable) -> Frame:
        """Admit a root instance into the live ready queue (thread-safe)."""
        fetch_list = list(fetches)
        plan = plan_for_fetches(graph, {t.op for t in fetch_list})

        def frame_done(frame):
            on_complete([frame.value_of(t) for t in fetch_list])

        with self._lock:
            frame = self._make_frame(plan, feed_map, key, 0, False,
                                     frame_done, None)
            self._start_frame(frame)
        return frame

    def end_serving(self) -> RunStats:
        """Stop the worker pool.  Does not raise: engine errors surface
        through the error listener / the server's drain."""
        for _ in self._serve_workers:
            self._queue.put(_SENTINEL)
        for w in self._serve_workers:
            w.join()
        self._serve_workers = []
        self.stats.wall_time = time.perf_counter() - self._serve_wall0
        self.stats.virtual_time = self.stats.wall_time
        return self.stats

    # -- run ------------------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any]) -> tuple[list, RunStats]:
        wall0 = time.perf_counter()
        self._lock = threading.RLock()
        self._queue: queue.Queue = queue.Queue()
        self._done = threading.Event()
        self._error: Optional[Exception] = None
        self._error_listener = None
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self.stats = RunStats()

        plan = plan_for_fetches(graph, {t.op for t in fetches})

        def root_done(frame):
            self._done.set()

        with self._lock:
            root = self._make_frame(plan, feed_map, ROOT_KEY, 0,
                                    False, root_done, None)
            self._start_frame(root)
            if root.remaining == 0:
                self._done.set()

        workers = [threading.Thread(target=self._worker, daemon=True)
                   for _ in range(self.num_workers)]
        for w in workers:
            w.start()
        self._done.wait()
        for _ in workers:
            self._queue.put(_SENTINEL)
        for w in workers:
            w.join()
        if self._error is not None:
            raise self._error
        values = [root.value_of(t) for t in fetches]
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.virtual_time = self.stats.wall_time
        return values, self.stats

    # -- internals ---------------------------------------------------------------

    def _make_frame(self, plan: FramePlan, bindings, key, depth, record,
                    on_complete, owner) -> Frame:
        frame = Frame(plan, bindings, key, depth, record, on_complete, owner)
        self.stats.frames_created += 1
        self.stats.max_frame_depth = max(self.stats.max_frame_depth, depth)
        return frame

    def _start_frame(self, frame: Frame) -> None:
        seed_frame(frame, self._complete_instance, self._queue.put)

    def _worker(self) -> None:
        while True:
            if self._coalescer is None:
                inst = self._queue.get()
            else:
                try:
                    inst = self._queue.get(
                        timeout=self.batch_policy.flush_timeout)
                except queue.Empty:
                    # No new ready work within the flush timeout: release
                    # any bucket that has aged past the policy's deadline.
                    # This is the liveness guarantee — once the queue goes
                    # quiet, a held bucket waits at most ~flush_timeout
                    # (one idle poll) before some worker expires it.
                    with self._lock:
                        bucket = self._coalescer.pop_expired(
                            time.perf_counter())
                    if bucket is not None:
                        self._run_bucket(bucket)
                    continue
            if inst is _SENTINEL:
                return
            if self._error is not None:
                continue
            op = inst.op
            frame = inst.frame
            plan = frame.plan
            slot = inst.slot
            definition = plan.defs[slot]
            try:
                values = frame.values
                inputs = [values[s][i] for s, i in plan.input_locs[slot]]
                if self._coalescer is not None:
                    # async ops batch too (fused frame spawns) when they
                    # carry a batched-async registration
                    prefix = plan.sig_prefixes[slot]
                    if prefix is not None:
                        signature = inst.sig
                        if signature is None:
                            signature = prefix + (value_signature(inputs),)
                            inst.sig = signature
                        self._offer_to_batch(signature, inst, inputs)
                        continue
                if definition.is_async:
                    with self._lock:
                        plan.starters[slot](self, inst, inputs)
                else:
                    # benign race: two workers may build the frame's
                    # context concurrently; ExecContext is stateless
                    ctx = frame.ctx or frame.exec_context(self.runtime)
                    outputs = definition.kernel(op, inputs, ctx)
                    self._complete_instance(inst, outputs)
                with self._lock:
                    self.stats.note_op(op.op_type, 0.0)
            except Exception as exc:
                self._fail(op, exc)

    def _fail(self, op, exc: Exception) -> None:
        listener = None
        with self._lock:
            if self._error is None:
                err = EngineError(
                    f"error executing {op.name} ({op.op_type}): {exc}")
                err.__cause__ = exc
                self._error = err
                listener = self._error_listener
            self._done.set()
        if listener is not None:
            # outside the master lock: the serving error listener takes
            # the server's own lock to fail pending requests
            listener(self._error)

    # -- micro-batching ----------------------------------------------------------

    def _offer_to_batch(self, signature, inst: Instance,
                        inputs: list) -> None:
        """File a batchable ready op; flush when full or queue drained."""
        with self._lock:
            full = self._coalescer.offer(signature, inst, inputs,
                                         time.perf_counter())
        if full is not None:
            self._run_bucket(full)
            return
        if self._queue.empty():
            # current wavefront drained: flush rather than sit on work
            with self._lock:
                bucket = self._coalescer.pop()
            if bucket is not None:
                self._run_bucket(bucket)

    def _run_bucket(self, bucket) -> None:
        """Execute one bucket: fused kernel outside the lock, then scatter."""
        first = bucket.instances[0]
        definition = first.frame.plan.defs[first.slot]
        ops = [inst.op for inst in bucket.instances]
        with self._lock:  # the policy's per-signature state is lock-guarded
            fused = len(bucket) >= self._coalescer.policy.min_batch_for(
                bucket.signature)
        try:
            if definition.is_async:
                # fused (or straggler) frame spawn: starters mutate master
                # state, so they run under the lock like the scalar path
                starter = first.frame.plan.starters[first.slot]
                with self._lock:
                    for inst, inputs in zip(bucket.instances, bucket.inputs):
                        starter(self, inst, inputs)
                    if fused:
                        self.stats.note_batch(bucket.op_type, len(bucket),
                                              0.0, bucket.signature)
                    else:
                        for inst in bucket.instances:
                            self.stats.note_op(inst.op.op_type, 0.0)
                return
            if not fused:
                outputs_list = []
                for inst, inputs in zip(bucket.instances, bucket.inputs):
                    ctx = (inst.frame.ctx
                           or inst.frame.exec_context(self.runtime))
                    outputs_list.append(definition.kernel(inst.op, inputs,
                                                          ctx))
            else:
                ctxs = [inst.frame.ctx
                        or inst.frame.exec_context(self.runtime)
                        for inst in bucket.instances]
                outputs_list = definition.batched_kernel(ops, bucket.inputs,
                                                         ctxs)
                if len(outputs_list) != len(bucket):
                    raise EngineError(
                        f"batched kernel of {bucket.op_type} returned "
                        f"{len(outputs_list)} results for {len(bucket)} "
                        "members")
            self._complete_batch(bucket.instances, outputs_list)
            with self._lock:
                if fused:
                    self.stats.note_batch(bucket.op_type, len(bucket), 0.0,
                                          bucket.signature)
                else:
                    for inst in bucket.instances:
                        self.stats.note_op(inst.op.op_type, 0.0)
        except Exception as exc:
            self._fail(ops[0], exc)

    def _complete_batch(self, members, outputs_list) -> None:
        """Bulk-store a fused batch's recorded values, then scatter."""
        entries = collect_cache_entries(members, outputs_list)
        if entries:
            # one bulk transaction (one lock round-trip per touched shard)
            self.runtime.cache.store_many(entries)
        for inst, outputs in zip(members, outputs_list):
            self._complete_instance(inst, outputs, store=False)

    def _complete_instance(self, inst: Instance, outputs: list,
                           store: bool = True) -> None:
        with self._lock:
            frame = inst.frame
            op = inst.op
            plan = frame.plan
            slot = inst.slot
            if len(outputs) != op.num_outputs:
                raise EngineError(
                    f"kernel of {op.name} returned {len(outputs)} values, "
                    f"expected {op.num_outputs}")
            frame.values[slot] = outputs
            if store and frame.record:
                mask = plan.store_masks[slot]
                for i, value in enumerate(outputs):
                    if mask[i]:
                        self.runtime.cache.store(frame.key, plan.graph_id,
                                                 op.id, i, value)
            pending = frame.pending
            for consumer_slot in plan.consumer_slots[slot]:
                count = pending[consumer_slot]
                if count == 1:
                    pending[consumer_slot] = -1
                    self._queue.put(Instance(plan.ops[consumer_slot], frame,
                                             consumer_slot))
                else:
                    pending[consumer_slot] = count - 1
            frame.remaining -= 1
            if frame.remaining == 0:
                frame.on_complete(frame)
