"""Runtime state: variables and gradient accumulators.

Variables live outside any graph so that the same parameter can be read
from the main graph and from every (recursive) SubGraph body.  Gradient
accumulators collect per-variable gradient contributions across the
unbounded number of backward frames a recursive model produces.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.graph import dtypes
from repro.graph.graph import get_default_graph
from repro.graph.sparse import IndexedSlices
from repro.graph.tensor import Tensor

__all__ = ["VariableStore", "GradientAccumulator", "Variable"]


class VariableStore:
    """A thread-safe name -> ndarray mapping."""

    def __init__(self):
        self._values: dict[str, np.ndarray] = {}
        self._lock = threading.Lock()

    def create(self, name: str, value: np.ndarray, *,
               allow_overwrite: bool = False) -> None:
        with self._lock:
            if name in self._values and not allow_overwrite:
                raise ValueError(f"variable {name!r} already exists")
            self._values[name] = np.array(value)

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._values

    def read(self, name: str) -> np.ndarray:
        with self._lock:
            try:
                return self._values[name]
            except KeyError:
                raise KeyError(f"variable {name!r} was never created") from None

    def write(self, name: str, value: np.ndarray) -> None:
        with self._lock:
            self._values[name] = value

    def add(self, name: str, delta: np.ndarray) -> np.ndarray:
        """Atomically ``var += delta``; returns the new value."""
        with self._lock:
            new = self._values[name] + delta
            self._values[name] = new
            return new

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._values)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy of all variables (used by the distributed simulator)."""
        with self._lock:
            return {k: v.copy() for k, v in self._values.items()}

    def restore(self, snapshot: dict[str, np.ndarray]) -> None:
        with self._lock:
            for k, v in snapshot.items():
                self._values[k] = v.copy()

    def total_parameters(self) -> int:
        with self._lock:
            return int(sum(v.size for v in self._values.values()))

    def total_bytes(self) -> int:
        with self._lock:
            return int(sum(v.nbytes for v in self._values.values()))


class GradientAccumulator:
    """Thread-safe per-variable gradient sums (zeroed before each step).

    Contributions arrive from an unbounded number of concurrent backward
    frames in nondeterministic order (threaded engine) or in an order that
    depends on the scheduling mode (micro-batching reorders completions).
    Floating-point addition is not associative, so summing eagerly in
    arrival order would make gradients differ in their last bits between
    batched and unbatched execution and between engines.  Instead each
    contribution is retained with an optional *order key* — the engines
    pass ``(frame key, op id)``, which is structural (the paper's frame-key
    uniqueness argument) and thus identical across schedules — and
    :meth:`read` sums contributions in canonical order-key order.  The
    result: **bit-identical** gradients for any execution mode of the same
    step.  Contributions without an order key (host-side callers) are
    summed last, in arrival order.

    Contributions may be dense ndarrays or
    :class:`~repro.graph.sparse.IndexedSlices` (the sparse embedding
    gradients ``GatherGrad`` emits).  Sparse entries are retained as-is —
    O(touched rows) each instead of O(vocab) — and reduced in canonical
    order at the :meth:`read` boundary: scattered into the single dense
    output buffer (``dense=True``, the default) or combined into one
    canonical ``IndexedSlices`` (``dense=False``, the sparse-optimizer
    fast path).  Each retained slice carries unique row indices, so the
    canonical-order reduction performs the same per-row additions in the
    same order as the dense chain — gradients stay bit-identical.
    """

    def __init__(self):
        #: name -> list of (order_key_repr, grad); summed lazily by read()
        self._entries: dict[str, list] = {}
        self._sums: dict[str, np.ndarray] = {}
        self._sparse_sums: dict[str, IndexedSlices] = {}
        self._retained = 0
        self._lock = threading.Lock()

    def add(self, name: str, grad, order=None) -> None:
        key = repr(order) if order is not None else None
        with self._lock:
            self._entries.setdefault(name, []).append((key, grad))
            self._sums.pop(name, None)
            self._sparse_sums.pop(name, None)
            self._retained += int(getattr(grad, "nbytes", 0))

    @property
    def retained_bytes(self) -> int:
        """Bytes currently held by unreduced contributions (the dominant
        live-memory term of a backward pass; feeds the live-bytes
        estimate in :class:`~repro.runtime.stats.RunStats`)."""
        return self._retained

    def _ordered(self, entries):
        ordered = sorted((e for e in entries if e[0] is not None),
                         key=lambda e: e[0])
        ordered += [e for e in entries if e[0] is None]
        return ordered

    def read(self, name: str, shape=None, np_dtype=np.float32, *,
             dense: bool = True):
        """The canonical per-variable gradient sum.

        ``dense=True`` (the default — and the explicit densification
        boundary of the sparse pipeline) always returns an ndarray,
        accumulated **in place** into one freshly-allocated output buffer:
        canonical order and bit-identity are preserved (same ufunc loop as
        the pairwise chain) without the old per-entry reallocation.
        ``dense=False`` returns an :class:`IndexedSlices` when every
        contribution is sparse (rows deduplicated in canonical entry
        order), else the dense sum.
        """
        with self._lock:
            entries = self._entries.get(name)
            if entries:
                if not dense:
                    cached = self._sparse_sums.get(name)
                    if cached is not None:
                        return cached
                    if all(isinstance(g, IndexedSlices)
                           for _, g in entries):
                        combined = self._combine_sparse(entries)
                        self._sparse_sums[name] = combined
                        return combined
                cached = self._sums.get(name)
                if cached is not None:
                    return cached
                total = self._reduce_dense(entries)
                self._sums[name] = total
                return total
        if shape is None:
            raise KeyError(
                f"no gradient accumulated for {name!r} and no static shape "
                "to synthesize zeros from")
        return np.zeros(shape, dtype=np_dtype)

    def _reduce_dense(self, entries) -> np.ndarray:
        """Canonical-order in-place reduction into one fresh buffer."""
        ordered = self._ordered(entries)
        first = ordered[0][1]
        if isinstance(first, IndexedSlices):
            total = first.to_dense()
        else:
            total = np.array(first)
        for _, grad in ordered[1:]:
            if isinstance(grad, IndexedSlices):
                # unique rows: exactly one add per touched row, in the
                # same order the dense chain would apply them
                grad.add_to(total)
            elif (isinstance(grad, np.ndarray)
                    and grad.dtype == total.dtype
                    and grad.shape == total.shape):
                total += grad  # same ufunc loop as ``total = total + grad``
            else:
                total = total + grad  # dtype/shape promotion: keep exact
        return total

    def _combine_sparse(self, entries) -> IndexedSlices:
        """Concatenate canonical-order slices, then deduplicate rows.

        The concatenation preserves entry order and every segment has
        unique rows, so the left-fold ``np.add.at`` performs for each row
        adds that row's contributions in canonical entry order — the
        exact additions the dense reduction performs for that row.
        """
        ordered = self._ordered(entries)
        slices = [g for _, g in ordered]
        combined = IndexedSlices(
            np.concatenate([s.indices for s in slices]),
            np.concatenate([s.values for s in slices]),
            slices[0].dense_shape)
        return combined.unique()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def zero(self) -> None:
        with self._lock:
            self._entries.clear()
            self._sums.clear()
            self._sparse_sums.clear()
            self._retained = 0


class Variable:
    """A trainable parameter registered in a runtime's variable store.

    ``Variable.read()`` builds (and memoizes per graph) a ``ReadVariable``
    op in the current default graph, so the variable is usable from main
    graphs and SubGraph bodies alike.
    """

    def __init__(self, name: str, initial_value, *, runtime=None,
                 trainable: bool = True):
        from repro.runtime.session import default_runtime
        self.runtime = runtime or default_runtime()
        value = np.asarray(initial_value)
        if value.dtype == np.float64:
            value = value.astype(np.float32)
        self.name = name
        self.dtype = dtypes.from_numpy(value)
        self.shape = value.shape
        self.trainable = trainable
        self.runtime.variables.create(name, value)
        if trainable:
            self.runtime.register_trainable(self)

    def read(self) -> Tensor:
        """Symbolic read of the current value, memoized per graph."""
        from repro.ops import var_ops
        graph = get_default_graph()
        memo = graph.variable_read_memo
        if self.name not in memo:
            memo[self.name] = var_ops.read_variable(
                self.name, self.dtype, self.shape)
        return memo[self.name]

    def value(self) -> np.ndarray:
        """Current concrete value (host-side read)."""
        return self.runtime.variables.read(self.name)

    def assign_value(self, value: np.ndarray) -> None:
        """Host-side overwrite (used by tests and the distributed sim)."""
        self.runtime.variables.write(self.name,
                                     np.asarray(value, dtype=self.dtype.np_dtype))

    def __repr__(self) -> str:
        return f"<Variable {self.name!r} shape={self.shape}>"
