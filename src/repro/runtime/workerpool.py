"""Worker-pool executor backend (``engine="workerpool"``).

The proof-of-layering backend the scheduler/executor split unlocks: a
wall-clock executor whose *scheduling* is centralized in one master
(like the event engine) while *kernel execution* runs on a pool of
worker threads (like the threaded engine).  The division of labour:

* the **master** — the calling thread during ``run``, a dedicated
  thread while serving — owns all frame state.  It applies completions,
  resolves dependents, and drains the entire ready wavefront into the
  shared :class:`~repro.runtime.batching.Coalescer` before flushing, so
  fused buckets reach event-engine widths instead of the narrower
  buckets the threaded backend's racing workers produce;
* the **kernel pool** executes the flushed buckets (and non-batchable
  scalar kernels) off-thread: independent buckets — different batch
  signatures ready in the same wavefront — run *concurrently*, since
  numpy kernels release the GIL.  Async starters (frame spawns) mutate
  master state and therefore run in the master under the lock.

Compared to the threaded backend, workers never touch the master lock:
they pull ``(kernel, inputs)`` tasks and push results, so lock traffic
is one acquisition per completion batch instead of several per
instance.  Values and gradients are bit-identical to both existing
backends (batched kernels are value-preserving and the gradient
accumulator is canonically ordered); completion *order* is
nondeterministic exactly as in the threaded backend.

This backend exists to demonstrate that a new execution strategy is now
~250 lines of mechanics with zero scheduling logic; see ARCHITECTURE.md
for the recipe it instantiates and ``benchmarks/bench_overhead.py``
(``workerpool_buckets``) for the measured payoff on the multi-instance
serving canary.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Optional, Sequence

from repro.core.cache import ROOT_KEY
from repro.graph.graph import Graph
from repro.graph.tensor import Tensor

from .batching import BatchPolicy, Coalescer
from .cost_model import CostModel
from .plan import plan_for_fetches
from .scheduler import (EngineError, Instance, SchedulerCore,
                        _MemoryBudgetReady, densify, prune_cancelled,
                        register_executor)
from .stats import RunStats

__all__ = ["WorkerPoolEngine"]

_STOP = object()
#: poked through the results queue to wake an idle master (admission,
#: shutdown)
_WAKE = object()


class WorkerPoolEngine(SchedulerCore):
    """Centralized-master executor with a concurrent kernel pool.

    ``num_workers`` sizes the kernel pool; the master is not counted
    (it schedules, it does not execute sync kernels).  See
    :class:`~repro.runtime.scheduler.SchedulerCore` for the shared
    knobs; ``scheduler="depth"`` is accepted but the ready queue is
    FIFO, like the threaded backend.
    """

    def __init__(self, runtime, num_workers: int = 4,
                 cost_model: Optional[CostModel] = None, record: bool = False,
                 scheduler: str = "fifo", max_depth: int = 5000,
                 batching: bool = False,
                 batch_policy: Optional[BatchPolicy] = None,
                 memory_budget: Optional[int] = None,
                 track_live_bytes: bool = False):
        super().__init__(runtime, num_workers=num_workers,
                         cost_model=cost_model, record=record,
                         scheduler=scheduler, max_depth=max_depth,
                         batching=batching, batch_policy=batch_policy,
                         memory_budget=memory_budget,
                         track_live_bytes=track_live_bytes)

    # -- SchedulerCore executor hooks ----------------------------------------

    @property
    def now(self) -> float:
        return time.perf_counter()

    def post_continuation(self, delay: float, fn: Callable) -> None:
        # Wall-clock mode does not simulate overheads; run immediately
        # (always called from master context, under the lock).
        fn()

    def finish_async(self, inst: Instance, outputs: list) -> None:
        with self._master_lock:
            self._complete_instance(inst, outputs)

    def _start_serving(self) -> None:
        self._begin_session()
        self._stop_master = False
        self._start_pool()
        self._master_thread = threading.Thread(target=self._serve_master,
                                               daemon=True)
        self._master_thread.start()

    def _drain_events(self) -> None:
        self._wait_for_roots()

    def _stamp_clock(self, stats: RunStats) -> None:
        self._stamp_wall_clock(stats)

    def _stop_serving(self) -> None:
        self._stop_master = True
        self._post_wake()
        self._master_thread.join()
        self._stop_pool()
        self.stats.wall_time = time.perf_counter() - self._serve_wall0
        self.stats.virtual_time = self.stats.wall_time

    def _admitted(self) -> None:
        # submit_root may run on any thread while the serving master
        # sleeps on the results queue: poke it so admission latency is
        # bounded by the queue wake-up, not the idle poll.
        self._post_wake()

    # -- pool mechanics hooks -------------------------------------------------
    #
    # The seams a process-based subclass overrides: thread pools share
    # one address space, so tasks/results are plain object queues, the
    # wake sentinel is compared by identity, and workers cannot die.  A
    # multi-process backend replaces exactly these — serialization at
    # the submit/apply boundary, a picklable wake token, and a liveness
    # check — while the master loops above stay untouched.

    def _is_wake(self, item) -> bool:
        """True when a results-queue item is the master wake sentinel."""
        return item is _WAKE

    def _post_wake(self) -> None:
        """Poke the master's results wait (admission, shutdown)."""
        self._results.put(_WAKE)

    def _check_health(self) -> None:
        """Liveness hook, called whenever the master's results wait
        times out.  Worker threads cannot die independently, so this is
        a no-op; process pools override it to turn a dead worker into a
        sticky session error instead of an infinite wait."""

    def _submit_single(self, inst: Instance, inputs: list) -> None:
        """Hand one non-batchable sync instance to the kernel pool."""
        self._inflight += 1
        self._tasks.put((inst, inputs))

    def _submit_bucket_task(self, bucket, fused: bool) -> None:
        """Hand one flushed sync bucket to the kernel pool."""
        self._inflight += 1
        self._tasks.put((bucket, fused))

    # -- run ------------------------------------------------------------------

    def run(self, graph: Graph, fetches: Sequence[Tensor],
            feed_map: dict[int, Any],
            shape_profile=None) -> tuple[list, RunStats]:
        wall0 = time.perf_counter()
        self._begin_session()
        self._start_pool()
        done = threading.Event()
        try:
            if shape_profile is not None:
                # the pool is already up: a compiled sweep fans each
                # level's independent buckets out to the kernel workers
                # (see _execute_level_calls), with the master running
                # the residue and the per-level barrier
                hit = self._try_level_run(graph, list(fetches), feed_map,
                                          shape_profile)
                if hit is not None:
                    values, _ = hit
                    self.stats.wall_time = time.perf_counter() - wall0
                    self.stats.virtual_time = self.stats.wall_time
                    self.stats.cache_stores = self.runtime.cache.stores
                    self.stats.cache_lookups = self.runtime.cache.lookups
                    return values, self.stats
            plan = plan_for_fetches(graph, {t.op for t in fetches})
            with self._master_lock:
                root = self._make_frame(plan, feed_map, key=ROOT_KEY, depth=0,
                                        record=False,
                                        on_complete=lambda f: done.set(),
                                        owner=None,
                                        pin_locs=tuple((t.op.id, t.index)
                                                       for t in fetches))
                self._start_frame(root)
                if root.remaining == 0:
                    done.set()
            self._pump(done.is_set)
        finally:
            self._stop_pool()
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        values = [densify(root.value_of(t)) for t in fetches]
        self.stats.wall_time = time.perf_counter() - wall0
        self.stats.virtual_time = self.stats.wall_time
        self.stats.cache_stores = self.runtime.cache.stores
        self.stats.cache_lookups = self.runtime.cache.lookups
        return values, self.stats

    # -- master ---------------------------------------------------------------

    def _begin_session(self) -> None:
        self._master_lock = threading.RLock()
        self._roots_cv = threading.Condition(self._master_lock)
        self._ready = (_MemoryBudgetReady(self)
                       if self.memory_budget is not None else deque())
        self._push_ready = self._ready.append
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._inflight = 0  # pool tasks outstanding (master-only counter)
        self._error = None
        self._error_listener = None
        self._error_delivered = False
        self._coalescer = (Coalescer(self.batch_policy) if self.batching
                           else None)
        self._live_bytes = 0
        self._pending_level_runs = []
        self._level_flushing = False
        self._level_flush_wanted = False
        self._root_site_map = None
        #: fan compiled-sweep buckets out to the kernel pool (the
        #: parallel path is bit-identical; the knob exists for paired
        #: serial-vs-parallel benchmarking and as an escape hatch)
        self._level_parallel = os.environ.get(
            "REPRO_LEVEL_PARALLEL", "1") != "0"
        self.stats = RunStats()

    def _start_pool(self) -> None:
        self._pool = [threading.Thread(target=self._kernel_worker,
                                       daemon=True)
                      for _ in range(self.num_workers)]
        for w in self._pool:
            w.start()

    def _stop_pool(self) -> None:
        for _ in self._pool:
            self._tasks.put(_STOP)
        for w in self._pool:
            w.join()
        self._pool = []

    def _pump(self, done: Callable[[], bool]) -> None:
        """Master loop: apply completions and dispatch until ``done``."""
        while not done() and self._error is None:
            if self._master_step():
                continue
            try:
                item = self._results.get(timeout=0.05)
            except queue.Empty:
                self._check_health()
                continue
            if not self._is_wake(item):
                self._apply(item)

    def _serve_master(self) -> None:
        """The persistent serving master: runs until end_serving, then
        drains whatever is still in flight (unless the session failed)."""
        while True:
            progressed = self._master_step()
            if self._stop_master:
                with self._master_lock:
                    idle = (self._inflight == 0 and not self._ready
                            and (self._coalescer is None
                                 or len(self._coalescer) == 0))
                if idle or self._error is not None \
                        or self._fatal_error is not None:
                    return
            if progressed:
                continue
            try:
                item = self._results.get(timeout=0.02)
            except queue.Empty:
                self._check_health()
                continue
            if not self._is_wake(item):
                self._apply(item)

    def _schedule_level_flush(self) -> None:
        # Compiled-root admissions (submit_root) and subtree launches
        # (Invoke starters) run under the master lock; the sweep itself
        # must not — its per-level barrier applies interleaved pool
        # completions, and a sweep error delivers to the serving error
        # listener outside the lock.  Defer to the master loop.
        self._level_flush_wanted = True
        self._post_wake()

    def _master_step(self) -> bool:
        """Apply every queued completion, then dispatch ready work."""
        progressed = False
        if self._level_flush_wanted:
            self._level_flush_wanted = False
            self._flush_level_runs()
            progressed = True
        while True:
            try:
                item = self._results.get_nowait()
            except queue.Empty:
                break
            if not self._is_wake(item):
                self._apply(item)
            progressed = True
        if self._error is None:
            progressed = self._dispatch() or progressed
        return progressed

    def _dispatch(self) -> bool:
        """Drain the ready wavefront; flush all pending buckets after.

        Scalar sync kernels and fused buckets go to the kernel pool;
        async starters (frame spawns) run here under the master lock.
        """
        lock = self._master_lock
        coalescer = self._coalescer
        progressed = False
        while self._error is None and self._fatal_error is None:
            with lock:
                try:
                    inst = self._ready.popleft()
                except IndexError:
                    break
                frame = inst.frame
                if frame.root.cancelled:
                    # request cancelled while the instance sat ready
                    progressed = True
                    continue
                plan = frame.plan
                slot = inst.slot
                values = frame.values
                inputs = [values[s][i] for s, i in plan.input_locs[slot]]
                full = None
                batchable = False
                if coalescer is not None:
                    prefix = plan.sig_prefixes[slot]
                    if prefix is not None:
                        batchable = True
                        full = coalescer.offer(
                            self._batch_signature_of(inst, inputs, prefix),
                            inst, inputs, time.perf_counter())
            progressed = True
            if batchable:
                if full is not None:
                    self._submit_bucket(full)
                continue
            definition = plan.defs[slot]
            if definition.is_async:
                spawn_exc = None
                with lock:
                    try:
                        plan.starters[slot](self, inst, inputs)
                        self.stats.note_op(inst.op.op_type, 0.0)
                    except Exception as exc:
                        spawn_exc = exc
                if spawn_exc is not None:
                    # outside the lock: _set_error delivers to the
                    # serving error listener, which takes the server lock
                    self._set_error(spawn_exc, inst.op)
            else:
                self._submit_single(inst, inputs)
        # wavefront drained: flush every pending bucket — independent
        # signatures land on the pool together and execute concurrently
        if coalescer is not None:
            while self._error is None and self._fatal_error is None:
                with lock:
                    bucket = coalescer.pop()
                if bucket is None:
                    break
                self._submit_bucket(bucket)
                progressed = True
        return progressed

    def _submit_bucket(self, bucket) -> None:
        if not prune_cancelled(bucket):
            return
        with self._master_lock:
            fused = self._bucket_fused(bucket)
        first = bucket.instances[0]
        definition = first.frame.plan.defs[first.slot]
        if definition.is_async:
            # starters mutate master state: the shared fused-spawn path
            # runs them in the master under the lock
            try:
                self._spawn_async_bucket(bucket, fused)
            except Exception as exc:
                self._set_error(exc, first.op)
            return
        self._submit_bucket_task(bucket, fused)

    # -- parallel compiled sweeps ---------------------------------------------

    def _level_pool_open(self) -> bool:
        """True when compiled-sweep calls may fan out to the pool."""
        return self._level_parallel and bool(getattr(self, "_pool", None))

    def _ship_level_call(self, call) -> bool:
        """Hand one prepared level call to the pool; True if shipped.

        Level tasks do not bump ``_inflight``: the per-level barrier in
        :meth:`_execute_level_calls` accounts for them, and a sweep
        never spans a serving idle check (the whole barrier runs inside
        one master step).  Process pools override this with a
        shippability check and shared-memory transport.
        """
        self._tasks.put((call, None))
        return True

    def _match_level_item(self, item):
        """Decode a results-queue item as a level-call completion.

        Returns ``(call, outputs_list, exc)``, or None when the item is
        an ordinary dynamic-path completion.
        """
        if type(item) is tuple and item and item[0] == "lvl":
            return item[1], item[2], item[3]
        return None

    def _execute_level_calls(self, lp, calls, entries, hist) -> None:
        """Fan one level's independent calls out to the kernel pool.

        All but the last call ship to the workers; the master executes
        the last inline (it would otherwise idle at the barrier) plus
        any call the transport rejects.  The barrier then collects the
        shipped completions — applying interleaved dynamic-path items,
        which is safe because the sweep runs outside the master lock —
        and completes every call *on the master, in original call
        order*, so scatter, stats and cache-store order are
        bit-identical to the serial path.  The first failing call in
        that order wins, exactly like serial execution.
        """
        if len(calls) < 2 or not self._level_pool_open():
            super()._execute_level_calls(lp, calls, entries, hist)
            return
        from .level_plan import complete_level_call, execute_level_call
        results: dict = {}
        outstanding = 0
        for call in calls[:-1]:
            if self._ship_level_call(call):
                outstanding += 1
            else:
                try:
                    results[id(call)] = (execute_level_call(call), None)
                except Exception as exc:  # noqa: BLE001
                    results[id(call)] = (None, exc)
        last = calls[-1]
        try:
            results[id(last)] = (execute_level_call(last), None)
        except Exception as exc:  # noqa: BLE001
            results[id(last)] = (None, exc)
        while outstanding and self._error is None:
            try:
                item = self._results.get(timeout=0.05)
            except queue.Empty:
                self._check_health()
                continue
            matched = self._match_level_item(item)
            if matched is not None:
                call, outputs_list, exc = matched
                results[id(call)] = (outputs_list, exc)
                outstanding -= 1
            elif not self._is_wake(item):
                self._apply(item)
        if outstanding:
            # session failed under the barrier (dead worker, dynamic
            # error): abort the sweep; stragglers are dropped by _apply
            raise self._error
        for call in calls:
            outputs_list, exc = results[id(call)]
            if exc is not None:
                raise exc
            complete_level_call(self, lp, call, outputs_list, entries,
                                hist)

    def _apply(self, item) -> None:
        """Apply one pool completion to master state."""
        if item[0] == "lvl":
            # straggler from a sweep barrier the session error aborted;
            # level tasks never bumped _inflight, so just drop it
            return
        self._inflight -= 1
        kind = item[0]
        if kind == "error":
            _, op, exc = item
            self._set_error(exc, op)
            return
        try:
            if kind == "single":
                _, inst, outputs = item
                with self._master_lock:
                    self._complete_instance(inst, outputs)
                    self.stats.note_op(inst.op.op_type, 0.0)
            else:
                _, bucket, outputs_list, fused = item
                self._complete_batch(bucket.instances, outputs_list)
                with self._master_lock:
                    if fused:
                        self.stats.note_batch(bucket.op_type, len(bucket),
                                              0.0, bucket.signature)
                    else:
                        for inst in bucket.instances:
                            self.stats.note_op(inst.op.op_type, 0.0)
        except Exception as exc:
            failed = item[1]
            op = (failed.instances[0].op if kind == "bucket"
                  else failed.op)
            self._set_error(exc, op)

    def _set_error(self, exc: Exception, op) -> None:
        listener = None
        with self._master_lock:
            if self._error is None:
                self._error = (exc if isinstance(exc, EngineError)
                               else self._wrap_error(exc, op))
                listener = self._error_listener
                self._error_delivered = listener is not None
            self._roots_cv.notify_all()
        if listener is not None:
            # outside the master lock: the serving error listener takes
            # the server's own lock to fail pending requests
            listener(self._error)

    # -- kernel pool -----------------------------------------------------------

    def _kernel_worker(self) -> None:
        """Pool worker: executes kernels only, never touches frames."""
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            self._results.put(self._execute_task(*task))

    def _execute_task(self, payload, extra) -> tuple:
        """Execute one pool task and return its completion item.

        The item is exactly what :meth:`_apply` consumes —
        ``("single", inst, outputs)``, ``("bucket", bucket,
        outputs_list, fused)`` or ``("error", op, exc)`` — so the same
        code serves the pool workers and any master-side inline
        execution path a subclass adds.
        """
        runtime = self.runtime
        if getattr(payload, "is_level_call", False):
            # compiled-sweep call: pure kernel execution against
            # master-prebuilt contexts; completion happens at the
            # sweep barrier, never through _apply
            from .level_plan import execute_level_call
            try:
                return ("lvl", payload, execute_level_call(payload), None)
            except Exception as exc:  # noqa: BLE001
                return ("lvl", payload, None, exc)
        if isinstance(payload, Instance):
            inst, inputs = payload, extra
            try:
                definition = inst.frame.plan.defs[inst.slot]
                ctx = inst.frame.ctx or inst.frame.exec_context(runtime)
                return ("single", inst, definition.kernel(inst.op, inputs,
                                                          ctx))
            except Exception as exc:
                return ("error", inst.op, exc)
        bucket, fused = payload, extra
        first = bucket.instances[0]
        try:
            definition = first.frame.plan.defs[first.slot]
            if fused:
                ops = [inst.op for inst in bucket.instances]
                ctxs = [inst.frame.ctx
                        or inst.frame.exec_context(runtime)
                        for inst in bucket.instances]
                outputs_list = definition.batched_kernel(
                    ops, bucket.inputs, ctxs)
                self._check_batch_result(bucket, outputs_list)
            else:
                outputs_list = [
                    definition.kernel(
                        inst.op, inputs,
                        inst.frame.ctx
                        or inst.frame.exec_context(runtime))
                    for inst, inputs in zip(bucket.instances,
                                            bucket.inputs)]
            return ("bucket", bucket, outputs_list, fused)
        except Exception as exc:
            return ("error", first.op, exc)


register_executor("workerpool", WorkerPoolEngine)
