"""Shared fixtures: isolated graphs/runtimes per test.

Also implements the ``@pytest.mark.timeout(seconds)`` marker (declared in
pytest.ini) via ``SIGALRM``: threaded-engine tests use it as a watchdog so
a scheduler deadlock fails the test instead of hanging CI.  The offline
environment has no pytest-timeout plugin; this covers the same need for
main-thread tests on POSIX.

Setting ``REPRO_TEST_TIMEOUT=<seconds>`` additionally arms the watchdog
for every test *without* an explicit marker — ``make check`` sets it so
a wedged worker process (procpool) fails the run fast instead of
hanging CI on a queue read.  Explicit markers always win.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

import repro


@pytest.fixture(autouse=True)
def _watchdog(request):
    """Abort a test that outlives its ``timeout`` marker (POSIX only)."""
    marker = request.node.get_closest_marker("timeout")
    if not hasattr(signal, "SIGALRM"):
        yield
        return
    if marker is not None:
        seconds = int(marker.args[0])
    else:
        seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", 0))
        if seconds <= 0:
            yield
            return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds}s watchdog — likely a deadlock "
            "(threaded engine / flush policy) or a wedged worker process")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def graph():
    """A fresh graph installed as the default for the test body."""
    g = repro.Graph("test")
    with g.as_default():
        yield g


@pytest.fixture
def runtime():
    """A fresh runtime (variables/accumulators/cache)."""
    return repro.Runtime()


@pytest.fixture
def session(graph, runtime):
    """A single-worker session on the test graph."""
    return repro.Session(graph, runtime)


def run(tensors, feeds=None, *, graph=None, runtime=None, workers=1,
        record=False, **kwargs):
    """One-shot helper: run fetches on a fresh session."""
    target = graph if graph is not None else (
        tensors[0].graph if isinstance(tensors, (list, tuple))
        else tensors.graph)
    sess = repro.Session(target, runtime or repro.Runtime(),
                         num_workers=workers, record=record, **kwargs)
    return sess.run(tensors, feeds)
