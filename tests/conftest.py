"""Shared fixtures: isolated graphs/runtimes per test."""

from __future__ import annotations

import numpy as np
import pytest

import repro


@pytest.fixture
def graph():
    """A fresh graph installed as the default for the test body."""
    g = repro.Graph("test")
    with g.as_default():
        yield g


@pytest.fixture
def runtime():
    """A fresh runtime (variables/accumulators/cache)."""
    return repro.Runtime()


@pytest.fixture
def session(graph, runtime):
    """A single-worker session on the test graph."""
    return repro.Session(graph, runtime)


def run(tensors, feeds=None, *, graph=None, runtime=None, workers=1,
        record=False, **kwargs):
    """One-shot helper: run fetches on a fresh session."""
    target = graph if graph is not None else (
        tensors[0].graph if isinstance(tensors, (list, tuple))
        else tensors.graph)
    sess = repro.Session(target, runtime or repro.Runtime(),
                         num_workers=workers, record=record, **kwargs)
    return sess.run(tensors, feeds)
